//! Workload-level performance and energy simulation.
//!
//! For each GEMM in a [`ModelWorkload`] the model computes compute cycles
//! (SPARK: measured on the cycle-accurate array simulator; baselines: PE
//! count x utilization), DRAM and global-buffer traffic from the design's
//! storage width, and the Fig 12 energy decomposition. Layer time is
//! `max(compute, memory)` under double buffering.

use spark_nn::{Gemm, ModelWorkload};
use spark_quant::SparkCodec;
use spark_tensor::Tensor;
use spark_util::{par, Rng};

use crate::arch::{Accelerator, AcceleratorKind, TimingModel};
use crate::cost::{expected_mac_cycles, OperandKind};
use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::systolic::SystolicSim;

/// Precision statistics of a model's tensors under SPARK encoding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionProfile {
    /// Fraction of weight values taking the 4-bit short code.
    pub short_frac_w: f64,
    /// Fraction of activation values taking the 4-bit short code.
    pub short_frac_a: f64,
    /// Average storage bits per weight under SPARK.
    pub spark_bits_w: f64,
    /// Average storage bits per activation under SPARK.
    pub spark_bits_a: f64,
}

impl PrecisionProfile {
    /// Builds a profile from short-code fractions (bits follow from the
    /// 4/8-bit split).
    pub fn from_short_fractions(short_frac_w: f64, short_frac_a: f64) -> Self {
        Self {
            short_frac_w,
            short_frac_a,
            spark_bits_w: 8.0 - 4.0 * short_frac_w,
            spark_bits_a: 8.0 - 4.0 * short_frac_a,
        }
    }

    /// Measures a profile from sampled weight/activation tensors by running
    /// the actual SPARK codec (the stats-only pass: code statistics are
    /// counted without materializing bitstreams or reconstructions).
    ///
    /// # Errors
    ///
    /// Propagates codec errors (non-finite samples).
    pub fn from_tensors(
        weights: &Tensor,
        activations: &Tensor,
    ) -> Result<Self, spark_quant::QuantError> {
        let codec = SparkCodec::default();
        let sw = codec.code_stats(weights)?;
        let sa = codec.code_stats(activations)?;
        Ok(Self {
            short_frac_w: sw.short_fraction(),
            short_frac_a: sa.short_fraction(),
            spark_bits_w: sw.avg_bits(),
            spark_bits_a: sa.avg_bits(),
        })
    }
}

/// How SPARK's array timing is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SparkTiming {
    /// Decoupled lanes: per-PE line buffers absorb stall jitter, so the
    /// sustained rate is the expected per-MAC cost (the assumption behind
    /// the paper's headline speedups). Default.
    Decoupled,
    /// Strict lockstep dependencies (Fig 9(c) taken literally): measured on
    /// the cycle-accurate array simulator. Slower — a column holding any
    /// long-code weight is paced by it. Exposed for the fidelity ablation.
    Lockstep,
}

/// Global simulation parameters shared by every design (the paper: same
/// buffer capacity and memory bandwidth for all accelerators).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Clock frequency in MHz (paper: 200 MHz).
    pub frequency_mhz: f64,
    /// DRAM bandwidth in bytes per cycle (25.6 GB/s at 200 MHz = 128 B/cy).
    pub dram_bytes_per_cycle: f64,
    /// Activation waves sampled per layer by the cycle-accurate SPARK sim.
    pub sim_waves: usize,
    /// Density remaining after DBB pruning (`None` = dense, Fig 15 uses
    /// `Some(0.5)`).
    pub dbb_density: Option<f64>,
    /// Seed for the operand-precision sampling inside the cycle simulator.
    pub seed: u64,
    /// SPARK array timing mode.
    pub spark_timing: SparkTiming,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            frequency_mhz: 200.0,
            dram_bytes_per_cycle: 128.0,
            sim_waves: 96,
            dbb_density: None,
            seed: 1,
            spark_timing: SparkTiming::Decoupled,
        }
    }
}

/// Per-layer simulation result.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerReport {
    /// Layer label from the workload.
    pub label: String,
    /// Compute cycles (all repeats).
    pub compute_cycles: f64,
    /// DRAM traffic in bytes.
    pub dram_bytes: f64,
    /// Memory cycles at the configured bandwidth.
    pub memory_cycles: f64,
    /// Layer latency: `max(compute, memory)`.
    pub cycles: f64,
    /// Energy decomposition.
    pub energy: EnergyBreakdown,
}

/// Whole-workload simulation result.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadReport {
    /// Model name.
    pub model: String,
    /// Accelerator name.
    pub accelerator: String,
    /// Total cycles per inference.
    pub total_cycles: f64,
    /// Total energy per inference.
    pub energy: EnergyBreakdown,
    /// Per-layer detail.
    pub layers: Vec<LayerReport>,
}

spark_util::to_json_struct!(LayerReport {
    label,
    compute_cycles,
    dram_bytes,
    memory_cycles,
    cycles,
    energy,
});

spark_util::to_json_struct!(WorkloadReport {
    model,
    accelerator,
    total_cycles,
    energy,
    layers,
});

impl WorkloadReport {
    /// Speedup of `self` relative to `other` (>1 when self is faster).
    pub fn speedup_vs(&self, other: &WorkloadReport) -> f64 {
        other.total_cycles / self.total_cycles
    }

    /// Fractional energy reduction relative to `other`
    /// (0.75 = self uses 75 % less energy).
    pub fn energy_reduction_vs(&self, other: &WorkloadReport) -> f64 {
        1.0 - self.energy.total() / other.energy.total()
    }

    /// Inference latency in milliseconds at the configured frequency.
    pub fn latency_ms(&self, config: &SimConfig) -> f64 {
        self.total_cycles / (config.frequency_mhz * 1e3)
    }

    /// Energy-delay product in joule-seconds — the standard combined
    /// efficiency figure of merit (lower is better).
    pub fn energy_delay_product(&self, config: &SimConfig) -> f64 {
        let seconds = self.total_cycles / (config.frequency_mhz * 1e6);
        let joules = self.energy.total() * 1e-12;
        joules * seconds
    }

    /// Energy efficiency in GMACs per joule.
    pub fn gmacs_per_joule(&self, workload: &ModelWorkload) -> f64 {
        let total_pj = self.energy.total();
        if total_pj == 0.0 {
            return 0.0;
        }
        (workload.total_macs() as f64 / 1e9) / (total_pj * 1e-12)
    }
}

/// Samples one operand kind from the hermetic workspace RNG.
fn sample_kind(rng: &mut Rng, p_short: f64) -> OperandKind {
    if rng.gen_f64() < p_short {
        OperandKind::Int4
    } else {
        OperandKind::Int8
    }
}

/// Samples a `rows x cols` weight-precision matrix.
fn sample_weights(rows: usize, cols: usize, p_short: f64, seed: u64) -> Vec<Vec<OperandKind>> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..rows)
        .map(|_| (0..cols).map(|_| sample_kind(&mut rng, p_short)).collect())
        .collect()
}

/// Samples `n` activation waves of width `rows`.
///
/// The stream is a strict prefix: `sample_waves(rows, p, n, seed)` equals
/// the first `n` waves of `sample_waves(rows, p, 2 * n, seed)`. The
/// transient-removal differencing in [`spark_cycles_per_wave`] depends on
/// exactly this property (pinned by a regression test below).
fn sample_waves(rows: usize, p_short: f64, n: usize, seed: u64) -> Vec<Vec<OperandKind>> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..rows).map(|_| sample_kind(&mut rng, p_short)).collect())
        .collect()
}

/// Measures SPARK's steady-state cycles per activation wave on the
/// cycle-accurate array, with the pipeline-fill transient removed (runs W
/// and 2W waves, differences them; the two runs execute in parallel via
/// [`par::join`]).
pub fn spark_cycles_per_wave(
    rows: usize,
    cols: usize,
    profile: &PrecisionProfile,
    waves: usize,
    seed: u64,
) -> f64 {
    let sim = SystolicSim::new(rows, cols);
    let weights = sample_weights(rows, cols, profile.short_frac_w, seed);
    let w1 = waves.max(16);
    let acts_long = sample_waves(rows, profile.short_frac_a, 2 * w1, seed.wrapping_add(7));
    let acts_short = &acts_long[..w1];
    let (short_run, long_run) = par::join(
        || sim.run_tile(&weights, acts_short),
        || sim.run_tile(&weights, &acts_long),
    );
    ((long_run.cycles - short_run.cycles) as f64 / w1 as f64).max(1.0)
}

/// Simulates one workload on one accelerator.
pub fn simulate(
    acc: &Accelerator,
    workload: &ModelWorkload,
    profile: &PrecisionProfile,
    config: &SimConfig,
) -> WorkloadReport {
    let energy_model = EnergyModel::default();
    let density = config.dbb_density.unwrap_or(1.0).clamp(0.0, 1.0);
    // Effective cycles per MAC for precision-dependent designs (one
    // measurement per workload: the precision profile is per-model).
    let cycles_per_mac = match acc.timing {
        TimingModel::SparkSimulated => match config.spark_timing {
            SparkTiming::Decoupled => {
                expected_mac_cycles(profile.short_frac_a, profile.short_frac_w)
                    / acc.pe_count as f64
            }
            SparkTiming::Lockstep => {
                let cpw = spark_cycles_per_wave(
                    acc.array_rows,
                    acc.array_cols,
                    profile,
                    config.sim_waves,
                    config.seed,
                );
                // One wave = one MAC per PE.
                cpw / acc.pe_count as f64
            }
        },
        TimingModel::MixedPrecision {
            short_frac_penalty,
            pipeline_util,
        } => {
            let pa = (profile.short_frac_a - short_frac_penalty).max(0.0);
            let pw = (profile.short_frac_w - short_frac_penalty).max(0.0);
            expected_mac_cycles(pa, pw) / (acc.pe_count as f64 * pipeline_util)
        }
        TimingModel::Flat => 1.0 / (acc.pe_count as f64 * acc.utilization),
    };

    let (bits_w, bits_a) = match acc.storage_bits {
        Some(b) => (b, b),
        None => (profile.spark_bits_w, profile.spark_bits_a),
    };

    // Layers are independent given the per-workload cycles_per_mac, so the
    // sweep fans out over par_map; results come back in input order, so the
    // totals accumulate in exactly the sequential order (bit-identical).
    let layers: Vec<LayerReport> = par::par_map(&workload.gemms, |gemm| {
        simulate_layer(
            acc,
            gemm,
            profile,
            config,
            &energy_model,
            density,
            cycles_per_mac,
            bits_w,
            bits_a,
        )
    });
    let mut total_cycles = 0.0;
    let mut total_energy = EnergyBreakdown::default();
    for report in &layers {
        total_cycles += report.cycles;
        total_energy.accumulate(&report.energy);
    }
    WorkloadReport {
        model: workload.name.clone(),
        accelerator: acc.kind.name().to_string(),
        total_cycles,
        energy: total_energy,
        layers,
    }
}

#[allow(clippy::too_many_arguments)]
fn simulate_layer(
    acc: &Accelerator,
    gemm: &Gemm,
    profile: &PrecisionProfile,
    config: &SimConfig,
    em: &EnergyModel,
    density: f64,
    cycles_per_mac: f64,
    bits_w: f64,
    bits_a: f64,
) -> LayerReport {
    let macs = gemm.macs() as f64 * density;
    let weights = gemm.weight_elements() as f64 * density;
    let acts = gemm.activation_elements() as f64;
    let outs = gemm.output_elements() as f64;

    // --- compute ---
    let compute_cycles = macs * cycles_per_mac;

    // --- memory traffic ---
    let dram_bits = weights * bits_w + acts * bits_a + outs * bits_a;
    let dram_bytes = dram_bits / 8.0;
    let memory_cycles = dram_bytes / config.dram_bytes_per_cycle;

    // --- buffer traffic: weights loaded once per tile pass; activations
    // re-streamed once per column tile; partial sums spilled per row tile.
    let tiles_n = (gemm.n as f64 / acc.array_cols as f64).ceil();
    let tiles_k = (gemm.k as f64 / acc.array_rows as f64).ceil();
    let psum_bits = 16.0;
    let buffer_bits = weights * bits_w
        + acts * bits_a * tiles_n
        + outs * psum_bits * 2.0 * (tiles_k - 1.0).max(0.0)
        + outs * bits_a;

    // --- energy ---
    let core_mac_pj = match acc.timing {
        // Energy scales with the nibble products actually computed, for
        // SPARK and for the mixed-precision baselines alike (their wide
        // values also take multiple 4-bit operations).
        TimingModel::SparkSimulated => {
            expected_mac_cycles(profile.short_frac_a, profile.short_frac_w) * em.int4_mac_pj
        }
        TimingModel::MixedPrecision {
            short_frac_penalty, ..
        } => {
            let pa = (profile.short_frac_a - short_frac_penalty).max(0.0);
            let pw = (profile.short_frac_w - short_frac_penalty).max(0.0);
            expected_mac_cycles(pa, pw) * em.int4_mac_pj * acc.core_energy_factor
        }
        TimingModel::Flat => {
            if acc.kind == AcceleratorKind::AdaFloat {
                em.float_mac_pj(acc.mac_energy_bits) * acc.core_energy_factor
            } else {
                em.int_mac_pj(acc.mac_energy_bits) * acc.core_energy_factor
            }
        }
    };
    // Codec energy per streamed value (decoders on array borders + output
    // encoders for SPARK; published-decoder proxies for ANT/OliVe).
    let codec_pj = match acc.kind {
        AcceleratorKind::Spark => {
            (acts + weights) * em.spark_decode_pj + outs * em.spark_encode_pj
        }
        AcceleratorKind::Ant => (acts + weights) * em.spark_decode_pj * 0.8,
        AcceleratorKind::Olive => (acts + weights) * em.spark_decode_pj * 8.0,
        AcceleratorKind::OlAccel => (acts + weights) * em.spark_decode_pj * 4.0,
        _ => 0.0,
    };
    let energy = EnergyBreakdown {
        dram_pj: dram_bits * em.dram_pj_per_bit,
        buffer_pj: buffer_bits * em.sram_pj_per_bit,
        core_pj: macs * core_mac_pj + codec_pj,
    };

    LayerReport {
        label: format!("{} x{}", gemm.label, gemm.repeats),
        compute_cycles,
        dram_bytes,
        memory_cycles,
        cycles: compute_cycles.max(memory_cycles),
        energy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile_cnn() -> PrecisionProfile {
        PrecisionProfile::from_short_fractions(0.5, 0.5)
    }

    fn profile_attention() -> PrecisionProfile {
        PrecisionProfile::from_short_fractions(0.83, 0.8)
    }

    #[test]
    fn profile_bits_follow_fractions() {
        let p = PrecisionProfile::from_short_fractions(0.75, 0.5);
        assert_eq!(p.spark_bits_w, 5.0);
        assert_eq!(p.spark_bits_a, 6.0);
    }

    #[test]
    fn profile_from_tensors_measures_codec() {
        let w = Tensor::from_fn(&[4096], |i| {
            let u = ((i * 2654435761) % 1000) as f32 / 1000.0 - 0.5;
            if i % 97 == 0 {
                u * 30.0
            } else {
                u * 0.1
            }
        });
        let p = PrecisionProfile::from_tensors(&w, &w).unwrap();
        assert!(p.short_frac_w > 0.3);
        assert!((4.0..8.0).contains(&p.spark_bits_w));
    }

    #[test]
    fn wave_stream_is_a_strict_prefix_of_its_extension() {
        // The transient-removal differencing in spark_cycles_per_wave runs
        // W and 2W waves and subtracts; that is only meaningful when the
        // long run replays the short run's first W waves exactly. Pin the
        // prefix property of the sampler the trick silently depends on.
        for (rows, p, n, seed) in [(4usize, 0.5f64, 16usize, 7u64), (16, 0.83, 64, 8)] {
            let short = sample_waves(rows, p, n, seed);
            let long = sample_waves(rows, p, 2 * n, seed);
            assert_eq!(short.as_slice(), &long[..n], "prefix broken at {seed}");
        }
    }

    #[test]
    fn operand_streams_pinned_to_util_rng() {
        // The sampler now draws from the hermetic spark_util xoshiro256++
        // stream; pin the first draws so the RNG swap can't silently drift.
        let mut rng = Rng::seed_from_u64(3);
        let expect: Vec<OperandKind> = (0..8).map(|_| sample_kind(&mut rng, 0.5)).collect();
        let got = sample_waves(8, 0.5, 1, 3).remove(0);
        assert_eq!(got, expect);
        let w = sample_weights(2, 2, 1.0, 5);
        assert!(w.iter().flatten().all(|&k| k == OperandKind::Int4));
        let l = sample_weights(2, 2, 0.0, 5);
        assert!(l.iter().flatten().all(|&k| k == OperandKind::Int8));
    }

    #[test]
    fn cycles_per_wave_tracks_expected_cost() {
        // The cycle-accurate steady state must sit at or slightly above the
        // analytic expectation, and well below the worst case.
        for (pw, pa) in [(1.0, 1.0), (0.8, 0.8), (0.5, 0.5), (0.0, 0.0)] {
            let p = PrecisionProfile::from_short_fractions(pw, pa);
            let cpw = spark_cycles_per_wave(16, 16, &p, 64, 3);
            let expect = expected_mac_cycles(pa, pw);
            assert!(
                cpw >= expect * 0.85 && cpw <= expect * 1.8 + 0.5,
                "p=({pw},{pa}): cpw {cpw} vs E[c] {expect}"
            );
        }
    }

    #[test]
    fn spark_beats_eyeriss_end_to_end() {
        let workload = ModelWorkload::resnet18();
        let cfg = SimConfig::default();
        let spark = Accelerator::new(AcceleratorKind::Spark).run(&workload, &profile_cnn(), &cfg);
        let eyeriss =
            Accelerator::new(AcceleratorKind::Eyeriss).run(&workload, &profile_cnn(), &cfg);
        assert!(spark.speedup_vs(&eyeriss) > 5.0);
        assert!(spark.energy_reduction_vs(&eyeriss) > 0.5);
    }

    #[test]
    fn spark_fastest_of_all_designs() {
        let workload = ModelWorkload::bert();
        let cfg = SimConfig::default();
        let p = profile_attention();
        let spark = Accelerator::new(AcceleratorKind::Spark).run(&workload, &p, &cfg);
        for kind in AcceleratorKind::ALL {
            if kind == AcceleratorKind::Spark {
                continue;
            }
            let other = Accelerator::new(kind).run(&workload, &p, &cfg);
            assert!(
                spark.total_cycles <= other.total_cycles,
                "SPARK {} vs {} {}",
                spark.total_cycles,
                kind.name(),
                other.total_cycles
            );
        }
    }

    #[test]
    fn ant_is_sparks_closest_competitor() {
        let workload = ModelWorkload::vit();
        let cfg = SimConfig::default();
        let p = profile_attention();
        let spark = Accelerator::new(AcceleratorKind::Spark).run(&workload, &p, &cfg);
        let ant = Accelerator::new(AcceleratorKind::Ant).run(&workload, &p, &cfg);
        let ratio = spark.speedup_vs(&ant);
        // Paper: ~1.12-1.16x over ANT.
        assert!((1.0..1.6).contains(&ratio), "SPARK/ANT ratio {ratio}");
    }

    #[test]
    fn adafloat_gap_matches_paper_scale() {
        let workload = ModelWorkload::bert();
        let cfg = SimConfig::default();
        let p = profile_attention();
        let spark = Accelerator::new(AcceleratorKind::Spark).run(&workload, &p, &cfg);
        let ada = Accelerator::new(AcceleratorKind::AdaFloat).run(&workload, &p, &cfg);
        let ratio = spark.speedup_vs(&ada);
        // Paper: 3.3-4.65x over AdaFloat.
        assert!((2.5..6.0).contains(&ratio), "SPARK/AdaFloat ratio {ratio}");
    }

    #[test]
    fn attention_models_benefit_more_than_cnns() {
        let cfg = SimConfig::default();
        let spark = Accelerator::new(AcceleratorKind::Spark);
        let ada = Accelerator::new(AcceleratorKind::AdaFloat);
        let cnn_speedup = {
            let w = ModelWorkload::resnet50();
            let p = profile_cnn();
            spark.run(&w, &p, &cfg).speedup_vs(&ada.run(&w, &p, &cfg))
        };
        let att_speedup = {
            let w = ModelWorkload::bert();
            let p = profile_attention();
            spark.run(&w, &p, &cfg).speedup_vs(&ada.run(&w, &p, &cfg))
        };
        assert!(att_speedup > cnn_speedup);
    }

    #[test]
    fn dbb_halves_spark_compute() {
        let workload = ModelWorkload::resnet50();
        let p = profile_cnn();
        let dense_cfg = SimConfig::default();
        let sparse_cfg = SimConfig {
            dbb_density: Some(0.5),
            ..SimConfig::default()
        };
        let spark = Accelerator::new(AcceleratorKind::Spark);
        let dense = spark.run(&workload, &p, &dense_cfg);
        let sparse = spark.run(&workload, &p, &sparse_cfg);
        let ratio = dense.total_cycles / sparse.total_cycles;
        assert!((1.5..2.2).contains(&ratio), "DBB speedup {ratio}");
    }

    #[test]
    fn energy_decomposition_positive_components() {
        let workload = ModelWorkload::vgg16();
        let cfg = SimConfig::default();
        let r = Accelerator::new(AcceleratorKind::Spark).run(&workload, &profile_cnn(), &cfg);
        assert!(r.energy.dram_pj > 0.0);
        assert!(r.energy.buffer_pj > 0.0);
        assert!(r.energy.core_pj > 0.0);
    }

    #[test]
    fn report_helpers() {
        let workload = ModelWorkload::resnet18();
        let cfg = SimConfig::default();
        let r = Accelerator::new(AcceleratorKind::Spark).run(&workload, &profile_cnn(), &cfg);
        assert!(r.latency_ms(&cfg) > 0.0);
        assert!(r.gmacs_per_joule(&workload) > 0.0);
        assert_eq!(r.layers.len(), workload.gemms.len());
    }

    #[test]
    fn edp_compounds_speed_and_energy() {
        // SPARK wins both axes vs Eyeriss, so its EDP advantage exceeds
        // either single-axis advantage.
        let workload = ModelWorkload::resnet50();
        let cfg = SimConfig::default();
        let p = profile_cnn();
        let spark = Accelerator::new(AcceleratorKind::Spark).run(&workload, &p, &cfg);
        let eyeriss = Accelerator::new(AcceleratorKind::Eyeriss).run(&workload, &p, &cfg);
        let edp_gain = eyeriss.energy_delay_product(&cfg) / spark.energy_delay_product(&cfg);
        let speedup = spark.speedup_vs(&eyeriss);
        let energy_gain = eyeriss.energy.total() / spark.energy.total();
        assert!(edp_gain > speedup.max(energy_gain), "edp {edp_gain}");
        assert!((edp_gain - speedup * energy_gain).abs() / edp_gain < 1e-9);
    }
}
