//! 28 nm energy model.
//!
//! Per-operation constants follow the standard scaling used throughout the
//! accelerator literature (Horowitz ISSCC '14 numbers scaled to 28 nm):
//! MAC energy grows roughly quadratically with operand width, SRAM access
//! energy is per bit for a multi-megabyte buffer, DRAM is two orders of
//! magnitude above SRAM. The decomposition (DRAM / global buffer / core)
//! matches Fig 12's stacking.


/// Per-operation energy constants in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// One INT4 x INT4 MAC (pJ). Wider MACs scale quadratically from this.
    pub int4_mac_pj: f64,
    /// Extra factor for floating-point MACs at the same width.
    pub float_mac_factor: f64,
    /// Global-buffer (5 MB SRAM) access energy per bit (pJ).
    pub sram_pj_per_bit: f64,
    /// DRAM access energy per bit (pJ).
    pub dram_pj_per_bit: f64,
    /// SPARK decoder energy per decoded value (pJ) — MUX/OR/NOT datapath.
    pub spark_decode_pj: f64,
    /// SPARK encoder energy per encoded value (pJ) — LZD + XOR datapath.
    pub spark_encode_pj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            int4_mac_pj: 0.08,
            float_mac_factor: 1.6,
            sram_pj_per_bit: 0.012,
            dram_pj_per_bit: 3.9,
            spark_decode_pj: 0.004,
            spark_encode_pj: 0.005,
        }
    }
}

impl EnergyModel {
    /// MAC energy at `bits` operand width (integer datapath): quadratic
    /// scaling from the INT4 baseline.
    pub fn int_mac_pj(&self, bits: u8) -> f64 {
        let ratio = f64::from(bits) / 4.0;
        self.int4_mac_pj * ratio * ratio
    }

    /// MAC energy for a floating-point datapath of the given width.
    pub fn float_mac_pj(&self, bits: u8) -> f64 {
        self.int_mac_pj(bits) * self.float_mac_factor
    }
}

/// Energy for one inference, decomposed as in Fig 12.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// DRAM traffic energy (pJ).
    pub dram_pj: f64,
    /// Global-buffer traffic energy (pJ).
    pub buffer_pj: f64,
    /// Processing-core energy: MACs plus codecs (pJ).
    pub core_pj: f64,
}

spark_util::to_json_struct!(EnergyBreakdown { dram_pj, buffer_pj, core_pj });

impl EnergyBreakdown {
    /// Total energy (pJ).
    pub fn total(&self) -> f64 {
        self.dram_pj + self.buffer_pj + self.core_pj
    }

    /// Adds another breakdown component-wise.
    pub fn accumulate(&mut self, other: &EnergyBreakdown) {
        self.dram_pj += other.dram_pj;
        self.buffer_pj += other.buffer_pj;
        self.core_pj += other.core_pj;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_energy_scales_quadratically() {
        let m = EnergyModel::default();
        assert!((m.int_mac_pj(8) / m.int_mac_pj(4) - 4.0).abs() < 1e-12);
        assert!((m.int_mac_pj(16) / m.int_mac_pj(4) - 16.0).abs() < 1e-12);
    }

    #[test]
    fn float_costs_more_than_int() {
        let m = EnergyModel::default();
        assert!(m.float_mac_pj(8) > m.int_mac_pj(8));
    }

    #[test]
    fn dram_dominates_sram_per_bit() {
        let m = EnergyModel::default();
        assert!(m.dram_pj_per_bit > 100.0 * m.sram_pj_per_bit);
    }

    #[test]
    fn breakdown_total_and_accumulate() {
        let mut a = EnergyBreakdown {
            dram_pj: 1.0,
            buffer_pj: 2.0,
            core_pj: 3.0,
        };
        assert_eq!(a.total(), 6.0);
        a.accumulate(&EnergyBreakdown {
            dram_pj: 0.5,
            buffer_pj: 0.5,
            core_pj: 0.5,
        });
        assert_eq!(a.total(), 7.5);
    }

    #[test]
    fn codec_energy_negligible_vs_mac() {
        // The paper's claim: codec overhead is tiny relative to compute.
        let m = EnergyModel::default();
        assert!(m.spark_decode_pj < m.int4_mac_pj / 10.0);
        assert!(m.spark_encode_pj < m.int4_mac_pj / 10.0);
    }
}
