//! Global-buffer capacity model and tile planning.
//!
//! All designs share a 5 MB global buffer (Section V-A). For most layers
//! the weight tile, an activation stripe and the partial sums fit; for the
//! largest layers they do not, and the activations must be re-streamed from
//! DRAM once per resident weight chunk. This module plans that tiling and
//! quantifies the DRAM amplification, showing another place narrow SPARK
//! storage pays: more of the layer fits, so fewer re-fetches happen.

use spark_nn::Gemm;

/// Global buffer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferConfig {
    /// Capacity in bytes (paper: 5 MB).
    pub capacity_bytes: f64,
    /// Fraction reserved for activations/psum double buffering.
    pub activation_share: f64,
}

impl Default for BufferConfig {
    fn default() -> Self {
        Self {
            capacity_bytes: 5.0 * 1024.0 * 1024.0,
            activation_share: 0.4,
        }
    }
}

/// The tiling decision for one GEMM layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TilePlan {
    /// Bytes of encoded weights for the full layer (one repeat).
    pub weight_bytes: f64,
    /// Bytes of encoded activations streamed per pass (one repeat).
    pub activation_bytes: f64,
    /// Number of weight chunks the layer is split into (1 = fully
    /// resident).
    pub weight_chunks: u32,
    /// Multiplier on activation DRAM traffic caused by re-streaming.
    pub activation_refetch: f64,
    /// Peak buffer occupancy as a fraction of capacity.
    pub occupancy: f64,
}

impl TilePlan {
    /// Plans one layer: weights get the non-activation share of the buffer;
    /// if they do not fit, the layer splits into chunks and the activations
    /// are re-streamed once per chunk.
    pub fn plan(gemm: &Gemm, bits_w: f64, bits_a: f64, config: &BufferConfig) -> TilePlan {
        let weight_bytes = gemm.k as f64 * gemm.n as f64 * bits_w / 8.0;
        let activation_bytes = gemm.m as f64 * gemm.k as f64 * bits_a / 8.0;
        let weight_budget = config.capacity_bytes * (1.0 - config.activation_share);
        let weight_chunks = (weight_bytes / weight_budget).ceil().max(1.0) as u32;
        let resident = weight_bytes / f64::from(weight_chunks);
        let act_stripe = (activation_bytes).min(config.capacity_bytes * config.activation_share);
        TilePlan {
            weight_bytes,
            activation_bytes,
            weight_chunks,
            activation_refetch: f64::from(weight_chunks),
            occupancy: ((resident + act_stripe) / config.capacity_bytes).min(1.0),
        }
    }

    /// Total DRAM bytes for the layer under this plan (all repeats):
    /// weights once, activations times the refetch factor.
    pub fn dram_bytes(&self, repeats: usize) -> f64 {
        (self.weight_bytes + self.activation_bytes * self.activation_refetch)
            * repeats as f64
    }
}

/// Summarizes the buffer behaviour of a whole workload.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferReport {
    /// Per-layer plans with labels.
    pub plans: Vec<(String, TilePlan)>,
    /// Fraction of layers fully resident.
    pub resident_fraction: f64,
    /// Aggregate DRAM amplification vs the no-capacity-limit model.
    pub dram_amplification: f64,
}

/// Plans every layer of a workload.
pub fn plan_workload(
    gemms: &[Gemm],
    bits_w: f64,
    bits_a: f64,
    config: &BufferConfig,
) -> BufferReport {
    let plans: Vec<(String, TilePlan)> = gemms
        .iter()
        .map(|g| (g.label.clone(), TilePlan::plan(g, bits_w, bits_a, config)))
        .collect();
    let resident = plans.iter().filter(|(_, p)| p.weight_chunks == 1).count();
    let ideal: f64 = plans
        .iter()
        .zip(gemms)
        .map(|((_, p), g)| (p.weight_bytes + p.activation_bytes) * g.repeats as f64)
        .sum();
    let actual: f64 = plans
        .iter()
        .zip(gemms)
        .map(|((_, p), g)| p.dram_bytes(g.repeats))
        .sum();
    BufferReport {
        resident_fraction: if plans.is_empty() {
            1.0
        } else {
            resident as f64 / plans.len() as f64
        },
        dram_amplification: if ideal == 0.0 { 1.0 } else { actual / ideal },
        plans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_nn::ModelWorkload;

    #[test]
    fn small_layer_fully_resident() {
        let g = Gemm::new("small", 64, 256, 256);
        let p = TilePlan::plan(&g, 8.0, 8.0, &BufferConfig::default());
        assert_eq!(p.weight_chunks, 1);
        assert_eq!(p.activation_refetch, 1.0);
        assert!(p.occupancy < 0.1);
    }

    #[test]
    fn huge_layer_splits_and_refetches() {
        // VGG16 fc1: 25088 x 4096 weights = 100 MB at 8 bits.
        let g = Gemm::new("fc1", 1, 25088, 4096);
        let p = TilePlan::plan(&g, 8.0, 8.0, &BufferConfig::default());
        assert!(p.weight_chunks > 10, "chunks {}", p.weight_chunks);
        assert_eq!(p.activation_refetch, f64::from(p.weight_chunks));
    }

    #[test]
    fn narrower_storage_reduces_chunking() {
        let g = Gemm::new("fc", 1, 8192, 4096);
        let wide = TilePlan::plan(&g, 16.0, 16.0, &BufferConfig::default());
        let narrow = TilePlan::plan(&g, 4.7, 4.7, &BufferConfig::default());
        assert!(narrow.weight_chunks < wide.weight_chunks);
    }

    #[test]
    fn workload_report_spark_vs_int16() {
        let w = ModelWorkload::vgg16();
        let cfg = BufferConfig::default();
        let spark = plan_workload(&w.gemms, 5.4, 5.7, &cfg);
        let int16 = plan_workload(&w.gemms, 16.0, 16.0, &cfg);
        // SPARK keeps more layers resident and amplifies DRAM less.
        assert!(spark.resident_fraction >= int16.resident_fraction);
        assert!(spark.dram_amplification <= int16.dram_amplification);
        assert!(spark.dram_amplification >= 1.0);
    }

    #[test]
    fn bert_layers_mostly_resident_under_spark() {
        let w = ModelWorkload::bert();
        let r = plan_workload(&w.gemms, 4.7, 4.7, &BufferConfig::default());
        assert!(r.resident_fraction > 0.5, "{}", r.resident_fraction);
    }

    #[test]
    fn dram_bytes_scale_with_repeats() {
        let g = Gemm::new("x", 128, 768, 768).times(12);
        let p = TilePlan::plan(&g, 8.0, 8.0, &BufferConfig::default());
        assert!((p.dram_bytes(12) / p.dram_bytes(1) - 12.0).abs() < 1e-9);
    }

    #[test]
    fn empty_workload_neutral() {
        let r = plan_workload(&[], 8.0, 8.0, &BufferConfig::default());
        assert_eq!(r.resident_fraction, 1.0);
        assert_eq!(r.dram_amplification, 1.0);
    }
}
