//! 28 nm area model (Tables VI and VII).
//!
//! Component areas are the paper's own synthesized numbers: a 4-bit PE is
//! 79.57 um^2, the SPARK decoder 6.42 um^2, the ANT decoder 4.9 um^2, and
//! OliVe's 4-/8-bit decoders 60.29 / 80.18 um^2. Everything here is
//! exposed as data so the area tables can be regenerated and asserted.


use crate::arch::AcceleratorKind;

/// Area of one 4-bit PE (um^2, 28 nm) — Table VII.
pub const PE_4BIT_UM2: f64 = 79.57;
/// Area of the SPARK 4-bit decoder (um^2) — Table VII.
pub const SPARK_DECODER_UM2: f64 = 6.42;
/// Area of the SPARK encoder (um^2) — derived from Table VI
/// (64 encoders = 0.000856 mm^2).
pub const SPARK_ENCODER_UM2: f64 = 13.375;
/// Area of the ANT decoder (um^2) — Table VII.
pub const ANT_DECODER_UM2: f64 = 4.9;
/// Area of OliVe's 4-bit decoder (um^2) — Table VII.
pub const OLIVE_DECODER4_UM2: f64 = 60.29;
/// Area of OliVe's 8-bit decoder (um^2) — Table VII.
pub const OLIVE_DECODER8_UM2: f64 = 80.18;

/// One line of an area breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaComponent {
    /// Component name.
    pub component: String,
    /// Instance count.
    pub count: usize,
    /// Total area in mm^2.
    pub area_mm2: f64,
}

/// Area breakdown of a core.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaBreakdown {
    /// The design.
    pub kind: AcceleratorKind,
    /// Component lines.
    pub components: Vec<AreaComponent>,
}

spark_util::to_json_struct!(AreaComponent { component, count, area_mm2 });
spark_util::to_json_struct!(AreaBreakdown { kind, components });

impl AreaBreakdown {
    /// Total core area (mm^2).
    pub fn total_mm2(&self) -> f64 {
        self.components.iter().map(|c| c.area_mm2).sum()
    }

    /// Area share of a component by name (0..=1).
    pub fn share(&self, component: &str) -> f64 {
        let total = self.total_mm2();
        if total == 0.0 {
            return 0.0;
        }
        self.components
            .iter()
            .filter(|c| c.component == component)
            .map(|c| c.area_mm2)
            .sum::<f64>()
            / total
    }
}

fn um2_to_mm2(um2: f64, count: usize) -> f64 {
    um2 * count as f64 / 1e6
}

/// The SPARK core area breakdown (Table VI: 128 decoders, 64 encoders,
/// 4096 4-bit PEs).
pub fn spark_breakdown() -> AreaBreakdown {
    AreaBreakdown {
        kind: AcceleratorKind::Spark,
        components: vec![
            AreaComponent {
                component: "4-bit decoder".into(),
                count: 128,
                area_mm2: um2_to_mm2(SPARK_DECODER_UM2, 128),
            },
            AreaComponent {
                component: "encoder".into(),
                count: 64,
                area_mm2: um2_to_mm2(SPARK_ENCODER_UM2, 64),
            },
            AreaComponent {
                component: "4-bit PE".into(),
                count: 4096,
                area_mm2: um2_to_mm2(PE_4BIT_UM2, 4096),
            },
        ],
    }
}

/// Core area breakdown for any design (Table VII).
pub fn breakdown(kind: AcceleratorKind) -> AreaBreakdown {
    let pe = |count: usize, um2: f64, name: &str| AreaComponent {
        component: name.into(),
        count,
        area_mm2: um2_to_mm2(um2, count),
    };
    let components = match kind {
        AcceleratorKind::Spark => {
            return spark_breakdown();
        }
        AcceleratorKind::Ant => vec![
            pe(128, ANT_DECODER_UM2, "decoder"),
            pe(4096, PE_4BIT_UM2, "4-bit PE"),
        ],
        AcceleratorKind::Olive => vec![
            pe(128, OLIVE_DECODER4_UM2, "4-bit decoder"),
            pe(64, OLIVE_DECODER8_UM2, "8-bit decoder"),
            pe(4096, PE_4BIT_UM2, "4-bit PE"),
        ],
        AcceleratorKind::BitFusion => vec![pe(4096, PE_4BIT_UM2, "4-bit PE")],
        // Composite PEs sized so each design lands at the iso-area target
        // (~0.31-0.33 mm^2, Table VII).
        AcceleratorKind::OlAccel => vec![pe(1152, 268.0, "4/8-bit PE")],
        AcceleratorKind::BiScaled => vec![pe(2560, 128.0, "6-bit BPE")],
        AcceleratorKind::AdaFloat => vec![pe(896, 365.0, "8-bit PE")],
        AcceleratorKind::Eyeriss => vec![pe(168, 1839.0, "16-bit PE")],
    };
    AreaBreakdown { kind, components }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_vi_spark_totals() {
        let b = spark_breakdown();
        // Decoders: 128 x 6.42 um^2 = 0.000822 mm^2 (Table VI).
        let dec = b
            .components
            .iter()
            .find(|c| c.component == "4-bit decoder")
            .unwrap();
        assert!((dec.area_mm2 - 0.000822).abs() < 1e-5);
        // Encoders: 0.000856 mm^2.
        let enc = b.components.iter().find(|c| c.component == "encoder").unwrap();
        assert!((enc.area_mm2 - 0.000856).abs() < 1e-5);
        // PEs: 0.326 mm^2.
        let pes = b.components.iter().find(|c| c.component == "4-bit PE").unwrap();
        assert!((pes.area_mm2 - 0.326).abs() < 0.001);
    }

    #[test]
    fn spark_codec_overhead_fraction_matches_table_vi() {
        let b = spark_breakdown();
        // Table VI: decoders 0.251 %, encoders 0.261 % of core area.
        assert!((b.share("4-bit decoder") - 0.00251).abs() < 2e-4);
        assert!((b.share("encoder") - 0.00261).abs() < 2e-4);
        assert!(b.share("4-bit PE") > 0.99);
    }

    #[test]
    fn iso_area_across_designs() {
        // Table VII: every core lands between ~0.30 and ~0.34 mm^2.
        for kind in AcceleratorKind::ALL {
            let total = breakdown(kind).total_mm2();
            assert!(
                (0.29..0.35).contains(&total),
                "{}: {total} mm^2",
                kind.name()
            );
        }
    }

    #[test]
    fn spark_has_smallest_codec_area() {
        let spark_dec = SPARK_DECODER_UM2 * 128.0;
        let olive_dec = OLIVE_DECODER4_UM2 * 128.0 + OLIVE_DECODER8_UM2 * 64.0;
        assert!(spark_dec < olive_dec / 5.0);
    }

    #[test]
    fn table_vii_spark_total() {
        // Table VII: SPARK core = 0.327 mm^2 (decoders + PEs).
        let b = spark_breakdown();
        assert!((b.total_mm2() - 0.3276).abs() < 0.002, "{}", b.total_mm2());
    }

    #[test]
    fn share_of_missing_component_is_zero() {
        assert_eq!(spark_breakdown().share("nonexistent"), 0.0);
    }
}
