//! Cycle-accurate simulation of the variable-speed systolic array
//! (Fig 9(c)).
//!
//! The array is weight-stationary: a `rows x cols` tile of weights is held
//! in the PEs, activation vectors stream in from the left (one element per
//! row), and partial sums flow down the columns. PE `(k, j)` can begin its
//! `t`-th MAC only when
//!
//! 1. it has finished its previous MAC (the PE is busy for 1, 2 or 4 cycles
//!    depending on operand precision — Fig 8),
//! 2. its left neighbour has forwarded the `t`-th activation, and
//! 3. the partial sum from the PE above for wave `t` has arrived.
//!
//! Evaluating the resulting critical-path recurrence
//! `finish(k,j,t) = max(finish(k,j,t-1), finish(k,j-1,t), finish(k-1,j,t)) + cost`
//! gives exactly the completion time a lockstep array with these stalls
//! exhibits; the paper's Fig 9(c) walk-through is one instance of it.

use crate::cost::{mac_cycles, OperandKind};

/// The cycle-accurate array simulator.
#[derive(Debug, Clone)]
pub struct SystolicSim {
    rows: usize,
    cols: usize,
}

/// Result of simulating one tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileResult {
    /// Total cycles until the last PE finishes the last wave.
    pub cycles: u64,
    /// MAC operations executed.
    pub macs: u64,
    /// Sum of per-MAC busy cycles (energy-relevant).
    pub busy_cycles: u64,
}

impl TileResult {
    /// Average cycles per activation wave (throughput measure).
    pub fn cycles_per_wave(&self, waves: usize) -> f64 {
        if waves == 0 {
            return 0.0;
        }
        self.cycles as f64 / waves as f64
    }
}

impl SystolicSim {
    /// Creates a simulator for a `rows x cols` PE array.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dims must be positive");
        Self { rows, cols }
    }

    /// Array rows (the K dimension of the held weight tile).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array columns (the N dimension of the held weight tile).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Simulates a weight-stationary tile pass.
    ///
    /// `weights[k][j]` is the precision of the weight held in PE `(k, j)`
    /// (`k < rows`, `j < cols`); `activations[t][k]` the precision of the
    /// activation element entering row `k` on wave `t`.
    ///
    /// # Panics
    ///
    /// Panics when the operand matrices do not match the array dimensions.
    pub fn run_tile(
        &self,
        weights: &[Vec<OperandKind>],
        activations: &[Vec<OperandKind>],
    ) -> TileResult {
        assert_eq!(weights.len(), self.rows, "weight rows must match array");
        for row in weights {
            assert_eq!(row.len(), self.cols, "weight cols must match array");
        }
        for wave in activations {
            assert_eq!(wave.len(), self.rows, "activation width must match rows");
        }
        let waves = activations.len();
        let mut prev = vec![vec![0u64; self.cols]; self.rows]; // finish at t-1
        let mut busy = 0u64;
        for wave in activations {
            let mut cur = vec![vec![0u64; self.cols]; self.rows];
            for k in 0..self.rows {
                for j in 0..self.cols {
                    let cost = u64::from(mac_cycles(wave[k], weights[k][j]));
                    busy += cost;
                    let mut start = prev[k][j];
                    if j > 0 {
                        start = start.max(cur[k][j - 1]);
                    }
                    if k > 0 {
                        start = start.max(cur[k - 1][j]);
                    }
                    // Initial skew: data reaches PE (k, j) after k + j hops.
                    start = start.max((k + j) as u64);
                    cur[k][j] = start + cost;
                }
            }
            prev = cur;
        }
        let cycles = prev
            .iter()
            .flat_map(|r| r.iter())
            .copied()
            .max()
            .unwrap_or(0);
        TileResult {
            cycles,
            macs: (self.rows * self.cols * waves) as u64,
            busy_cycles: busy,
        }
    }

    /// Convenience: simulate with uniform weight precision and per-wave
    /// activation precisions drawn from a deterministic pattern of
    /// `p_short` (used by calibration).
    pub fn run_uniform(
        &self,
        waves: usize,
        w_kind: OperandKind,
        a_kind: OperandKind,
    ) -> TileResult {
        let weights = vec![vec![w_kind; self.cols]; self.rows];
        let activations = vec![vec![a_kind; self.rows]; waves];
        self.run_tile(&weights, &activations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all(kind: OperandKind, rows: usize, cols: usize) -> Vec<Vec<OperandKind>> {
        vec![vec![kind; cols]; rows]
    }

    #[test]
    fn all_int4_full_speed() {
        // Uniform 1-cycle MACs: pipeline fills in rows+cols-2 cycles and
        // then completes one wave per cycle.
        let sim = SystolicSim::new(4, 4);
        let r = sim.run_uniform(10, OperandKind::Int4, OperandKind::Int4);
        assert_eq!(r.cycles, (4 - 1) + (4 - 1) + 10);
        assert_eq!(r.macs, 160);
        assert_eq!(r.busy_cycles, 160);
    }

    #[test]
    fn all_int8_four_times_slower_steady_state() {
        let sim = SystolicSim::new(4, 4);
        let fast = sim.run_uniform(50, OperandKind::Int4, OperandKind::Int4);
        let slow = sim.run_uniform(50, OperandKind::Int8, OperandKind::Int8);
        let ratio = slow.cycles as f64 / fast.cycles as f64;
        assert!((3.0..=4.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn mixed_weights_stall_but_do_not_serialize() {
        // One slow (int8) weight column among int4: throughput is set by
        // the slow column (2 cycles/wave), not by 4x serialization.
        let sim = SystolicSim::new(2, 4);
        let mut weights = all(OperandKind::Int4, 2, 4);
        weights[0][2] = OperandKind::Int8;
        weights[1][2] = OperandKind::Int8;
        let activations = vec![vec![OperandKind::Int4; 2]; 40];
        let r = sim.run_tile(&weights, &activations);
        let per_wave = r.cycles_per_wave(40);
        assert!((1.9..=2.4).contains(&per_wave), "cycles/wave {per_wave}");
    }

    #[test]
    fn single_pe_is_sum_of_costs() {
        let sim = SystolicSim::new(1, 1);
        let weights = all(OperandKind::Int8, 1, 1);
        let activations = vec![
            vec![OperandKind::Int4],
            vec![OperandKind::Int8],
            vec![OperandKind::Int4],
        ];
        let r = sim.run_tile(&weights, &activations);
        // costs: 2 + 4 + 2 = 8
        assert_eq!(r.cycles, 8);
        assert_eq!(r.busy_cycles, 8);
    }

    #[test]
    fn paper_fig9_example_scale() {
        // Fig 9(c): four PEs complete eight original INT8 values in at most
        // 19 cycles. Our four-PE row with a representative mixed stream must
        // land in that neighbourhood (the figure's exact stream is not fully
        // specified, so we check the bound).
        let sim = SystolicSim::new(1, 4);
        let weights = vec![vec![
            OperandKind::Int4,
            OperandKind::Int8,
            OperandKind::Int4,
            OperandKind::Int8,
        ]];
        let activations: Vec<Vec<OperandKind>> = (0..8)
            .map(|t| {
                vec![if t % 3 == 0 {
                    OperandKind::Int8
                } else {
                    OperandKind::Int4
                }]
            })
            .collect();
        let r = sim.run_tile(&weights, &activations);
        assert!(r.cycles <= 32, "cycles {}", r.cycles);
        assert!(r.cycles >= 8);
    }

    #[test]
    fn empty_wave_list() {
        let sim = SystolicSim::new(2, 2);
        let r = sim.run_tile(&all(OperandKind::Int4, 2, 2), &[]);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.macs, 0);
    }

    #[test]
    #[should_panic(expected = "weight rows")]
    fn dimension_mismatch_panics() {
        let sim = SystolicSim::new(2, 2);
        let _ = sim.run_tile(&all(OperandKind::Int4, 3, 2), &[]);
    }

    #[test]
    fn throughput_between_mean_and_max_cost() {
        // With mixed random-ish costs the steady-state cycles/wave must lie
        // between the per-PE mean cost and the worst-case cost.
        let sim = SystolicSim::new(8, 8);
        let mut weights = all(OperandKind::Int4, 8, 8);
        for k in 0..8 {
            for j in 0..8 {
                if (k * 7 + j * 3) % 5 == 0 {
                    weights[k][j] = OperandKind::Int8;
                }
            }
        }
        let activations: Vec<Vec<OperandKind>> = (0..100)
            .map(|t| {
                (0..8)
                    .map(|k| {
                        if (t * 13 + k * 11) % 4 == 0 {
                            OperandKind::Int8
                        } else {
                            OperandKind::Int4
                        }
                    })
                    .collect()
            })
            .collect();
        let r = sim.run_tile(&weights, &activations);
        let per_wave = r.cycles_per_wave(100);
        let mean_cost = r.busy_cycles as f64 / r.macs as f64;
        assert!(per_wave >= mean_cost, "per_wave {per_wave} < mean {mean_cost}");
        assert!(per_wave <= 4.5, "per_wave {per_wave}");
    }
}
