//! Cycle-accurate simulation of the variable-speed systolic array
//! (Fig 9(c)).
//!
//! The array is weight-stationary: a `rows x cols` tile of weights is held
//! in the PEs, activation vectors stream in from the left (one element per
//! row), and partial sums flow down the columns. PE `(k, j)` can begin its
//! `t`-th MAC only when
//!
//! 1. it has finished its previous MAC (the PE is busy for 1, 2 or 4 cycles
//!    depending on operand precision — Fig 8),
//! 2. its left neighbour has forwarded the `t`-th activation, and
//! 3. the partial sum from the PE above for wave `t` has arrived.
//!
//! Evaluating the resulting critical-path recurrence
//! `finish(k,j,t) = max(finish(k,j,t-1), finish(k,j-1,t), finish(k-1,j,t)) + cost`
//! gives exactly the completion time a lockstep array with these stalls
//! exhibits; the paper's Fig 9(c) walk-through is one instance of it.
//!
//! ## Engine
//!
//! [`SystolicSim::run_tile`] evaluates the recurrence with a flat-buffer
//! kernel: one reusable row-major `u32` finish-time plane updated in place
//! wave by wave, per-row cost prefix sums precomputed from a per-tile
//! [`TileCosts`] byte table instead of per-MAC [`mac_cycles`] dispatch,
//! and the per-wave recurrence recast as a prefix-sum scan so it
//! vectorizes (AVX-512/AVX2 when the host has them, detected at runtime).
//! It also attributes every MAC's start-time gate to a
//! [`StallBreakdown`]. The nested-`Vec` reference evaluation of the same
//! recurrence is kept as [`SystolicSim::run_tile_reference`] for
//! differential testing and the engine-variant benchmark; the two are
//! bit-identical (randomized property test, see DESIGN.md for the
//! equivalence argument).

use crate::cost::{mac_cycles, OperandKind, TileCosts};

/// The cycle-accurate array simulator.
#[derive(Debug, Clone)]
pub struct SystolicSim {
    rows: usize,
    cols: usize,
}

/// Which dependency gated each MAC's start time — the observability layer
/// over the Fig 9(c) recurrence.
///
/// Each MAC is attributed to exactly one gate: the largest of the four
/// start-time lower bounds, with ties resolved in the order self, left,
/// above, skew (a later gate takes the attribution only when it strictly
/// exceeds all earlier ones). The four counters therefore partition the
/// tile's MACs: `total() == TileResult::macs`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// MACs gated by the PE's own previous wave (the PE was still busy).
    pub self_busy: u64,
    /// MACs gated by the activation forwarded from the left neighbour.
    pub left: u64,
    /// MACs gated by the partial sum arriving from the PE above.
    pub above: u64,
    /// MACs gated by the initial `k + j` data-skew of the systolic fill.
    pub skew: u64,
}

impl StallBreakdown {
    /// Total attributed MACs (equals the tile's MAC count).
    pub fn total(&self) -> u64 {
        self.self_busy + self.left + self.above + self.skew
    }
}

/// Result of simulating one tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileResult {
    /// Total cycles until the last PE finishes the last wave.
    pub cycles: u64,
    /// MAC operations executed.
    pub macs: u64,
    /// Sum of per-MAC busy cycles (energy-relevant).
    pub busy_cycles: u64,
    /// Which dependency gated each MAC (all zero for
    /// [`SystolicSim::run_tile_reference`], which does not attribute).
    pub stalls: StallBreakdown,
}

impl TileResult {
    /// Average cycles per activation wave (throughput measure).
    pub fn cycles_per_wave(&self, waves: usize) -> f64 {
        if waves == 0 {
            return 0.0;
        }
        self.cycles as f64 / waves as f64
    }
}

impl SystolicSim {
    /// Creates a simulator for a `rows x cols` PE array.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dims must be positive");
        Self { rows, cols }
    }

    /// Array rows (the K dimension of the held weight tile).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array columns (the N dimension of the held weight tile).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Simulates a weight-stationary tile pass.
    ///
    /// `weights[k][j]` is the precision of the weight held in PE `(k, j)`
    /// (`k < rows`, `j < cols`); `activations[t][k]` the precision of the
    /// activation element entering row `k` on wave `t`.
    ///
    /// # Panics
    ///
    /// Panics when the operand matrices do not match the array dimensions.
    pub fn run_tile(
        &self,
        weights: &[Vec<OperandKind>],
        activations: &[Vec<OperandKind>],
    ) -> TileResult {
        self.check_dims(weights, activations);
        let waves = activations.len();
        // The engine tracks finish times in `u32` (16 SIMD lanes instead of
        // 8): every finish is bounded by 4 cycles per wave plus the fill
        // skew. A tile deep enough to overflow would need an activation
        // matrix of billions of waves — unrepresentable in memory long
        // before the bound is reached — so reject it outright.
        assert!(
            4 * (waves as u64) + (self.rows + self.cols) as u64 <= i32::MAX as u64,
            "tile depth would overflow u32 finish times"
        );
        let costs = TileCosts::from_weights(weights);
        let mut eng = Engine::new(self.rows, self.cols, &costs);
        if waves > 0 {
            eng.wave_fill(&activations[0]);
        }
        // Steady-state waves (t >= 1) drop the skew term entirely: the PE's
        // own previous finish already exceeds it (finish(0) >= skew + cost),
        // so skew can neither move a start time nor win attribution.
        for wave in &activations[waves.min(1)..] {
            eng.wave_steady(wave);
        }
        eng.finish(waves)
    }

    /// The original nested-`Vec` evaluation of the Fig 9(c) recurrence,
    /// kept as the differential-testing baseline for [`Self::run_tile`] and
    /// as the "reference" variant of the engine benchmark. Identical
    /// `cycles` / `macs` / `busy_cycles`; does not attribute stalls.
    ///
    /// # Panics
    ///
    /// Panics when the operand matrices do not match the array dimensions.
    pub fn run_tile_reference(
        &self,
        weights: &[Vec<OperandKind>],
        activations: &[Vec<OperandKind>],
    ) -> TileResult {
        self.check_dims(weights, activations);
        let waves = activations.len();
        let mut prev = vec![vec![0u64; self.cols]; self.rows]; // finish at t-1
        let mut busy = 0u64;
        for wave in activations {
            let mut cur = vec![vec![0u64; self.cols]; self.rows];
            for k in 0..self.rows {
                for j in 0..self.cols {
                    let cost = u64::from(mac_cycles(wave[k], weights[k][j]));
                    busy += cost;
                    let mut start = prev[k][j];
                    if j > 0 {
                        start = start.max(cur[k][j - 1]);
                    }
                    if k > 0 {
                        start = start.max(cur[k - 1][j]);
                    }
                    // Initial skew: data reaches PE (k, j) after k + j hops.
                    start = start.max((k + j) as u64);
                    cur[k][j] = start + cost;
                }
            }
            prev = cur;
        }
        let cycles = prev
            .iter()
            .flat_map(|r| r.iter())
            .copied()
            .max()
            .unwrap_or(0);
        TileResult {
            cycles,
            macs: (self.rows * self.cols * waves) as u64,
            busy_cycles: busy,
            stalls: StallBreakdown::default(),
        }
    }

    fn check_dims(&self, weights: &[Vec<OperandKind>], activations: &[Vec<OperandKind>]) {
        assert_eq!(weights.len(), self.rows, "weight rows must match array");
        for row in weights {
            assert_eq!(row.len(), self.cols, "weight cols must match array");
        }
        for wave in activations {
            assert_eq!(wave.len(), self.rows, "activation width must match rows");
        }
    }

    /// Convenience: simulate with uniform weight precision and per-wave
    /// activation precisions drawn from a deterministic pattern of
    /// `p_short` (used by calibration).
    pub fn run_uniform(
        &self,
        waves: usize,
        w_kind: OperandKind,
        a_kind: OperandKind,
    ) -> TileResult {
        let weights = vec![vec![w_kind; self.cols]; self.rows];
        let activations = vec![vec![a_kind; self.rows]; waves];
        self.run_tile(&weights, &activations)
    }
}

/// Working state of the flat-buffer engine: the cost tables, the in-place
/// finish-time plane, and the busy/stall accumulators.
///
/// The plane is updated in place, one wave at a time: reading a PE's slot
/// before overwriting it yields the previous wave's finish (the self
/// bound), and row `k-1`'s slots already hold the current wave (the above
/// bound). `zeros` stands in for the row above row 0. All gate tests are
/// branchless selects — the data-dependent pattern makes real branches
/// mispredict constantly. The binding gate is the max of the start-time
/// bounds; a later-priority gate wins attribution only on strict excess.
/// Self-gating is derived at the end (the four gates partition the MACs),
/// so the hot loops count with independent 0/1 adds instead of a serial
/// read-modify-write chain on one shared counter.
///
/// Steady-state waves are evaluated as a prefix-sum scan rather than the
/// literal left-to-right recurrence (see [`steady_row_core`]), which keeps
/// the only serial dependence to a one-instruction running max and lets
/// the rest of the per-MAC work vectorize.
struct Engine<'a> {
    rows: usize,
    cols: usize,
    costs: &'a TileCosts,
    /// Per-kind exclusive prefix sums of each cost row, `rows x (cols+1)`:
    /// `psum[a][k*(cols+1) + j]` is the total cost of columns `< j` of row
    /// `k` under activation kind `a` (so the last entry of a row is its
    /// busy-cycle total).
    psum: [Vec<u32>; 2],
    plane: Vec<u32>,
    zeros: Vec<u32>,
    /// Scratch for the steady-wave scan: `g[j] - E[j]` terms.
    hbuf: Vec<i32>,
    /// Scratch for the steady-wave scan: the row's new finish times.
    finbuf: Vec<u32>,
    simd: SimdLevel,
    busy: u64,
    left_c: u64,
    above_c: u64,
    skew_c: u64,
}

impl<'a> Engine<'a> {
    fn new(rows: usize, cols: usize, costs: &'a TileCosts) -> Self {
        let psum = [OperandKind::Int4, OperandKind::Int8].map(|a| {
            let mut table = Vec::with_capacity(rows * (cols + 1));
            for k in 0..rows {
                let mut acc = 0u32;
                table.push(0);
                for &c in costs.row(a, k) {
                    acc += u32::from(c);
                    table.push(acc);
                }
            }
            table
        });
        Self {
            rows,
            cols,
            costs,
            psum,
            plane: vec![0u32; rows * cols],
            zeros: vec![0u32; cols],
            hbuf: vec![0i32; cols],
            finbuf: vec![0u32; cols],
            simd: SimdLevel::detect(),
            busy: 0,
            left_c: 0,
            above_c: 0,
            skew_c: 0,
        }
    }

    /// Accounts the row's busy cycles and returns its cost row.
    fn row_costs(&mut self, a_kind: OperandKind, k: usize) -> &'a [u8] {
        let idx = usize::from(a_kind == OperandKind::Int8);
        self.busy += u64::from(self.psum[idx][k * (self.cols + 1) + self.cols]);
        &self.costs.row(a_kind, k)[..self.cols]
    }

    /// The pipeline-fill wave (t = 0): start times additionally respect the
    /// `k + j` systolic skew. Only here can skew gate — from wave 1 on, the
    /// PE's own previous finish already exceeds it.
    fn wave_fill(&mut self, wave: &[OperandKind]) {
        let cols = self.cols;
        // Counters live in registers for the duration of the wave; going
        // through `self` per MAC would serialize the loop on a
        // read-modify-write memory chain.
        let (mut a_c, mut l_c, mut s_c) = (0u64, 0u64, 0u64);
        for k in 0..self.rows {
            let rc = self.row_costs(wave[k], k);
            let base = k * cols;
            let (head, tail) = self.plane.split_at_mut(base);
            let row = &mut tail[..cols];
            let above: &[u32] = if k == 0 {
                &self.zeros[..cols]
            } else {
                &head[base - cols..]
            };
            let mut lf = 0u32;
            for j in 0..cols {
                let cost = u32::from(rc[j]);
                let s_self = row[j];
                let ab = above[j];
                let skew = (k + j) as u32;
                let m01 = s_self.max(lf);
                let m012 = m01.max(ab);
                let start = m012.max(skew);
                let gl = lf > s_self;
                let ga = ab > m01;
                let gs = skew > m012;
                s_c += u64::from(gs);
                a_c += u64::from(ga & !gs);
                l_c += u64::from(gl & !ga & !gs);
                let fin = start + cost;
                row[j] = fin;
                lf = fin;
            }
        }
        self.above_c += a_c;
        self.left_c += l_c;
        self.skew_c += s_c;
    }

    /// One steady-state wave (t >= 1, no skew term), in place, via the
    /// scan kernels. The SIMD dispatch happens once per wave, not per row,
    /// so the whole row loop compiles inside one `#[target_feature]`
    /// context (row-kernel calls inline, vector constants stay live).
    fn wave_steady(&mut self, wave: &[OperandKind]) {
        match self.simd {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `SimdLevel::detect` verified the features at runtime.
            SimdLevel::Avx512 => unsafe { self.wave_steady_avx512(wave) },
            _ => self.wave_steady_portable(wave),
        }
    }

    fn wave_steady_portable(&mut self, wave: &[OperandKind]) {
        let cols = self.cols;
        let (mut a_c, mut l_c) = (0u64, 0u64);
        for k in 0..self.rows {
            let idx = usize::from(wave[k] == OperandKind::Int8);
            let e = &self.psum[idx][k * (cols + 1)..][..cols + 1];
            self.busy += u64::from(e[cols]);
            let base = k * cols;
            let (head, tail) = self.plane.split_at_mut(base);
            let row = &mut tail[..cols];
            let above: &[u32] = if k == 0 {
                &self.zeros[..cols]
            } else {
                &head[base - cols..]
            };
            let (da, dl) = steady_row(self.simd, row, above, e, &mut self.hbuf, &mut self.finbuf);
            a_c += da;
            l_c += dl;
        }
        self.above_c += a_c;
        self.left_c += l_c;
    }

    /// The row loop of [`Engine::wave_steady_portable`] compiled with
    /// AVX-512 enabled so [`steady_row_avx512`] inlines into it.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f", enable = "avx512vl", enable = "avx512dq")]
    unsafe fn wave_steady_avx512(&mut self, wave: &[OperandKind]) {
        let cols = self.cols;
        let (mut a_c, mut l_c) = (0u64, 0u64);
        for k in 0..self.rows {
            let idx = usize::from(wave[k] == OperandKind::Int8);
            let e = &self.psum[idx][k * (cols + 1)..][..cols + 1];
            self.busy += u64::from(e[cols]);
            let base = k * cols;
            let (head, tail) = self.plane.split_at_mut(base);
            let row = &mut tail[..cols];
            let above: &[u32] = if k == 0 {
                &self.zeros[..cols]
            } else {
                &head[base - cols..]
            };
            let (da, dl) = steady_row_avx512(row, above, e, &mut self.hbuf, &mut self.finbuf);
            a_c += da;
            l_c += dl;
        }
        self.above_c += a_c;
        self.left_c += l_c;
    }

    fn finish(self, waves: usize) -> TileResult {
        let macs = (self.rows * self.cols * waves) as u64;
        TileResult {
            cycles: u64::from(self.plane.iter().copied().max().unwrap_or(0)),
            macs,
            busy_cycles: self.busy,
            stalls: StallBreakdown {
                self_busy: macs - self.left_c - self.above_c - self.skew_c,
                left: self.left_c,
                above: self.above_c,
                skew: self.skew_c,
            },
        }
    }
}

/// Widest SIMD feature set the host supports for the steady-row kernel.
///
/// On AVX-512 hosts the steady row runs a hand-fused 16-lane intrinsics
/// kernel ([`steady_row_avx512`]); with AVX2 the plain-Rust kernel body is
/// compiled inside a `#[target_feature]` wrapper so LLVM may auto-vectorize
/// its element-wise passes with 256-bit compares and maxes, which the
/// x86-64 baseline ISA lacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SimdLevel {
    Scalar,
    #[cfg(target_arch = "x86_64")]
    Avx2,
    #[cfg(target_arch = "x86_64")]
    Avx512,
}

impl SimdLevel {
    fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512vl")
                && std::arch::is_x86_feature_detected!("avx512dq")
            {
                return SimdLevel::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimdLevel::Avx2;
            }
        }
        SimdLevel::Scalar
    }
}

/// One steady-state wave of one array row, as a scan instead of the
/// literal recurrence.
///
/// The recurrence along a row is `fin[j] = max(g[j], fin[j-1]) + c[j]`
/// with `g[j] = max(self[j], above[j])` — a max-plus prefix scan. With
/// exclusive cost prefix sums `E[j]` (so `c[j] = E[j+1] - E[j]`), expanding
/// the recurrence gives
///
/// ```text
/// fin[j] = E[j+1] + max_{i <= j} (g[i] - E[i])
/// ```
///
/// because the candidate "start at column i's bound, then chain through
/// every PE to j" costs `g[i] + (E[j+1] - E[i])`. That turns the serial
/// part into a plain running max (one compare per element, loop-carried
/// latency one instruction) while the `g`/`h` terms (pass 1) and the gate
/// attribution (pass 3) are element-wise and vectorizable. `h` values are
/// `i32`: `g - E` can be negative early in a row, and every quantity is
/// below `2^31` (finish times grow by at most 4 per wave plus skew; see
/// the depth assertion in [`SystolicSim::run_tile`]).
///
/// Returns the row's (above, left) gate counts; the row's new finish times
/// are written back into `row` in place.
#[inline(always)]
fn steady_row_core(
    row: &mut [u32],
    above: &[u32],
    e: &[u32],
    hbuf: &mut [i32],
    finbuf: &mut [u32],
) -> (u64, u64) {
    // Re-slice to lengths derived from `cols` so the optimizer can prove
    // every index in the fixed-trip-count loops below is in bounds —
    // per-iteration bounds checks would block vectorization of the
    // element-wise passes.
    let cols = row.len();
    let above = &above[..cols];
    let e = &e[..cols + 1];
    let hbuf = &mut hbuf[..cols];
    let finbuf = &mut finbuf[..cols];
    // Pass 1 (element-wise): h[j] = max(self, above) - E[j].
    for j in 0..cols {
        hbuf[j] = (row[j].max(above[j]) as i32).wrapping_sub(e[j] as i32);
    }
    // Pass 2 (the only serial chain): running max, then fin = r + E[j+1].
    let mut r = i32::MIN;
    for j in 0..cols {
        r = r.max(hbuf[j]);
        finbuf[j] = r.wrapping_add(e[j + 1] as i32) as u32;
    }
    attribute_writeback(row, above, finbuf)
}

/// Pass 3 of the steady-wave scan: gate attribution against the finished
/// wave, then the new finish times written over the old ones. `row` still
/// holds the previous wave on entry — each slot is read (as the self
/// bound) before being overwritten. Element-wise and vectorizable.
#[inline(always)]
fn attribute_writeback(row: &mut [u32], above: &[u32], finbuf: &[u32]) -> (u64, u64) {
    let cols = row.len();
    let above = &above[..cols];
    let finbuf = &finbuf[..cols];
    let mut a_c = u64::from(above[0] > row[0]); // j = 0 has no left input
    let mut l_c = 0u64;
    row[0] = finbuf[0];
    let selfs = &mut row[1..];
    let abs_in = &above[1..];
    let lfs = &finbuf[..cols - 1];
    let fins = &finbuf[1..];
    for i in 0..cols - 1 {
        let lf = lfs[i];
        let s = selfs[i];
        let ab = abs_in[i];
        let gl = lf > s;
        let ga = ab > s.max(lf);
        a_c += u64::from(ga);
        l_c += u64::from(gl & !ga);
        selfs[i] = fins[i];
    }
    (a_c, l_c)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn steady_row_avx2(
    row: &mut [u32],
    above: &[u32],
    e: &[u32],
    hbuf: &mut [i32],
    finbuf: &mut [u32],
) -> (u64, u64) {
    steady_row_core(row, above, e, hbuf, finbuf)
}

/// AVX-512 steady row: all three passes fused into one sweep.
///
/// The running max is a 16-lane Hillis-Steele inclusive scan — lane `i`
/// becomes the max of lanes `0..=i` after shift-up-by-{1,2,4,8} max steps
/// (`i32::MIN` is the max identity shifted in), and a broadcast `carry`
/// folds in the prefix of earlier vectors. The left-neighbour finishes for
/// gate attribution are the finish vector shifted up one lane (previous
/// vector's last lane carried in; zero enters at `j = 0`, the column with
/// no left input), the gates are unsigned compare masks counted with
/// popcount, and the finish times overwrite `row` directly — nothing
/// round-trips through scratch memory. Only the vector-to-vector carries
/// are loop-carried.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx512vl", enable = "avx512dq")]
unsafe fn steady_row_avx512(
    row: &mut [u32],
    above: &[u32],
    e: &[u32],
    _hbuf: &mut [i32],
    _finbuf: &mut [u32],
) -> (u64, u64) {
    use std::arch::x86_64::*;
    let cols = row.len();
    let above_s = &above[..cols];
    let e_s = &e[..cols + 1];
    let neg = _mm512_set1_epi32(i32::MIN);
    let idx15 = _mm512_set1_epi32(15);
    let mut carry = neg;
    let mut fin_prev = _mm512_setzero_si512();
    let mut a_c = 0u64;
    let mut l_c = 0u64;
    let mut j = 0usize;
    while j + 16 <= cols {
        // SAFETY: `j + 16 <= cols` bounds every 16-lane access; `e` has
        // `cols + 1` elements, so the shifted `e[j+1..j+17]` load fits too.
        let s = _mm512_loadu_epi32(row.as_ptr().add(j).cast::<i32>());
        let ab = _mm512_loadu_epi32(above_s.as_ptr().add(j).cast::<i32>());
        let g = _mm512_max_epu32(s, ab);
        let ev = _mm512_loadu_epi32(e_s.as_ptr().add(j).cast::<i32>());
        let mut h = _mm512_sub_epi32(g, ev);
        h = _mm512_max_epi32(h, _mm512_alignr_epi32::<15>(h, neg));
        h = _mm512_max_epi32(h, _mm512_alignr_epi32::<14>(h, neg));
        h = _mm512_max_epi32(h, _mm512_alignr_epi32::<12>(h, neg));
        h = _mm512_max_epi32(h, _mm512_alignr_epi32::<8>(h, neg));
        h = _mm512_max_epi32(h, carry);
        carry = _mm512_permutexvar_epi32(idx15, h);
        let e1 = _mm512_loadu_epi32(e_s.as_ptr().add(j + 1).cast::<i32>());
        let fin = _mm512_add_epi32(h, e1);
        let lf = _mm512_alignr_epi32::<15>(fin, fin_prev);
        fin_prev = fin;
        let gl = _mm512_cmpgt_epu32_mask(lf, s);
        let ga = _mm512_cmpgt_epu32_mask(ab, _mm512_max_epu32(s, lf));
        a_c += u64::from(ga.count_ones() as u16);
        l_c += u64::from((gl & !ga).count_ones() as u16);
        _mm512_storeu_epi32(row.as_mut_ptr().add(j).cast::<i32>(), fin);
        j += 16;
    }
    // Scalar tail, seeded with the vector carries (scan prefix in every
    // `carry` lane; the last finish in `fin_prev`'s top lane).
    let mut r = _mm_cvtsi128_si32(_mm512_castsi512_si128(carry));
    let mut lf = if j == 0 {
        0u32
    } else {
        _mm_cvtsi128_si32(_mm512_castsi512_si128(_mm512_permutexvar_epi32(idx15, fin_prev)))
            as u32
    };
    for jj in j..cols {
        let s = row[jj];
        let ab = above_s[jj];
        r = r.max((s.max(ab) as i32).wrapping_sub(e_s[jj] as i32));
        let fin = r.wrapping_add(e_s[jj + 1] as i32) as u32;
        let gl = lf > s;
        let ga = ab > s.max(lf);
        a_c += u64::from(ga);
        l_c += u64::from(gl & !ga);
        row[jj] = fin;
        lf = fin;
    }
    (a_c, l_c)
}

fn steady_row(
    simd: SimdLevel,
    row: &mut [u32],
    above: &[u32],
    e: &[u32],
    hbuf: &mut [i32],
    finbuf: &mut [u32],
) -> (u64, u64) {
    match simd {
        SimdLevel::Scalar => steady_row_core(row, above, e, hbuf, finbuf),
        // SAFETY: `SimdLevel::detect` verified the features at runtime.
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { steady_row_avx2(row, above, e, hbuf, finbuf) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => unsafe { steady_row_avx512(row, above, e, hbuf, finbuf) },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all(kind: OperandKind, rows: usize, cols: usize) -> Vec<Vec<OperandKind>> {
        vec![vec![kind; cols]; rows]
    }

    #[test]
    fn all_int4_full_speed() {
        // Uniform 1-cycle MACs: pipeline fills in rows+cols-2 cycles and
        // then completes one wave per cycle.
        let sim = SystolicSim::new(4, 4);
        let r = sim.run_uniform(10, OperandKind::Int4, OperandKind::Int4);
        assert_eq!(r.cycles, (4 - 1) + (4 - 1) + 10);
        assert_eq!(r.macs, 160);
        assert_eq!(r.busy_cycles, 160);
    }

    #[test]
    fn all_int8_four_times_slower_steady_state() {
        let sim = SystolicSim::new(4, 4);
        let fast = sim.run_uniform(50, OperandKind::Int4, OperandKind::Int4);
        let slow = sim.run_uniform(50, OperandKind::Int8, OperandKind::Int8);
        let ratio = slow.cycles as f64 / fast.cycles as f64;
        assert!((3.0..=4.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn mixed_weights_stall_but_do_not_serialize() {
        // One slow (int8) weight column among int4: throughput is set by
        // the slow column (2 cycles/wave), not by 4x serialization.
        let sim = SystolicSim::new(2, 4);
        let mut weights = all(OperandKind::Int4, 2, 4);
        weights[0][2] = OperandKind::Int8;
        weights[1][2] = OperandKind::Int8;
        let activations = vec![vec![OperandKind::Int4; 2]; 40];
        let r = sim.run_tile(&weights, &activations);
        let per_wave = r.cycles_per_wave(40);
        assert!((1.9..=2.4).contains(&per_wave), "cycles/wave {per_wave}");
    }

    #[test]
    fn single_pe_is_sum_of_costs() {
        let sim = SystolicSim::new(1, 1);
        let weights = all(OperandKind::Int8, 1, 1);
        let activations = vec![
            vec![OperandKind::Int4],
            vec![OperandKind::Int8],
            vec![OperandKind::Int4],
        ];
        let r = sim.run_tile(&weights, &activations);
        // costs: 2 + 4 + 2 = 8
        assert_eq!(r.cycles, 8);
        assert_eq!(r.busy_cycles, 8);
    }

    #[test]
    fn paper_fig9_example_scale() {
        // Fig 9(c): four PEs complete eight original INT8 values in at most
        // 19 cycles. Our four-PE row with a representative mixed stream must
        // land in that neighbourhood (the figure's exact stream is not fully
        // specified, so we check the bound).
        let sim = SystolicSim::new(1, 4);
        let weights = vec![vec![
            OperandKind::Int4,
            OperandKind::Int8,
            OperandKind::Int4,
            OperandKind::Int8,
        ]];
        let activations: Vec<Vec<OperandKind>> = (0..8)
            .map(|t| {
                vec![if t % 3 == 0 {
                    OperandKind::Int8
                } else {
                    OperandKind::Int4
                }]
            })
            .collect();
        let r = sim.run_tile(&weights, &activations);
        assert!(r.cycles <= 32, "cycles {}", r.cycles);
        assert!(r.cycles >= 8);
    }

    #[test]
    fn empty_wave_list() {
        let sim = SystolicSim::new(2, 2);
        let r = sim.run_tile(&all(OperandKind::Int4, 2, 2), &[]);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.macs, 0);
    }

    #[test]
    #[should_panic(expected = "weight rows")]
    fn dimension_mismatch_panics() {
        let sim = SystolicSim::new(2, 2);
        let _ = sim.run_tile(&all(OperandKind::Int4, 3, 2), &[]);
    }

    #[test]
    fn throughput_between_mean_and_max_cost() {
        // With mixed random-ish costs the steady-state cycles/wave must lie
        // between the per-PE mean cost and the worst-case cost.
        let sim = SystolicSim::new(8, 8);
        let mut weights = all(OperandKind::Int4, 8, 8);
        for k in 0..8 {
            for j in 0..8 {
                if (k * 7 + j * 3) % 5 == 0 {
                    weights[k][j] = OperandKind::Int8;
                }
            }
        }
        let activations: Vec<Vec<OperandKind>> = (0..100)
            .map(|t| {
                (0..8)
                    .map(|k| {
                        if (t * 13 + k * 11) % 4 == 0 {
                            OperandKind::Int8
                        } else {
                            OperandKind::Int4
                        }
                    })
                    .collect()
            })
            .collect();
        let r = sim.run_tile(&weights, &activations);
        let per_wave = r.cycles_per_wave(100);
        let mean_cost = r.busy_cycles as f64 / r.macs as f64;
        assert!(per_wave >= mean_cost, "per_wave {per_wave} < mean {mean_cost}");
        assert!(per_wave <= 4.5, "per_wave {per_wave}");
    }

    #[test]
    fn stall_counters_partition_the_macs() {
        let sim = SystolicSim::new(4, 4);
        let r = sim.run_uniform(25, OperandKind::Int8, OperandKind::Int4);
        assert_eq!(r.stalls.total(), r.macs);
    }

    #[test]
    fn single_pe_is_always_self_gated() {
        // A 1x1 array has no neighbours and zero skew: every MAC waits only
        // on the PE's own previous wave.
        let sim = SystolicSim::new(1, 1);
        let r = sim.run_uniform(12, OperandKind::Int8, OperandKind::Int8);
        assert_eq!(r.stalls.self_busy, 12);
        assert_eq!(r.stalls.left + r.stalls.above + r.stalls.skew, 0);
    }

    #[test]
    fn slow_column_shifts_attribution_left_of_it() {
        // One 4-cycle column among 1-cycle PEs: in steady state the columns
        // to its right are gated by the activation forwarded from the left
        // (the slow column), so left-stalls dominate there.
        let sim = SystolicSim::new(1, 4);
        let mut weights = all(OperandKind::Int4, 1, 4);
        weights[0][1] = OperandKind::Int8;
        let activations = vec![vec![OperandKind::Int8]; 60];
        let r = sim.run_tile(&weights, &activations);
        assert!(
            r.stalls.left > r.macs / 4,
            "left stalls {} of {} macs",
            r.stalls.left,
            r.macs
        );
    }

    #[test]
    fn flat_engine_matches_reference_on_mixed_tile() {
        // Differential smoke check (the randomized property test lives in
        // tests/properties.rs): mixed precisions, both engines agree.
        let sim = SystolicSim::new(5, 7);
        let mut weights = all(OperandKind::Int4, 5, 7);
        for k in 0..5 {
            for j in 0..7 {
                if (k * 3 + j * 5) % 4 == 0 {
                    weights[k][j] = OperandKind::Int8;
                }
            }
        }
        let activations: Vec<Vec<OperandKind>> = (0..33)
            .map(|t| {
                (0..5)
                    .map(|k| {
                        if (t * 7 + k) % 3 == 0 {
                            OperandKind::Int8
                        } else {
                            OperandKind::Int4
                        }
                    })
                    .collect()
            })
            .collect();
        let fast = sim.run_tile(&weights, &activations);
        let slow = sim.run_tile_reference(&weights, &activations);
        assert_eq!(fast.cycles, slow.cycles);
        assert_eq!(fast.macs, slow.macs);
        assert_eq!(fast.busy_cycles, slow.busy_cycles);
    }
}
