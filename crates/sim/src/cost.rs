//! Per-MAC cycle costs of the mixed-precision PE (Fig 8).
//!
//! The MPE is a 4-bit MAC with a shifter: a 4x4 product takes one cycle; a
//! 4x8 product splits the 8-bit operand into two nibbles (2 cycles); an 8x8
//! product needs all four nibble cross-products (4 cycles).

use spark_codec::CodeKind;

/// Operand precision as the PE sees it after decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperandKind {
    /// 4-bit (SPARK short code).
    Int4,
    /// 8-bit (SPARK long code).
    Int8,
}

impl From<CodeKind> for OperandKind {
    fn from(kind: CodeKind) -> Self {
        match kind {
            CodeKind::Short => OperandKind::Int4,
            CodeKind::Long => OperandKind::Int8,
        }
    }
}

impl OperandKind {
    /// Classifies a raw INT8 code word.
    pub fn of_code(value: u8) -> Self {
        CodeKind::of(value).into()
    }

    /// Operand width in nibbles.
    pub fn nibbles(self) -> u32 {
        match self {
            OperandKind::Int4 => 1,
            OperandKind::Int8 => 2,
        }
    }
}

/// Cycles one MPE spends on a MAC with the given operand kinds: the product
/// of the operands' nibble counts (Fig 8: 1, 2 or 4).
pub fn mac_cycles(a: OperandKind, w: OperandKind) -> u32 {
    a.nibbles() * w.nibbles()
}

/// Precomputed per-tile MAC costs for a weight-stationary tile.
///
/// The weight precision of every PE is fixed for the lifetime of a tile
/// pass, so the per-MAC cost only varies with the incoming activation's
/// precision. This table folds the [`mac_cycles`] dispatch into two
/// row-major `u8` planes — one per activation kind — turning the per-MAC
/// enum match in the simulator hot loop into a single indexed byte load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileCosts {
    /// Costs when the row's activation is a short code (`Int4`).
    short: Vec<u8>,
    /// Costs when the row's activation is a long code (`Int8`).
    long: Vec<u8>,
    cols: usize,
}

impl TileCosts {
    /// Builds the cost planes from a `rows x cols` weight-precision matrix.
    pub fn from_weights(weights: &[Vec<OperandKind>]) -> Self {
        let cols = weights.first().map_or(0, Vec::len);
        let mut short = Vec::with_capacity(weights.len() * cols);
        let mut long = Vec::with_capacity(weights.len() * cols);
        for row in weights {
            for &w in row {
                short.push(mac_cycles(OperandKind::Int4, w) as u8);
                long.push(mac_cycles(OperandKind::Int8, w) as u8);
            }
        }
        Self { short, long, cols }
    }

    /// The cost row for array row `k` under activation kind `a`.
    pub fn row(&self, a: OperandKind, k: usize) -> &[u8] {
        let plane = match a {
            OperandKind::Int4 => &self.short,
            OperandKind::Int8 => &self.long,
        };
        &plane[k * self.cols..(k + 1) * self.cols]
    }
}

/// Expected cycles per MAC given independent short-code probabilities for
/// the two operand streams — the analytic counterpart of the cycle
/// simulator.
pub fn expected_mac_cycles(p_short_a: f64, p_short_w: f64) -> f64 {
    let pa = p_short_a.clamp(0.0, 1.0);
    let pw = p_short_w.clamp(0.0, 1.0);
    let ss = pa * pw;
    let sl = pa * (1.0 - pw) + (1.0 - pa) * pw;
    let ll = (1.0 - pa) * (1.0 - pw);
    ss + 2.0 * sl + 4.0 * ll
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_table_matches_fig8() {
        assert_eq!(mac_cycles(OperandKind::Int4, OperandKind::Int4), 1);
        assert_eq!(mac_cycles(OperandKind::Int4, OperandKind::Int8), 2);
        assert_eq!(mac_cycles(OperandKind::Int8, OperandKind::Int4), 2);
        assert_eq!(mac_cycles(OperandKind::Int8, OperandKind::Int8), 4);
    }

    #[test]
    fn kind_from_code_value() {
        assert_eq!(OperandKind::of_code(7), OperandKind::Int4);
        assert_eq!(OperandKind::of_code(8), OperandKind::Int8);
    }

    #[test]
    fn expected_cycles_extremes() {
        assert_eq!(expected_mac_cycles(1.0, 1.0), 1.0);
        assert_eq!(expected_mac_cycles(0.0, 0.0), 4.0);
        assert_eq!(expected_mac_cycles(1.0, 0.0), 2.0);
    }

    #[test]
    fn expected_cycles_midpoint() {
        // p=0.5 both: 0.25*1 + 0.5*2 + 0.25*4 = 2.25
        assert!((expected_mac_cycles(0.5, 0.5) - 2.25).abs() < 1e-12);
    }

    #[test]
    fn expected_cycles_clamps_inputs() {
        assert_eq!(expected_mac_cycles(2.0, 2.0), 1.0);
        assert_eq!(expected_mac_cycles(-1.0, -1.0), 4.0);
    }

    #[test]
    fn tile_costs_match_mac_cycles_dispatch() {
        let weights = vec![
            vec![OperandKind::Int4, OperandKind::Int8, OperandKind::Int4],
            vec![OperandKind::Int8, OperandKind::Int8, OperandKind::Int4],
        ];
        let costs = TileCosts::from_weights(&weights);
        for (k, row) in weights.iter().enumerate() {
            for a in [OperandKind::Int4, OperandKind::Int8] {
                let plane_row = costs.row(a, k);
                for (j, &w) in row.iter().enumerate() {
                    assert_eq!(u32::from(plane_row[j]), mac_cycles(a, w), "({k},{j})");
                }
            }
        }
    }
}
