//! Instruction-set-level model of the SPARK integration (Section IV-E).
//!
//! The paper's point is that SPARK needs *no new load/store instructions*:
//! encoded tensors are fixed-bit-length streams, so the existing DMA/GEMM
//! instruction set drives the accelerator unchanged, and only the PE page
//! interprets the nibbles. This module makes that concrete: a tiny
//! instruction set ([`Instruction`]), a compiler from [`ModelWorkload`]s
//! ([`Program::compile`]), and an executor whose timing agrees with the
//! analytic performance model (pinned by a cross-check test).

use spark_nn::ModelWorkload;

use crate::arch::Accelerator;
use crate::perf::{simulate, PrecisionProfile, SimConfig, WorkloadReport};

/// One accelerator instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instruction {
    /// DMA a weight tile region from DRAM into the global buffer.
    /// `bytes` already reflects the encoded (variable-length) footprint —
    /// the load instruction itself is unchanged from the base ISA.
    LoadWeights {
        /// Source layer label.
        layer: String,
        /// Encoded bytes moved.
        bytes: u64,
    },
    /// DMA an activation region from DRAM / previous layer.
    LoadActivations {
        /// Source layer label.
        layer: String,
        /// Encoded bytes moved.
        bytes: u64,
    },
    /// Run a GEMM tile pass on the PE array (operands are decoded at the
    /// array borders as they stream in).
    Gemm {
        /// Layer label.
        layer: String,
        /// Output rows.
        m: usize,
        /// Reduction depth.
        k: usize,
        /// Output columns.
        n: usize,
        /// Repetition count.
        repeats: usize,
    },
    /// Encode and store the output region.
    StoreOutputs {
        /// Layer label.
        layer: String,
        /// Encoded bytes written.
        bytes: u64,
    },
}

impl Instruction {
    /// The layer this instruction belongs to.
    pub fn layer(&self) -> &str {
        match self {
            Instruction::LoadWeights { layer, .. }
            | Instruction::LoadActivations { layer, .. }
            | Instruction::Gemm { layer, .. }
            | Instruction::StoreOutputs { layer, .. } => layer,
        }
    }
}

/// A compiled instruction stream for one inference.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Model name.
    pub model: String,
    /// Instructions in issue order.
    pub instructions: Vec<Instruction>,
}

impl Program {
    /// Compiles a workload into the four-instruction-per-layer pattern
    /// (load weights, load activations, GEMM, store outputs), with byte
    /// counts taken from the design's storage width (or the SPARK encoding
    /// for the SPARK design).
    pub fn compile(
        workload: &ModelWorkload,
        acc: &Accelerator,
        profile: &PrecisionProfile,
    ) -> Self {
        let (bits_w, bits_a) = match acc.storage_bits {
            Some(b) => (b, b),
            None => (profile.spark_bits_w, profile.spark_bits_a),
        };
        let mut instructions = Vec::with_capacity(workload.gemms.len() * 4);
        for gemm in &workload.gemms {
            let layer = gemm.label.clone();
            instructions.push(Instruction::LoadWeights {
                layer: layer.clone(),
                bytes: (gemm.weight_elements() as f64 * bits_w / 8.0) as u64,
            });
            instructions.push(Instruction::LoadActivations {
                layer: layer.clone(),
                bytes: (gemm.activation_elements() as f64 * bits_a / 8.0) as u64,
            });
            instructions.push(Instruction::Gemm {
                layer: layer.clone(),
                m: gemm.m,
                k: gemm.k,
                n: gemm.n,
                repeats: gemm.repeats,
            });
            instructions.push(Instruction::StoreOutputs {
                layer,
                bytes: (gemm.output_elements() as f64 * bits_a / 8.0) as u64,
            });
        }
        Self {
            model: workload.name.clone(),
            instructions,
        }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// True when the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Total DMA bytes the program moves (loads + stores).
    pub fn total_dma_bytes(&self) -> u64 {
        self.instructions
            .iter()
            .map(|i| match i {
                Instruction::LoadWeights { bytes, .. }
                | Instruction::LoadActivations { bytes, .. }
                | Instruction::StoreOutputs { bytes, .. } => *bytes,
                Instruction::Gemm { .. } => 0,
            })
            .sum()
    }

    /// Total MACs the program issues.
    pub fn total_macs(&self) -> u64 {
        self.instructions
            .iter()
            .map(|i| match i {
                Instruction::Gemm { m, k, n, repeats, .. } => {
                    (*m as u64) * (*k as u64) * (*n as u64) * (*repeats as u64)
                }
                _ => 0,
            })
            .sum()
    }

    /// Executes the program on the performance model (the timing semantics
    /// of each instruction are exactly those `perf::simulate` attributes to
    /// the corresponding layer phases).
    pub fn execute(
        &self,
        workload: &ModelWorkload,
        acc: &Accelerator,
        profile: &PrecisionProfile,
        config: &SimConfig,
    ) -> WorkloadReport {
        simulate(acc, workload, profile, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::AcceleratorKind;

    fn setup() -> (ModelWorkload, Accelerator, PrecisionProfile) {
        (
            ModelWorkload::resnet18(),
            Accelerator::new(AcceleratorKind::Spark),
            PrecisionProfile::from_short_fractions(0.6, 0.6),
        )
    }

    #[test]
    fn four_instructions_per_layer() {
        let (w, acc, p) = setup();
        let prog = Program::compile(&w, &acc, &p);
        assert_eq!(prog.len(), w.gemms.len() * 4);
        // Pattern check on the first layer.
        assert!(matches!(prog.instructions[0], Instruction::LoadWeights { .. }));
        assert!(matches!(prog.instructions[1], Instruction::LoadActivations { .. }));
        assert!(matches!(prog.instructions[2], Instruction::Gemm { .. }));
        assert!(matches!(prog.instructions[3], Instruction::StoreOutputs { .. }));
    }

    #[test]
    fn macs_match_workload() {
        let (w, acc, p) = setup();
        let prog = Program::compile(&w, &acc, &p);
        assert_eq!(prog.total_macs(), w.total_macs());
    }

    #[test]
    fn dma_bytes_match_perf_model() {
        let (w, acc, p) = setup();
        let prog = Program::compile(&w, &acc, &p);
        let report = prog.execute(&w, &acc, &p, &SimConfig::default());
        let perf_bytes: f64 = report.layers.iter().map(|l| l.dram_bytes).sum();
        let ratio = prog.total_dma_bytes() as f64 / perf_bytes;
        // Integer truncation per instruction only.
        assert!((0.999..=1.001).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn spark_program_moves_fewer_bytes_than_int8_designs() {
        let (w, _, p) = setup();
        let spark = Program::compile(&w, &Accelerator::new(AcceleratorKind::Spark), &p);
        let bitfusion = Program::compile(&w, &Accelerator::new(AcceleratorKind::BitFusion), &p);
        assert!(spark.total_dma_bytes() < bitfusion.total_dma_bytes());
    }

    #[test]
    fn same_instruction_set_for_all_designs() {
        // Section IV-E: no new opcodes for SPARK — the programs differ only
        // in operand byte counts, never in instruction kinds.
        let (w, _, p) = setup();
        let kinds = |acc: AcceleratorKind| -> Vec<std::mem::Discriminant<Instruction>> {
            Program::compile(&w, &Accelerator::new(acc), &p)
                .instructions
                .iter()
                .map(std::mem::discriminant)
                .collect()
        };
        let spark = kinds(AcceleratorKind::Spark);
        for other in [
            AcceleratorKind::Eyeriss,
            AcceleratorKind::Ant,
            AcceleratorKind::BitFusion,
        ] {
            assert_eq!(spark, kinds(other));
        }
    }

    #[test]
    fn layer_labels_propagate() {
        let (w, acc, p) = setup();
        let prog = Program::compile(&w, &acc, &p);
        assert_eq!(prog.instructions[0].layer(), w.gemms[0].label);
        assert!(!prog.is_empty());
    }
}
