//! Functional (numerically exact) model of one SPARK PE page.
//!
//! Where [`crate::perf`] answers *how fast* and [`crate::systolic`] *with
//! what stalls*, this module answers *what values come out*: it executes the
//! whole Fig 6 pipeline — SPARK-encoded operand streams decoded at the array
//! borders, the mixed-precision MAC grid of [`crate::pe::Mpe`] elements,
//! the accumulation unit, and the output encoder — and produces the actual
//! numbers, so the datapath can be verified end to end against a software
//! GEMM.

use spark_codec::{decode_stream, encode_tensor, DecodeError, EncodedTensor};
use spark_quant::{MagnitudeQuantizer, QuantError};
use spark_tensor::Tensor;
use spark_util::par;

use crate::fault::{MacFaultHook, NoFaults};
use crate::pe::{Mpe, SignMag};

/// Minimum MAC count before the functional GEMM fans activation rows out
/// over worker threads. Below this the thread-spawn cost dominates.
const PAR_MIN_MACS: usize = 1 << 20;

/// Execution statistics of a functional GEMM.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FunctionalStats {
    /// MAC operations executed.
    pub macs: u64,
    /// Total PE busy cycles (1/2/4 per MAC by precision).
    pub busy_cycles: u64,
    /// Values decoded at the array borders.
    pub values_decoded: u64,
    /// Output values encoded on the way out.
    pub values_encoded: u64,
}

/// A weight-stationary functional array of [`Mpe`]s.
#[derive(Debug, Clone)]
pub struct FunctionalArray {
    rows: usize,
    cols: usize,
}

impl FunctionalArray {
    /// Creates an array with the given tile dimensions.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dims must be positive");
        Self { rows, cols }
    }

    /// Computes `C = A · W` on sign-magnitude operands: `a` is `m x k`
    /// row-major, `w` is `k x n` row-major; the result is `m x n` exact
    /// 64-bit accumulations.
    ///
    /// The GEMM is tiled over the physical array; each weight tile is held
    /// stationary while the activation rows stream through, exactly as the
    /// timing model assumes. Large GEMMs fan disjoint row blocks out over
    /// [`par::par_map`] workers, each with a private PE grid per tile: every
    /// counter ([`FunctionalStats`] and per-PE cycles) is a per-MAC additive
    /// integer, so the chunked totals equal the single-pass totals exactly
    /// (see `row_chunked_execution_matches_full`).
    ///
    /// # Panics
    ///
    /// Panics when operand lengths disagree with the dimensions.
    pub fn gemm(
        &self,
        a: &[SignMag],
        w: &[SignMag],
        m: usize,
        k: usize,
        n: usize,
    ) -> (Vec<i64>, FunctionalStats) {
        // NoFaults monomorphizes to the identity and inlines away: this is
        // the exact pre-hook code path, bit for bit (the property suites
        // and the BENCH_sim gate hold unchanged).
        self.gemm_with_hook(&NoFaults, a, w, m, k, n)
    }

    /// [`FunctionalArray::gemm`] with a fault-injection hook observing (and
    /// possibly perturbing) every MAC's operands. See [`crate::fault`] for
    /// the determinism contract — the hook is keyed by the global MAC site
    /// index, so results are independent of tiling and thread partitioning.
    ///
    /// # Panics
    ///
    /// Panics when operand lengths disagree with the dimensions.
    pub fn gemm_with_hook<H: MacFaultHook>(
        &self,
        hook: &H,
        a: &[SignMag],
        w: &[SignMag],
        m: usize,
        k: usize,
        n: usize,
    ) -> (Vec<i64>, FunctionalStats) {
        assert_eq!(a.len(), m * k, "activation operand count");
        assert_eq!(w.len(), k * n, "weight operand count");
        let workers = if m * k * n >= PAR_MIN_MACS {
            par::thread_count().min(m).max(1)
        } else {
            1
        };
        if workers <= 1 {
            return self.gemm_rows_with(hook, a, w, 0, m, k, n);
        }
        let rows_per = m.div_ceil(workers);
        let ranges: Vec<(usize, usize)> = (0..m)
            .step_by(rows_per)
            .map(|r0| (r0, (r0 + rows_per).min(m)))
            .collect();
        let parts =
            par::par_map(&ranges, |&(r0, r1)| self.gemm_rows_with(hook, a, w, r0, r1, k, n));
        let mut out = Vec::with_capacity(m * n);
        let mut stats = FunctionalStats::default();
        for (part_out, part_stats) in parts {
            out.extend_from_slice(&part_out);
            stats.macs += part_stats.macs;
            stats.busy_cycles += part_stats.busy_cycles;
        }
        (out, stats)
    }

    /// Runs activation rows `r0..r1` through the tiled array with a private
    /// PE grid per tile; the worker body of [`FunctionalArray::gemm_with_hook`].
    fn gemm_rows_with<H: MacFaultHook>(
        &self,
        hook: &H,
        a: &[SignMag],
        w: &[SignMag],
        r0: usize,
        r1: usize,
        k: usize,
        n: usize,
    ) -> (Vec<i64>, FunctionalStats) {
        let mut out = vec![0i64; (r1 - r0) * n];
        let mut stats = FunctionalStats::default();
        // Tile over (k, n); each tile pass streams this block's rows.
        for k0 in (0..k).step_by(self.rows) {
            let k1 = (k0 + self.rows).min(k);
            for n0 in (0..n).step_by(self.cols) {
                let n1 = (n0 + self.cols).min(n);
                // One PE per (kk, nn) position of this tile.
                let mut pes = vec![Mpe::new(); (k1 - k0) * (n1 - n0)];
                for i in r0..r1 {
                    for (kk, pe_row) in (k0..k1).enumerate() {
                        let act = a[i * k + pe_row];
                        for (nn, col) in (n0..n1).enumerate() {
                            let weight = w[pe_row * n + col];
                            let site = ((i * k + pe_row) * n + col) as u64;
                            let (weight, act) = hook.perturb(site, weight, act);
                            let pe = &mut pes[kk * (n1 - n0) + nn];
                            pe.mac(weight, act);
                            stats.macs += 1;
                        }
                    }
                    // Accumulation unit: drain column partial sums for row i.
                    for (nn, col) in (n0..n1).enumerate() {
                        let mut col_sum = 0i64;
                        for kk in 0..(k1 - k0) {
                            col_sum += pes[kk * (n1 - n0) + nn].drain();
                        }
                        out[(i - r0) * n + col] += col_sum;
                    }
                }
                stats.busy_cycles += pes.iter().map(Mpe::cycles).sum::<u64>();
            }
        }
        (out, stats)
    }
}

/// Result of running one layer through the functional PE page.
#[derive(Debug, Clone)]
pub struct LayerOutput {
    /// Dequantized FP32 outputs (`m x n`).
    pub output: Tensor,
    /// The SPARK-encoded output stream (what the next layer would load).
    pub encoded_output: EncodedTensor,
    /// Execution statistics.
    pub stats: FunctionalStats,
}

/// Error type for the functional pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// Quantization front-end failed.
    Quant(QuantError),
    /// Operand stream was malformed.
    Decode(DecodeError),
    /// Shapes inconsistent.
    Shape(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Quant(e) => write!(f, "quantization failed: {e}"),
            PipelineError::Decode(e) => write!(f, "stream decode failed: {e}"),
            PipelineError::Shape(m) => write!(f, "shape error: {m}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<QuantError> for PipelineError {
    fn from(e: QuantError) -> Self {
        PipelineError::Quant(e)
    }
}

impl From<DecodeError> for PipelineError {
    fn from(e: DecodeError) -> Self {
        PipelineError::Decode(e)
    }
}

/// One functional PE page: executes `activations (m x k) · weights (k x n)`
/// through the complete SPARK pipeline.
///
/// Steps, mirroring Fig 6:
/// 1. quantize both operands to per-tensor INT8 sign-magnitudes;
/// 2. SPARK-encode them into aligned nibble streams (the DRAM format);
/// 3. decode the streams at the array borders;
/// 4. run the mixed-precision MAC grid (exact integer arithmetic);
/// 5. dequantize partial sums with the product of the operand scales;
/// 6. re-quantize and SPARK-encode the outputs for the next layer.
pub fn run_layer(
    array: &FunctionalArray,
    activations: &Tensor,
    weights: &Tensor,
) -> Result<LayerOutput, PipelineError> {
    let (m, k) = activations
        .shape()
        .as_matrix()
        .map_err(|e| PipelineError::Shape(e.to_string()))?;
    let (kw, n) = weights
        .shape()
        .as_matrix()
        .map_err(|e| PipelineError::Shape(e.to_string()))?;
    if k != kw {
        return Err(PipelineError::Shape(format!(
            "inner dims differ: {k} vs {kw}"
        )));
    }

    let quantizer = MagnitudeQuantizer::new(8)?;
    let qa = quantizer.quantize(activations)?;
    let qw = quantizer.quantize(weights)?;

    // DRAM format: aligned nibble streams.
    let enc_a = encode_tensor(&qa.codes);
    let enc_w = encode_tensor(&qw.codes);

    // Border decoders recover the (rounded) magnitudes.
    let dec_a = decode_stream(&enc_a.stream)?;
    let dec_w = decode_stream(&enc_w.stream)?;
    let mut stats = FunctionalStats {
        values_decoded: (dec_a.len() + dec_w.len()) as u64,
        ..FunctionalStats::default()
    };

    let a_ops: Vec<SignMag> = dec_a
        .iter()
        .zip(&qa.signs)
        .map(|(&mag, &neg)| SignMag {
            magnitude: mag,
            negative: neg,
        })
        .collect();
    let w_ops: Vec<SignMag> = dec_w
        .iter()
        .zip(&qw.signs)
        .map(|(&mag, &neg)| SignMag {
            magnitude: mag,
            negative: neg,
        })
        .collect();

    let (acc, gemm_stats) = array.gemm(&a_ops, &w_ops, m, k, n);
    stats.macs = gemm_stats.macs;
    stats.busy_cycles = gemm_stats.busy_cycles;

    // Dequantize: value = acc * (scale_a/255) * (scale_w/255).
    let scale = (qa.scale as f64 / 255.0) * (qw.scale as f64 / 255.0);
    let out_data: Vec<f32> = acc.iter().map(|&v| (v as f64 * scale) as f32).collect();
    let output = Tensor::from_vec(out_data, &[m, n])
        .map_err(|e| PipelineError::Shape(e.to_string()))?;

    // Output path: activation unit (identity here) then the encoder.
    let q_out = quantizer.quantize(&output)?;
    let encoded_output = encode_tensor(&q_out.codes);
    stats.values_encoded = q_out.codes.len() as u64;

    Ok(LayerOutput {
        output,
        encoded_output,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_tensor::{ops, stats as tstats};

    fn toy_tensor(m: usize, n: usize, seed: usize) -> Tensor {
        Tensor::from_fn(&[m, n], |i| {
            let x = ((i * 2654435761 + seed * 97) % 1000) as f32 / 1000.0 - 0.5;
            if (i + seed) % 53 == 0 {
                x * 8.0
            } else {
                x * 0.4
            }
        })
    }

    #[test]
    fn functional_gemm_matches_integer_reference() {
        // The MPE grid must compute exactly the integer matmul of its
        // sign-magnitude operands.
        let (m, k, n) = (5, 7, 6);
        let a: Vec<SignMag> = (0..m * k)
            .map(|i| SignMag::from_i16(((i * 37) % 511) as i16 - 255))
            .collect();
        let w: Vec<SignMag> = (0..k * n)
            .map(|i| SignMag::from_i16(((i * 91) % 511) as i16 - 255))
            .collect();
        let array = FunctionalArray::new(4, 4); // forces multi-tile execution
        let (out, stats) = array.gemm(&a, &w, m, k, n);
        for i in 0..m {
            for j in 0..n {
                let expect: i64 = (0..k)
                    .map(|kk| i64::from(a[i * k + kk].to_i16()) * i64::from(w[kk * n + j].to_i16()))
                    .sum();
                assert_eq!(out[i * n + j], expect, "({i},{j})");
            }
        }
        assert_eq!(stats.macs, (m * k * n) as u64);
        assert!(stats.busy_cycles >= stats.macs);
    }

    #[test]
    fn tiled_execution_independent_of_tile_size() {
        let (m, k, n) = (6, 10, 9);
        let a: Vec<SignMag> = (0..m * k)
            .map(|i| SignMag::from_i16(((i * 13) % 400) as i16 - 200))
            .collect();
        let w: Vec<SignMag> = (0..k * n)
            .map(|i| SignMag::from_i16(((i * 29) % 400) as i16 - 200))
            .collect();
        let big = FunctionalArray::new(64, 64).gemm(&a, &w, m, k, n).0;
        let small = FunctionalArray::new(3, 2).gemm(&a, &w, m, k, n).0;
        assert_eq!(big, small);
    }

    #[test]
    fn row_chunked_execution_matches_full() {
        // The fan-out contract: stitching gemm_rows_with over any row partition
        // reproduces the single-pass outputs AND integer stats exactly.
        let (m, k, n) = (11, 9, 13);
        let a: Vec<SignMag> = (0..m * k)
            .map(|i| SignMag::from_i16(((i * 53) % 511) as i16 - 255))
            .collect();
        let w: Vec<SignMag> = (0..k * n)
            .map(|i| SignMag::from_i16(((i * 71) % 511) as i16 - 255))
            .collect();
        let array = FunctionalArray::new(4, 4);
        let (full_out, full_stats) = array.gemm(&a, &w, m, k, n);
        for bounds in [vec![0, m], vec![0, 3, m], vec![0, 1, 2, 7, 10, m]] {
            let mut out = Vec::new();
            let mut stats = FunctionalStats::default();
            for pair in bounds.windows(2) {
                let (part, ps) =
                    array.gemm_rows_with(&crate::fault::NoFaults, &a, &w, pair[0], pair[1], k, n);
                out.extend_from_slice(&part);
                stats.macs += ps.macs;
                stats.busy_cycles += ps.busy_cycles;
            }
            assert_eq!(out, full_out, "partition {bounds:?}");
            assert_eq!(stats.macs, full_stats.macs, "partition {bounds:?}");
            assert_eq!(
                stats.busy_cycles, full_stats.busy_cycles,
                "partition {bounds:?}"
            );
        }
    }

    #[test]
    fn pipeline_output_close_to_fp32_matmul() {
        let acts = toy_tensor(8, 16, 1);
        let weights = toy_tensor(16, 12, 2);
        let array = FunctionalArray::new(8, 8);
        let result = run_layer(&array, &acts, &weights).unwrap();
        let reference = ops::matmul(&acts, &weights).unwrap();
        // Quantization+encoding noise only: high SQNR against FP32.
        let sqnr = tstats::sqnr_db(&reference, &result.output);
        assert!(sqnr > 20.0, "pipeline SQNR {sqnr}");
        assert_eq!(result.output.dims(), &[8, 12]);
    }

    #[test]
    fn pipeline_counts_decoded_and_encoded_values() {
        let acts = toy_tensor(4, 6, 3);
        let weights = toy_tensor(6, 5, 4);
        let array = FunctionalArray::new(4, 4);
        let r = run_layer(&array, &acts, &weights).unwrap();
        assert_eq!(r.stats.values_decoded, (4 * 6 + 6 * 5) as u64);
        assert_eq!(r.stats.values_encoded, (4 * 5) as u64);
        assert_eq!(r.stats.macs, (4 * 6 * 5) as u64);
        assert!(r.encoded_output.stats.avg_bits() <= 8.0);
    }

    #[test]
    fn pipeline_rejects_mismatched_shapes() {
        let a = Tensor::zeros(&[4, 5]);
        let w = Tensor::zeros(&[6, 3]);
        let array = FunctionalArray::new(4, 4);
        assert!(run_layer(&array, &a, &w).is_err());
    }

    #[test]
    fn fault_hook_perturbs_exactly_the_targeted_site() {
        // A hook that zeroes the weight of one global MAC site must change
        // exactly one output cell by exactly that product, independent of
        // tile geometry.
        struct ZeroOneSite(u64);
        impl crate::fault::MacFaultHook for ZeroOneSite {
            fn perturb(&self, site: u64, w: SignMag, a: SignMag) -> (SignMag, SignMag) {
                if site == self.0 {
                    (SignMag::positive(0), a)
                } else {
                    (w, a)
                }
            }
        }
        let (m, k, n) = (4, 5, 6);
        let a: Vec<SignMag> = (0..m * k)
            .map(|i| SignMag::from_i16(((i * 37) % 400) as i16 - 200))
            .collect();
        let w: Vec<SignMag> = (0..k * n)
            .map(|i| SignMag::from_i16(((i * 91) % 400) as i16 - 200))
            .collect();
        let (i, kk, j) = (2usize, 3usize, 4usize);
        let site = ((i * k + kk) * n + j) as u64;
        let hook = ZeroOneSite(site);
        for array in [FunctionalArray::new(64, 64), FunctionalArray::new(2, 3)] {
            let (clean, _) = array.gemm(&a, &w, m, k, n);
            let (faulty, stats) = array.gemm_with_hook(&hook, &a, &w, m, k, n);
            assert_eq!(stats.macs, (m * k * n) as u64);
            for r in 0..m {
                for c in 0..n {
                    let delta = clean[r * n + c] - faulty[r * n + c];
                    if (r, c) == (i, j) {
                        let expect =
                            i64::from(a[i * k + kk].to_i16()) * i64::from(w[kk * n + j].to_i16());
                        assert_eq!(delta, expect, "targeted cell");
                    } else {
                        assert_eq!(delta, 0, "untouched cell ({r},{c})");
                    }
                }
            }
        }
    }

    #[test]
    fn busy_cycles_reflect_precision_mix() {
        // All-small operands: 1 cycle per MAC. Large operands: 4 per MAC.
        let small: Vec<SignMag> = (0..16).map(|_| SignMag::positive(3)).collect();
        let large: Vec<SignMag> = (0..16).map(|_| SignMag::positive(200)).collect();
        let array = FunctionalArray::new(4, 4);
        let (_, s1) = array.gemm(&small, &small, 4, 4, 4);
        let (_, s2) = array.gemm(&large, &large, 4, 4, 4);
        assert_eq!(s1.busy_cycles, s1.macs);
        assert_eq!(s2.busy_cycles, 4 * s2.macs);
    }
}
