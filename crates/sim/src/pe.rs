//! Functional model of the mixed-precision PE datapath (Fig 8).
//!
//! The timing side of the MPE lives in [`crate::systolic`]; this module
//! models the *arithmetic*: the W/A operand registers, the 4-bit multiplier,
//! the shifter and the P accumulator, executing a MAC over 1, 2 or 4 cycles
//! by decomposing operands into nibbles exactly as Fig 8 describes. The
//! tests prove the multi-cycle nibble datapath computes the same product as
//! a direct multiplication for every operand combination.


use crate::cost::OperandKind;

/// A sign-magnitude operand as the decoder hands it to the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignMag {
    /// Magnitude in `0..=255` (short codes use only `0..=7`).
    pub magnitude: u8,
    /// True for negative values.
    pub negative: bool,
}

impl SignMag {
    /// Creates a non-negative operand.
    pub fn positive(magnitude: u8) -> Self {
        Self {
            magnitude,
            negative: false,
        }
    }

    /// Creates an operand from a signed integer in `-255..=255`.
    ///
    /// # Panics
    ///
    /// Panics when `value` is outside that range.
    pub fn from_i16(value: i16) -> Self {
        assert!((-255..=255).contains(&value), "operand out of range");
        Self {
            magnitude: value.unsigned_abs() as u8,
            negative: value < 0,
        }
    }

    /// The signed value.
    pub fn to_i16(self) -> i16 {
        let m = i16::from(self.magnitude);
        if self.negative {
            -m
        } else {
            m
        }
    }

    /// Precision class: 4-bit if the magnitude fits the short-code range.
    pub fn kind(self) -> OperandKind {
        if self.magnitude < 8 {
            OperandKind::Int4
        } else {
            OperandKind::Int8
        }
    }

    fn high_nibble(self) -> u8 {
        self.magnitude >> 4
    }

    fn low_nibble(self) -> u8 {
        self.magnitude & 0x0F
    }
}

/// One cycle of the MPE datapath: a 4x4 multiply plus shift-accumulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacStep {
    /// Nibble from the weight register.
    pub w_nibble: u8,
    /// Nibble from the activation register.
    pub a_nibble: u8,
    /// Left shift applied to the 8-bit nibble product before accumulation.
    pub shift: u8,
}

impl MacStep {
    /// The partial product this cycle contributes.
    pub fn partial(&self) -> u32 {
        (u32::from(self.w_nibble) * u32::from(self.a_nibble)) << self.shift
    }

    const ZERO: MacStep = MacStep {
        w_nibble: 0,
        a_nibble: 0,
        shift: 0,
    };
}

/// The nibble schedule of one MAC: at most four [`MacStep`]s, held inline
/// so the per-MAC hot path of the functional array allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacSchedule {
    steps: [MacStep; 4],
    len: u8,
}

impl MacSchedule {
    fn new(steps: &[MacStep]) -> Self {
        debug_assert!(steps.len() <= 4);
        let mut buf = [MacStep::ZERO; 4];
        buf[..steps.len()].copy_from_slice(steps);
        Self {
            steps: buf,
            len: steps.len() as u8,
        }
    }

    /// Number of cycles (steps) in the schedule: 1, 2 or 4.
    #[allow(clippy::len_without_is_empty)] // a schedule is never empty
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// The populated steps.
    pub fn as_slice(&self) -> &[MacStep] {
        &self.steps[..self.len()]
    }
}

impl std::ops::Deref for MacSchedule {
    type Target = [MacStep];

    fn deref(&self) -> &[MacStep] {
        self.as_slice()
    }
}

/// The mixed-precision processing element.
///
/// Holds the W/A operand registers and the P accumulator; `mac` runs the
/// full nibble schedule for one operand pair and returns the cycle count
/// (matching [`crate::cost::mac_cycles`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Mpe {
    accumulator: i64,
    cycles: u64,
    macs: u64,
}

impl Mpe {
    /// Creates a PE with a cleared accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// The nibble schedule for an operand pair: 1 step for 4x4, 2 for 4x8,
    /// 4 for 8x8 (Fig 8's cycle walk-through). Returned inline
    /// ([`MacSchedule`]) so the hot MAC path allocates nothing.
    pub fn schedule(w: SignMag, a: SignMag) -> MacSchedule {
        match (w.kind(), a.kind()) {
            (OperandKind::Int4, OperandKind::Int4) => MacSchedule::new(&[MacStep {
                w_nibble: w.low_nibble(),
                a_nibble: a.low_nibble(),
                shift: 0,
            }]),
            (OperandKind::Int8, OperandKind::Int4) => MacSchedule::new(&[
                // cycle t: high nibble of the wide operand, shifted left 4
                MacStep {
                    w_nibble: w.high_nibble(),
                    a_nibble: a.low_nibble(),
                    shift: 4,
                },
                // cycle t+1: low nibble
                MacStep {
                    w_nibble: w.low_nibble(),
                    a_nibble: a.low_nibble(),
                    shift: 0,
                },
            ]),
            (OperandKind::Int4, OperandKind::Int8) => MacSchedule::new(&[
                MacStep {
                    w_nibble: w.low_nibble(),
                    a_nibble: a.high_nibble(),
                    shift: 4,
                },
                MacStep {
                    w_nibble: w.low_nibble(),
                    a_nibble: a.low_nibble(),
                    shift: 0,
                },
            ]),
            (OperandKind::Int8, OperandKind::Int8) => MacSchedule::new(&[
                MacStep {
                    w_nibble: w.high_nibble(),
                    a_nibble: a.high_nibble(),
                    shift: 8,
                },
                MacStep {
                    w_nibble: w.high_nibble(),
                    a_nibble: a.low_nibble(),
                    shift: 4,
                },
                MacStep {
                    w_nibble: w.low_nibble(),
                    a_nibble: a.high_nibble(),
                    shift: 4,
                },
                MacStep {
                    w_nibble: w.low_nibble(),
                    a_nibble: a.low_nibble(),
                    shift: 0,
                },
            ]),
        }
    }

    /// Executes one multiply-accumulate through the nibble datapath;
    /// returns the cycles consumed.
    pub fn mac(&mut self, w: SignMag, a: SignMag) -> u32 {
        let steps = Self::schedule(w, a);
        let mut product = 0u32;
        for step in steps.as_slice() {
            product += step.partial();
        }
        let signed = if w.negative ^ a.negative {
            -i64::from(product)
        } else {
            i64::from(product)
        };
        self.accumulator += signed;
        self.cycles += steps.len() as u64;
        self.macs += 1;
        steps.len() as u32
    }

    /// The P register contents.
    pub fn accumulator(&self) -> i64 {
        self.accumulator
    }

    /// Total cycles spent in MACs.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// MACs executed.
    pub fn macs(&self) -> u64 {
        self.macs
    }

    /// Drains the accumulator (the partial-sum handoff), clearing P.
    pub fn drain(&mut self) -> i64 {
        std::mem::take(&mut self.accumulator)
    }

    /// Clears all state.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::mac_cycles;

    #[test]
    fn sign_mag_round_trip() {
        for v in -255i16..=255 {
            assert_eq!(SignMag::from_i16(v).to_i16(), v);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sign_mag_rejects_out_of_range() {
        let _ = SignMag::from_i16(256);
    }

    #[test]
    fn schedule_lengths_match_cost_model() {
        let cases = [
            (3u8, 5u8), // 4x4
            (3, 200),   // 4x8
            (200, 3),   // 8x4
            (200, 201), // 8x8
        ];
        for (w, a) in cases {
            let w = SignMag::positive(w);
            let a = SignMag::positive(a);
            assert_eq!(
                Mpe::schedule(w, a).len() as u32,
                mac_cycles(a.kind(), w.kind())
            );
        }
    }

    #[test]
    fn nibble_datapath_exact_for_all_magnitudes() {
        // The multi-cycle shift-accumulate must equal a direct multiply for
        // every magnitude pair (sampled exhaustively over a grid plus the
        // full low range).
        for w in 0u16..=255 {
            for a in (0u16..=255).step_by(7) {
                let mut pe = Mpe::new();
                pe.mac(SignMag::positive(w as u8), SignMag::positive(a as u8));
                assert_eq!(pe.accumulator(), i64::from(w) * i64::from(a), "{w}x{a}");
            }
        }
    }

    #[test]
    fn signs_combine_correctly() {
        let mut pe = Mpe::new();
        pe.mac(SignMag::from_i16(-20), SignMag::from_i16(3));
        assert_eq!(pe.accumulator(), -60);
        pe.mac(SignMag::from_i16(-5), SignMag::from_i16(-7));
        assert_eq!(pe.accumulator(), -60 + 35);
    }

    #[test]
    fn accumulation_over_many_macs() {
        let mut pe = Mpe::new();
        let mut expect = 0i64;
        for i in 0..100i16 {
            let w = (i * 37) % 256 - 128;
            let a = (i * 91) % 256 - 128;
            let w = w.clamp(-255, 255);
            let a = a.clamp(-255, 255);
            pe.mac(SignMag::from_i16(w), SignMag::from_i16(a));
            expect += i64::from(w) * i64::from(a);
        }
        assert_eq!(pe.accumulator(), expect);
        assert_eq!(pe.macs(), 100);
    }

    #[test]
    fn drain_clears_p_register() {
        let mut pe = Mpe::new();
        pe.mac(SignMag::positive(5), SignMag::positive(6));
        assert_eq!(pe.drain(), 30);
        assert_eq!(pe.accumulator(), 0);
    }

    #[test]
    fn cycle_counting_accumulates() {
        let mut pe = Mpe::new();
        let c1 = pe.mac(SignMag::positive(3), SignMag::positive(3)); // 1
        let c2 = pe.mac(SignMag::positive(200), SignMag::positive(200)); // 4
        assert_eq!(c1, 1);
        assert_eq!(c2, 4);
        assert_eq!(pe.cycles(), 5);
    }
}
