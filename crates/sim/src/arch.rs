//! Accelerator configurations: SPARK and the paper's six baselines.
//!
//! Component counts and PE data widths come from Table VII (all designs
//! scaled to 28 nm at iso-area). SPARK's throughput comes from the cycle
//! simulator; each baseline's effective throughput is its PE count times a
//! utilization factor calibrated so the relative performance the original
//! papers report is reproduced (the SPARK paper likewise takes baseline
//! results "as reported in their paper").


use crate::perf::{PrecisionProfile, SimConfig, WorkloadReport};
use spark_nn::ModelWorkload;

/// How a design's compute cycles are derived.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimingModel {
    /// SPARK: per-MAC costs from the operand code kinds, evaluated either
    /// analytically (decoupled lanes) or on the cycle-accurate array
    /// (lockstep), per [`SimConfig::spark_timing`](crate::perf::SimConfig).
    SparkSimulated,
    /// Mixed-precision baselines (ANT, OliVe): same multi-cycle cost model,
    /// but their encodings leave fewer values at 4 bits
    /// (`short_frac_penalty` is subtracted from the SPARK short fraction)
    /// and their decoders add a pipeline utilization factor.
    MixedPrecision {
        /// How much smaller this design's 4-bit fraction is than SPARK's.
        short_frac_penalty: f64,
        /// Sustained fraction of peak after decode stalls.
        pipeline_util: f64,
    },
    /// Fixed-width designs: peak MACs/cycle times `utilization`.
    Flat,
}

/// Which accelerator design to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AcceleratorKind {
    /// The paper's contribution: 4096 mixed-precision 4-bit PEs + SPARK
    /// codecs.
    Spark,
    /// ANT (MICRO '22): 4096 4-bit PEs + adaptive-type decoders.
    Ant,
    /// OliVe (ISCA '23): 4096 4-bit PEs + outlier-victim decoders.
    Olive,
    /// OLAccel (ISCA '18): 1152 4/16-bit PEs + outlier controller.
    OlAccel,
    /// BitFusion (ISCA '18): 4096 fusible 4-bit PE units.
    BitFusion,
    /// BiScaled-DNN (DAC '19): 2560 6-bit block-scaled PEs.
    BiScaled,
    /// AdaptiveFloat (DAC '20): 896 8-bit float PEs.
    AdaFloat,
    /// Eyeriss (JSSC '16): 168 16-bit PEs.
    Eyeriss,
}

impl AcceleratorKind {
    /// All designs in the Fig 11/12 legend order.
    pub const ALL: [AcceleratorKind; 8] = [
        AcceleratorKind::Eyeriss,
        AcceleratorKind::BitFusion,
        AcceleratorKind::OlAccel,
        AcceleratorKind::BiScaled,
        AcceleratorKind::AdaFloat,
        AcceleratorKind::Ant,
        AcceleratorKind::Olive,
        AcceleratorKind::Spark,
    ];

    /// Display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            AcceleratorKind::Spark => "SPARK",
            AcceleratorKind::Ant => "ANT",
            AcceleratorKind::Olive => "OliVe",
            AcceleratorKind::OlAccel => "OLAccel",
            AcceleratorKind::BitFusion => "BitFusion",
            AcceleratorKind::BiScaled => "BiScaled",
            AcceleratorKind::AdaFloat => "AdaFloat",
            AcceleratorKind::Eyeriss => "Eyeriss",
        }
    }
}

impl spark_util::ToJson for AcceleratorKind {
    fn to_json(&self) -> spark_util::Value {
        spark_util::Value::Str(self.name().to_string())
    }
}

/// A configured accelerator instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Accelerator {
    /// The design being modelled.
    pub kind: AcceleratorKind,
    /// Number of PEs (Table VII).
    pub pe_count: usize,
    /// Systolic array rows (SPARK tile height; `rows * cols == pe_count`).
    pub array_rows: usize,
    /// Systolic array columns.
    pub array_cols: usize,
    /// Utilization factor applied to the peak MAC rate (captures decode
    /// stalls, outlier serialization, fusion overheads). SPARK's is 1.0 —
    /// its stalls are simulated, not factored.
    pub utilization: f64,
    /// Compute-timing model for this design.
    pub timing: TimingModel,
    /// Storage bits per weight/activation element this design moves through
    /// DRAM and buffers (index and metadata overhead included). `None`
    /// means "determined by the SPARK encoding of the tensor".
    pub storage_bits: Option<f64>,
    /// Bits of datapath precision for core-energy accounting.
    pub mac_energy_bits: u8,
    /// Multiplier on core MAC energy for control/datapath overheads the
    /// width alone does not capture (outlier controllers, fusion networks,
    /// type-conversion shifters). 1.0 = none.
    pub core_energy_factor: f64,
}

impl Accelerator {
    /// Creates the named design with its Table VII configuration.
    pub fn new(kind: AcceleratorKind) -> Self {
        match kind {
            AcceleratorKind::Spark => Self {
                kind,
                pe_count: 4096,
                array_rows: 64,
                array_cols: 64,
                utilization: 1.0,
                timing: TimingModel::SparkSimulated,
                storage_bits: None, // measured from the encoding
                mac_energy_bits: 4,
                core_energy_factor: 1.0,
            },
            // ANT: adaptive 4-bit types, but its exceptions leave ~7 % more
            // values needing wide handling than SPARK, and its decoders add
            // pipeline stalls (calibrated to the ~1.12x gap the paper
            // reports).
            AcceleratorKind::Ant => Self {
                kind,
                pe_count: 4096,
                array_rows: 64,
                array_cols: 64,
                utilization: 1.0,
                timing: TimingModel::MixedPrecision {
                    short_frac_penalty: 0.07,
                    pipeline_util: 0.93,
                },
                storage_bits: Some(4.8),
                mac_energy_bits: 4,
                core_energy_factor: 1.3,
            },
            // OliVe: outlier-victim pairs keep alignment but the outlier
            // rate is bounded by the victim budget; heavier decoders.
            AcceleratorKind::Olive => Self {
                kind,
                pe_count: 4096,
                array_rows: 64,
                array_cols: 64,
                utilization: 1.0,
                timing: TimingModel::MixedPrecision {
                    short_frac_penalty: 0.10,
                    pipeline_util: 0.90,
                },
                storage_bits: Some(4.4),
                mac_energy_bits: 4,
                core_energy_factor: 1.5,
            },
            // OLAccel: 1152 4-bit PEs; the outlier controller serializes
            // ~3 % of MACs through a narrow 16-bit path.
            AcceleratorKind::OlAccel => Self {
                kind,
                pe_count: 1152,
                array_rows: 32,
                array_cols: 36,
                utilization: 0.70,
                timing: TimingModel::Flat,
                storage_bits: Some(4.9),
                mac_energy_bits: 4,
                core_energy_factor: 3.0,
            },
            // BitFusion at INT8 (accuracy-parity config): fusing 4 units
            // per 8x8 MAC leaves 1024 effective MACs/cycle.
            AcceleratorKind::BitFusion => Self {
                kind,
                pe_count: 1024,
                array_rows: 32,
                array_cols: 32,
                utilization: 0.85,
                timing: TimingModel::Flat,
                storage_bits: Some(8.0),
                mac_energy_bits: 8,
                core_energy_factor: 1.3,
            },
            AcceleratorKind::BiScaled => Self {
                kind,
                pe_count: 2560,
                array_rows: 40,
                array_cols: 64,
                utilization: 0.55,
                timing: TimingModel::Flat,
                storage_bits: Some(6.6),
                mac_energy_bits: 6,
                core_energy_factor: 1.4,
            },
            // AdaFloat: FP8 pipeline latency lowers sustained rate.
            AcceleratorKind::AdaFloat => Self {
                kind,
                pe_count: 896,
                array_rows: 28,
                array_cols: 32,
                utilization: 0.75,
                timing: TimingModel::Flat,
                storage_bits: Some(8.0),
                mac_energy_bits: 8,
                core_energy_factor: 1.0,
            },
            AcceleratorKind::Eyeriss => Self {
                kind,
                pe_count: 168,
                array_rows: 12,
                array_cols: 14,
                utilization: 0.95,
                timing: TimingModel::Flat,
                storage_bits: Some(16.0),
                mac_energy_bits: 16,
                core_energy_factor: 1.0,
            },
        }
    }

    /// Builds every design.
    pub fn all() -> Vec<Self> {
        AcceleratorKind::ALL.into_iter().map(Self::new).collect()
    }

    /// Runs a workload through the performance/energy model (see
    /// [`crate::perf::simulate`]).
    pub fn run(
        &self,
        workload: &ModelWorkload,
        profile: &PrecisionProfile,
        config: &SimConfig,
    ) -> WorkloadReport {
        crate::perf::simulate(self, workload, profile, config)
    }
}

/// Runs a batch of `(accelerator, workload, profile)` jobs through the
/// performance model in one call — the arity the serving layer's
/// micro-batcher coalesces concurrent `/v1/simulate` requests into. Jobs
/// fan out over [`spark_util::par_map`] and results come back in input
/// order, each identical to the corresponding [`Accelerator::run`] call.
pub fn run_batch(
    jobs: &[(AcceleratorKind, &ModelWorkload, &PrecisionProfile)],
    config: &SimConfig,
) -> Vec<WorkloadReport> {
    spark_util::par_map(jobs, |(kind, workload, profile)| {
        Accelerator::new(*kind).run(workload, profile, config)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_vii_pe_counts() {
        assert_eq!(Accelerator::new(AcceleratorKind::Spark).pe_count, 4096);
        assert_eq!(Accelerator::new(AcceleratorKind::Ant).pe_count, 4096);
        assert_eq!(Accelerator::new(AcceleratorKind::OlAccel).pe_count, 1152);
        assert_eq!(Accelerator::new(AcceleratorKind::BiScaled).pe_count, 2560);
        assert_eq!(Accelerator::new(AcceleratorKind::AdaFloat).pe_count, 896);
        assert_eq!(Accelerator::new(AcceleratorKind::Eyeriss).pe_count, 168);
    }

    #[test]
    fn spark_array_matches_pe_count() {
        let a = Accelerator::new(AcceleratorKind::Spark);
        assert_eq!(a.array_rows * a.array_cols, a.pe_count);
    }

    #[test]
    fn all_designs_have_consistent_arrays() {
        for a in Accelerator::all() {
            assert_eq!(
                a.array_rows * a.array_cols,
                a.pe_count,
                "{}",
                a.kind.name()
            );
            assert!(a.utilization > 0.0 && a.utilization <= 1.0);
        }
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<_> = AcceleratorKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn run_batch_matches_individual_runs_in_order() {
        let workload = ModelWorkload::by_name("ResNet18").expect("known model");
        let profile = PrecisionProfile::from_short_fractions(0.6, 0.4);
        let config = SimConfig::default();
        let jobs = [
            (AcceleratorKind::Spark, &workload, &profile),
            (AcceleratorKind::Eyeriss, &workload, &profile),
            (AcceleratorKind::Spark, &workload, &profile),
        ];
        let batch = run_batch(&jobs, &config);
        assert_eq!(batch.len(), 3);
        for ((kind, w, p), got) in jobs.iter().zip(&batch) {
            let want = Accelerator::new(*kind).run(w, p, &config);
            assert_eq!(got, &want);
        }
    }

    #[test]
    fn workload_report_serializes_to_parseable_json() {
        let workload = ModelWorkload::by_name("ResNet18").expect("known model");
        let profile = PrecisionProfile::from_short_fractions(0.5, 0.5);
        let report = Accelerator::new(AcceleratorKind::Spark).run(
            &workload,
            &profile,
            &SimConfig::default(),
        );
        use spark_util::ToJson;
        let v = report.to_json();
        let back = spark_util::json::parse(&v.to_string_pretty()).unwrap();
        assert_eq!(back.get("model").unwrap().as_str(), Some("ResNet18"));
        assert!(back.get("total_cycles").unwrap().as_f64().unwrap() > 0.0);
        assert!(!back.get("layers").unwrap().as_array().unwrap().is_empty());
        assert!(back
            .get("energy")
            .unwrap()
            .get("dram_pj")
            .unwrap()
            .as_f64()
            .is_some());
    }

    #[test]
    fn only_spark_measures_storage_from_encoding() {
        for a in Accelerator::all() {
            if a.kind == AcceleratorKind::Spark {
                assert!(a.storage_bits.is_none());
            } else {
                assert!(a.storage_bits.is_some(), "{}", a.kind.name());
            }
        }
    }
}
