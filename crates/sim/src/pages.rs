//! Multi-page scaling (Fig 6: "multiple PE pages, communicating with memory
//! through a global buffer").
//!
//! Each PE page is an independent array with its own decoders and buffers;
//! a layer's output columns are partitioned across pages. Scaling is
//! near-linear until either the column partition starves (layers with few
//! output columns leave pages idle) or the shared DRAM interface saturates.
//! The paper notes "the SPARK architecture can be extended to a larger
//! number of PEs under the same area budget"; this module quantifies that
//! extension.

use spark_nn::{Gemm, ModelWorkload};

use crate::arch::Accelerator;
use crate::perf::{PrecisionProfile, SimConfig};

/// Result of running a workload across `pages` PE pages.
#[derive(Debug, Clone, PartialEq)]
pub struct PageReport {
    /// Page count.
    pub pages: usize,
    /// Total cycles (the slowest page per layer, layers summed).
    pub total_cycles: f64,
    /// Average page utilization across layers (1.0 = perfectly balanced).
    pub utilization: f64,
    /// Fraction of layers limited by DRAM rather than compute.
    pub memory_bound_fraction: f64,
}

spark_util::to_json_struct!(PageReport {
    pages,
    total_cycles,
    utilization,
    memory_bound_fraction,
});

/// Per-layer cycle split across pages: page `p` gets the columns
/// `n_p = ceil(n / pages)` (last page gets the remainder); the layer takes
/// as long as the fullest page.
fn layer_cycles_on_pages(
    gemm: &Gemm,
    pages: usize,
    cycles_per_mac_one_page: f64,
    dram_bytes: f64,
    dram_bw: f64,
) -> (f64, f64, bool) {
    let cols_per_page = gemm.n.div_ceil(pages);
    let busiest_macs =
        (gemm.m as u64 * gemm.k as u64 * cols_per_page as u64 * gemm.repeats as u64) as f64;
    let compute = busiest_macs * cycles_per_mac_one_page;
    let memory = dram_bytes / dram_bw;
    let cycles = compute.max(memory);
    // Utilization: total work / (pages * busiest page's work).
    let total_macs = gemm.macs() as f64;
    let util = if busiest_macs == 0.0 {
        1.0
    } else {
        total_macs / (pages as f64 * busiest_macs)
    };
    (cycles, util, memory > compute)
}

/// Runs a workload on `pages` identical pages of the given accelerator.
///
/// `cycles_per_mac` must be the single-page effective cycles/MAC (e.g.
/// `expected_mac_cycles(...) / pe_count` for SPARK), exactly what
/// `perf::simulate` uses internally.
pub fn simulate_pages(
    acc: &Accelerator,
    workload: &ModelWorkload,
    profile: &PrecisionProfile,
    config: &SimConfig,
    pages: usize,
) -> PageReport {
    assert!(pages > 0, "page count must be positive");
    let single = crate::perf::simulate(acc, workload, profile, config);
    // Recover the per-MAC cost the perf model used (identical math).
    let total_macs: f64 = workload.total_macs() as f64;
    let compute_cycles: f64 = single.layers.iter().map(|l| l.compute_cycles).sum();
    let cycles_per_mac = if total_macs == 0.0 {
        0.0
    } else {
        compute_cycles / total_macs
    };

    let mut total_cycles = 0.0;
    let mut util_sum = 0.0;
    let mut memory_bound = 0usize;
    for (gemm, layer) in workload.gemms.iter().zip(&single.layers) {
        let (cycles, util, mem_bound) = layer_cycles_on_pages(
            gemm,
            pages,
            cycles_per_mac,
            layer.dram_bytes,
            config.dram_bytes_per_cycle,
        );
        total_cycles += cycles;
        util_sum += util;
        if mem_bound {
            memory_bound += 1;
        }
    }
    let layers = workload.gemms.len().max(1);
    PageReport {
        pages,
        total_cycles,
        utilization: util_sum / layers as f64,
        memory_bound_fraction: memory_bound as f64 / layers as f64,
    }
}

/// Sweeps page counts in parallel, returning one report per count (input
/// order preserved).
pub fn scaling_sweep(
    acc: &Accelerator,
    workload: &ModelWorkload,
    profile: &PrecisionProfile,
    config: &SimConfig,
    page_counts: &[usize],
) -> Vec<PageReport> {
    spark_util::par_map(page_counts, |&p| {
        simulate_pages(acc, workload, profile, config, p)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::AcceleratorKind;

    fn setup() -> (Accelerator, ModelWorkload, PrecisionProfile, SimConfig) {
        (
            Accelerator::new(AcceleratorKind::Spark),
            ModelWorkload::bert(),
            PrecisionProfile::from_short_fractions(0.8, 0.8),
            SimConfig::default(),
        )
    }

    #[test]
    fn one_page_matches_perf_model() {
        let (acc, w, p, cfg) = setup();
        let single = crate::perf::simulate(&acc, &w, &p, &cfg);
        let paged = simulate_pages(&acc, &w, &p, &cfg, 1);
        let ratio = paged.total_cycles / single.total_cycles;
        assert!((0.99..=1.01).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn scaling_is_monotone_and_sublinear() {
        let (acc, w, p, cfg) = setup();
        let sweep = scaling_sweep(&acc, &w, &p, &cfg, &[1, 2, 4, 8]);
        for pair in sweep.windows(2) {
            assert!(
                pair[1].total_cycles <= pair[0].total_cycles,
                "more pages slower: {pair:?}"
            );
        }
        // Speedup at 8 pages is positive but below ideal 8x (imbalance +
        // memory bound).
        let speedup = sweep[0].total_cycles / sweep[3].total_cycles;
        assert!(speedup > 2.0, "8-page speedup {speedup}");
        assert!(speedup <= 8.0, "8-page speedup {speedup}");
    }

    #[test]
    fn utilization_degrades_with_pages() {
        let (acc, w, p, cfg) = setup();
        let one = simulate_pages(&acc, &w, &p, &cfg, 1);
        let many = simulate_pages(&acc, &w, &p, &cfg, 16);
        assert!((one.utilization - 1.0).abs() < 1e-9);
        assert!(many.utilization <= one.utilization);
    }

    #[test]
    fn memory_bound_fraction_grows_with_pages() {
        // More compute per cycle, same DRAM: more layers become
        // memory-limited.
        let (acc, w, p, cfg) = setup();
        let one = simulate_pages(&acc, &w, &p, &cfg, 1);
        let many = simulate_pages(&acc, &w, &p, &cfg, 32);
        assert!(many.memory_bound_fraction >= one.memory_bound_fraction);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_pages_rejected() {
        let (acc, w, p, cfg) = setup();
        let _ = simulate_pages(&acc, &w, &p, &cfg, 0);
    }
}
