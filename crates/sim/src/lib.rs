//! # spark-sim — cycle-accurate systolic-array simulator and accelerator
//! models
//!
//! This crate reproduces Section IV and the performance/energy/area
//! evaluation of the SPARK paper (Figs 11, 12, 14, 15; Tables VI, VII).
//!
//! ## What is simulated vs modelled
//!
//! - **SPARK's mixed-precision array is simulated cycle by cycle**
//!   ([`systolic`]): every PE follows the Fig 9(c) protocol — INT4 MACs at
//!   full speed, 2 cycles when one operand is a long code, 4 when both are,
//!   with stalls propagating through the activation-forwarding and
//!   partial-sum dependencies. The critical-path recurrence the simulator
//!   evaluates is exactly the timing a lockstep systolic pipeline with
//!   variable per-PE service times exhibits.
//! - **Baseline accelerators are modelled** ([`arch`]): published PE counts
//!   and data widths (Table VII) with utilization factors calibrated to each
//!   design's reported relative throughput. The paper itself takes baseline
//!   numbers "as reported in their paper" — we do the analogous thing.
//! - **Energy** ([`energy`]) uses documented 28 nm per-operation constants;
//!   **area** ([`area`]) uses the paper's own component areas from
//!   Tables VI/VII.
//!
//! ## Example
//!
//! ```
//! use spark_nn::ModelWorkload;
//! use spark_sim::{Accelerator, AcceleratorKind, PrecisionProfile, SimConfig};
//!
//! let spark = Accelerator::new(AcceleratorKind::Spark);
//! let eyeriss = Accelerator::new(AcceleratorKind::Eyeriss);
//! let workload = ModelWorkload::resnet50();
//! let prof = PrecisionProfile::from_short_fractions(0.5, 0.5);
//! let cfg = SimConfig::default();
//! let a = spark.run(&workload, &prof, &cfg);
//! let b = eyeriss.run(&workload, &prof, &cfg);
//! assert!(a.total_cycles < b.total_cycles); // SPARK is faster
//! assert!(a.energy.total() < b.energy.total()); // and more efficient
//! ```

#![warn(missing_docs)]

pub mod area;
pub mod arch;
pub mod bandwidth;
pub mod buffer;
pub mod cost;
pub mod energy;
pub mod fault;
pub mod functional;
pub mod isa;
pub mod pages;
pub mod pe;
pub mod perf;
pub mod systolic;

pub use arch::{run_batch, Accelerator, AcceleratorKind};
pub use cost::{mac_cycles, OperandKind, TileCosts};
pub use bandwidth::{analyze as analyze_bandwidth, BandwidthReport};
pub use buffer::{plan_workload, BufferConfig, BufferReport, TilePlan};
pub use fault::{MacFaultHook, NoFaults};
pub use functional::{run_layer, FunctionalArray};
pub use isa::{Instruction, Program};
pub use pages::{scaling_sweep, simulate_pages, PageReport};
pub use pe::{MacSchedule, Mpe, SignMag};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use perf::{LayerReport, PrecisionProfile, SimConfig, WorkloadReport};
pub use systolic::{StallBreakdown, SystolicSim, TileResult};
