//! Zero-cost fault-injection hook for the functional PE array.
//!
//! The hook is a generic parameter, not a runtime branch: the default
//! [`NoFaults`] implementation is a zero-sized type whose identity
//! `perturb` inlines away, so [`crate::FunctionalArray::gemm`] compiles to
//! exactly the code it had before the hook existed and the bit-identity
//! property suites hold unchanged. Real injectors (stuck-at bits,
//! transient flips — see the `spark-fault` crate) implement the same trait
//! and run through [`crate::FunctionalArray::gemm_with_hook`].
//!
//! Determinism contract: `perturb` receives the **global MAC site index**
//! (the linear index of the MAC in the full `m x k x n` iteration space),
//! which is invariant under tiling and row fan-out. An injector that
//! derives its decision purely from `(seed, site)` — stateless hashing,
//! no shared RNG stream — therefore produces identical faults no matter
//! how the GEMM is partitioned across threads.

use crate::pe::SignMag;

/// Observer/perturber called once per MAC with the operands about to enter
/// the PE datapath.
pub trait MacFaultHook: Sync {
    /// Returns the (possibly perturbed) operand pair for the MAC at
    /// `site`, where `site = (i * k + kk) * n + j` over the full GEMM
    /// iteration space (row `i`, depth `kk`, column `j`).
    fn perturb(&self, site: u64, w: SignMag, a: SignMag) -> (SignMag, SignMag);
}

/// The disabled hook: identity, zero-sized, fully inlined.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl MacFaultHook for NoFaults {
    #[inline(always)]
    fn perturb(&self, _site: u64, w: SignMag, a: SignMag) -> (SignMag, SignMag) {
        (w, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_is_identity() {
        let w = SignMag::from_i16(-200);
        let a = SignMag::from_i16(7);
        assert_eq!(NoFaults.perturb(42, w, a), (w, a));
    }
}
