//! JSON round trips for every experiment result type: results are dumped
//! as JSON by the `experiments` binary, so everything that crosses that
//! boundary must serialize to text that parses back to the identical value.

use spark_bench::context::ExperimentContext;
use spark_bench::{
    entropy, fig11, fig12, fig13, fig14, fig15, fig2, fig4, formats, scaling, table2, table3,
    table4, table5, table6, table7, timing,
};
use spark_util::{json, ToJson, Value};

/// Serializes pretty and compact, parses both back, and demands equality
/// with the original tree.
fn round_trip(v: &impl ToJson) -> Value {
    let tree = v.to_json();
    let pretty = json::parse(&tree.to_string_pretty()).expect("pretty output parses");
    assert_eq!(pretty, tree, "pretty round trip diverged");
    let compact = json::parse(&tree.to_string_compact()).expect("compact output parses");
    assert_eq!(compact, tree, "compact round trip diverged");
    tree
}

fn field<'a>(tree: &'a Value, name: &str) -> &'a Value {
    tree.get(name).unwrap_or_else(|| panic!("missing field `{name}` in {tree:?}"))
}

#[test]
fn standalone_tables_round_trip() {
    let t2 = round_trip(&table2::run());
    assert!(field(&t2, "rows").as_array().is_some_and(|r| !r.is_empty()));
    round_trip(&table6::run());
    round_trip(&table7::run());
    round_trip(&fig13::run(true));
}

#[test]
fn codec_figures_round_trip() {
    let ctx = ExperimentContext::new();
    let f2 = round_trip(&fig2::run(&ctx, true));
    assert!(field(&f2, "rows").as_array().is_some());
    round_trip(&fig4::run(&ctx));
    round_trip(&entropy::run(&ctx));
    round_trip(&formats::run(&ctx));
}

#[test]
fn accuracy_tables_round_trip() {
    let ctx = ExperimentContext::new();
    round_trip(&table3::run(&ctx, true));
    round_trip(&table4::run(&ctx, true));
    round_trip(&table5::run(&ctx, true));
}

#[test]
fn performance_figures_round_trip() {
    let ctx = ExperimentContext::new();
    let f11 = round_trip(&fig11::run(&ctx));
    // Spot-check nesting: rows -> normalized -> [name, value] pairs.
    let rows = field(&f11, "rows").as_array().expect("rows is an array");
    let first = field(&rows[0], "normalized").as_array().expect("pairs");
    assert!(first[0].as_array().is_some_and(|p| p.len() == 2));
    round_trip(&fig12::run(&ctx));
    round_trip(&fig14::run(&ctx));
    round_trip(&fig15::run(&ctx));
    round_trip(&timing::run(&ctx));
    round_trip(&scaling::run(&ctx));
}
