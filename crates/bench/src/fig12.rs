//! Fig 12 — normalized energy across designs, decomposed into DRAM,
//! global buffer and core.

use spark_util::par_map;
use spark_sim::Accelerator;

use crate::context::ExperimentContext;

/// One design's stacked energy bar for one model.
#[derive(Debug, Clone)]
pub struct EnergyBar {
    /// Design name.
    pub accelerator: String,
    /// DRAM share of the normalized bar.
    pub dram: f64,
    /// Buffer share.
    pub buffer: f64,
    /// Core share.
    pub core: f64,
}

impl EnergyBar {
    /// Total normalized energy.
    pub fn total(&self) -> f64 {
        self.dram + self.buffer + self.core
    }
}

/// One model's bar group.
#[derive(Debug, Clone)]
pub struct Fig12Row {
    /// Model name.
    pub model: String,
    /// Bars normalized so the largest design = 1.0.
    pub bars: Vec<EnergyBar>,
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Fig12 {
    /// One row per performance-suite model.
    pub rows: Vec<Fig12Row>,
}

/// Runs the energy sweep.
pub fn run(ctx: &ExperimentContext) -> Fig12 {
    let designs = Accelerator::all();
    let rows = par_map(&ctx.performance_models(), |m| {
            let workload = m.workload.as_ref().expect("workload exists");
            let raw: Vec<EnergyBar> = designs
                .iter()
                .map(|d| {
                    let r = d.run(workload, &m.precision, &ctx.sim);
                    EnergyBar {
                        accelerator: d.kind.name().to_string(),
                        dram: r.energy.dram_pj,
                        buffer: r.energy.buffer_pj,
                        core: r.energy.core_pj,
                    }
                })
                .collect();
            let max = raw
                .iter()
                .map(EnergyBar::total)
                .fold(f64::MIN_POSITIVE, f64::max);
            Fig12Row {
                model: m.profile.name.clone(),
                bars: raw
                    .into_iter()
                    .map(|b| EnergyBar {
                        accelerator: b.accelerator,
                        dram: b.dram / max,
                        buffer: b.buffer / max,
                        core: b.core / max,
                    })
                    .collect(),
            }
        });
    Fig12 { rows }
}

/// Renders the figure as text.
pub fn render(fig: &Fig12) -> String {
    let mut out = String::from("Fig 12: normalized energy (stacked DRAM/buffer/core)\n");
    for r in &fig.rows {
        out.push_str(&format!("{}\n", r.model));
        for b in &r.bars {
            out.push_str(&format!(
                "  {:<10} total {:>6.3}  dram {:>6.3}  buffer {:>6.3}  core {:>6.3}\n",
                b.accelerator,
                b.total(),
                b.dram,
                b.buffer,
                b.core
            ));
        }
    }
    out
}

/// SPARK's energy reduction (%) vs a named design for a model.
pub fn reduction(fig: &Fig12, model: &str, vs: &str) -> Option<f64> {
    let row = fig.rows.iter().find(|r| r.model == model)?;
    let spark = row.bars.iter().find(|b| b.accelerator == "SPARK")?.total();
    let other = row.bars.iter().find(|b| b.accelerator == vs)?.total();
    Some((1.0 - spark / other) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spark_lowest_energy_and_paper_reductions_in_shape() {
        let ctx = ExperimentContext::new();
        let fig = run(&ctx);
        for r in &fig.rows {
            let spark = r.bars.iter().find(|b| b.accelerator == "SPARK").unwrap();
            for b in &r.bars {
                assert!(
                    spark.total() <= b.total() + 1e-12,
                    "{}: SPARK {} vs {} {}",
                    r.model,
                    spark.total(),
                    b.accelerator,
                    b.total()
                );
            }
        }
        // Paper: ResNet-50 reductions — 74.7% vs Eyeriss, 21.0% vs ANT.
        let vs_eyeriss = reduction(&fig, "ResNet50", "Eyeriss").unwrap();
        assert!((50.0..95.0).contains(&vs_eyeriss), "vs Eyeriss {vs_eyeriss}");
        let vs_ant = reduction(&fig, "ResNet50", "ANT").unwrap();
        assert!((2.0..50.0).contains(&vs_ant), "vs ANT {vs_ant}");
        // ViT: 69.9% less than AdaFloat, 36.3% less than ANT (shape).
        let vit_ada = reduction(&fig, "ViT", "AdaFloat").unwrap();
        assert!((40.0..90.0).contains(&vit_ada), "ViT vs AdaFloat {vit_ada}");
    }
}

spark_util::to_json_struct!(EnergyBar { accelerator, dram, buffer, core });
spark_util::to_json_struct!(Fig12Row { model, bars });
spark_util::to_json_struct!(Fig12 { rows });
