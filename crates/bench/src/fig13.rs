//! Fig 13 — accuracy loss under different optimization settings:
//! without the compensation mechanism (w/o CM), with CM but no finetuning
//! (CM w/o-FT), and with CM plus codec-aware finetuning (CM w/-FT).

use spark_quant::SparkCodec;

use crate::accuracy::{ProxyFamily, TrainedProxy};

/// One model's three bars.
#[derive(Debug, Clone)]
pub struct Fig13Row {
    /// Model name.
    pub model: String,
    /// Accuracy loss (%) without the compensation mechanism.
    pub no_cm: f64,
    /// Accuracy loss (%) with CM, no finetuning.
    pub cm_no_ft: f64,
    /// Accuracy loss (%) with CM and finetuning.
    pub cm_ft: f64,
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Fig13 {
    /// One row per representative model.
    pub rows: Vec<Fig13Row>,
}

/// Runs the ablation on one CNN and one attention proxy per representative
/// model (the paper shows ResNet50, VGG16, BERT, ViT).
pub fn run(quick: bool) -> Fig13 {
    let models = ["ResNet50", "VGG16", "BERT", "ViT"];
    let cm = SparkCodec::default();
    let no_cm = SparkCodec::default().without_compensation().without_bias_correction();
    let ft_epochs = if quick { 2 } else { 6 };
    let rows = models
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let family = ProxyFamily::of_model(name);
            let mut proxy = TrainedProxy::train_for(family, 600 + i as u64, quick);
            let (acc_no_cm, _) = proxy.accuracy_with(&no_cm);
            let (acc_cm, _) = proxy.accuracy_with(&cm);
            let acc_ft = proxy.accuracy_with_finetune(&cm, ft_epochs);
            Fig13Row {
                model: name.to_string(),
                no_cm: (proxy.fp32_acc - acc_no_cm) * 100.0,
                cm_no_ft: (proxy.fp32_acc - acc_cm) * 100.0,
                cm_ft: (proxy.fp32_acc - acc_ft) * 100.0,
            }
        })
        .collect();
    Fig13 { rows }
}

/// Renders the figure as text.
pub fn render(fig: &Fig13) -> String {
    let mut out = String::from(
        "Fig 13: accuracy loss (%) under optimization settings\n\
         model      w/o CM    CM w/o-FT   CM w/-FT\n",
    );
    for r in &fig.rows {
        out.push_str(&format!(
            "{:<10} {:>7.2}   {:>9.2}   {:>8.2}\n",
            r.model, r.no_cm, r.cm_no_ft, r.cm_ft
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cm_and_finetuning_monotonically_help() {
        let fig = run(true);
        assert_eq!(fig.rows.len(), 4);
        for r in &fig.rows {
            // CM should not hurt relative to no-CM. Quick-mode proxy test
            // sets are small (each example is worth ~0.6 points), so allow
            // a few points of sampling noise.
            assert!(
                r.cm_no_ft <= r.no_cm + 4.0,
                "{}: CM {} vs no-CM {}",
                r.model,
                r.cm_no_ft,
                r.no_cm
            );
            // Finetuning should not hurt relative to no finetuning.
            assert!(
                r.cm_ft <= r.cm_no_ft + 4.0,
                "{}: FT {} vs no-FT {}",
                r.model,
                r.cm_ft,
                r.cm_no_ft
            );
        }
    }
}

spark_util::to_json_struct!(Fig13Row { model, no_cm, cm_no_ft, cm_ft });
spark_util::to_json_struct!(Fig13 { rows });
