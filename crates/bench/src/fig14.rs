//! Fig 14 — energy efficiency and accuracy versus model size.
//!
//! The paper scales a BERT-family model and shows SPARK's energy-efficiency
//! advantage grows with parameter count, because larger models exhibit more
//! bit sparsity. We scale the transformer workload (3 → 48 layers) and let
//! the outlier ratio — and hence the short-code fraction — grow mildly with
//! size, matching that observation.

use spark_data::dist::ParamDistribution;
use spark_nn::{Gemm, ModelWorkload};
use spark_sim::{Accelerator, AcceleratorKind, PrecisionProfile};

use crate::context::ExperimentContext;

/// One point of the sweep.
#[derive(Debug, Clone)]
pub struct Fig14Point {
    /// Transformer depth.
    pub layers: usize,
    /// Parameter count (millions) of the scaled model.
    pub param_millions: f64,
    /// Measured short-code fraction of its weights.
    pub short_frac: f64,
    /// SPARK energy efficiency (GMAC/J).
    pub spark_gmacs_per_j: f64,
    /// Eyeriss (INT16 baseline) energy efficiency (GMAC/J).
    pub baseline_gmacs_per_j: f64,
    /// SPARK accuracy proxy: lossless fraction of the encoding (%).
    pub lossless_pct: f64,
}

/// The full sweep.
#[derive(Debug, Clone)]
pub struct Fig14 {
    /// Points in increasing model size.
    pub points: Vec<Fig14Point>,
}

fn scaled_transformer(layers: usize) -> ModelWorkload {
    let d = 768;
    let seq = 128;
    let mut gemms = vec![
        Gemm::new("qkv", seq, d, 3 * d).times(layers),
        Gemm::new("scores", seq, d, seq).times(layers),
        Gemm::new("context", seq, seq, d).times(layers),
        Gemm::new("attn_out", seq, d, d).times(layers),
        Gemm::new("ffn_up", seq, d, 4 * d).times(layers),
        Gemm::new("ffn_down", seq, 4 * d, d).times(layers),
    ];
    gemms.push(Gemm::new("head", 1, d, 2));
    ModelWorkload {
        name: format!("BERT-{layers}L"),
        gemms,
    }
}

/// Runs the model-size sweep.
pub fn run(ctx: &ExperimentContext) -> Fig14 {
    let spark = Accelerator::new(AcceleratorKind::Spark);
    let eyeriss = Accelerator::new(AcceleratorKind::Eyeriss);
    let points = [3usize, 6, 12, 24, 48]
        .iter()
        .map(|&layers| {
            let workload = scaled_transformer(layers);
            // Bit sparsity grows gently with scale (larger models carry
            // heavier outlier tails relative to the body).
            let ratio = 28.0 + 6.0 * (layers as f32 / 3.0).log2();
            let dist = ParamDistribution::GaussianWithOutliers {
                std: 0.02,
                outlier_prob: 0.003,
                outlier_ratio: ratio,
            };
            let weights = dist.sample_tensor(40_000, 500 + layers as u64);
            let acts = dist.sample_tensor(40_000, 600 + layers as u64);
            let precision =
                PrecisionProfile::from_tensors(&weights, &acts).expect("finite samples");
            let spark_report = spark.run(&workload, &precision, &ctx.sim);
            let eyeriss_report = eyeriss.run(&workload, &precision, &ctx.sim);
            let codec = spark_quant::SparkCodec::default();
            let (_, stats) = codec.compress_with_stats(&weights).expect("finite");
            Fig14Point {
                layers,
                param_millions: workload.total_weights() as f64 / 1e6,
                short_frac: precision.short_frac_w,
                spark_gmacs_per_j: spark_report.gmacs_per_joule(&workload),
                baseline_gmacs_per_j: eyeriss_report.gmacs_per_joule(&workload),
                lossless_pct: stats.lossless_fraction() * 100.0,
            }
        })
        .collect();
    Fig14 { points }
}

/// Renders the sweep as text.
pub fn render(fig: &Fig14) -> String {
    let mut out = String::from(
        "Fig 14: energy efficiency and accuracy vs model size\n\
         layers   params(M)  short%   SPARK GMAC/J   INT16 GMAC/J   gain x   lossless %\n",
    );
    for p in &fig.points {
        out.push_str(&format!(
            "{:>6}   {:>8.1}  {:>6.1}   {:>12.1}   {:>12.1}   {:>6.2}   {:>9.2}\n",
            p.layers,
            p.param_millions,
            p.short_frac * 100.0,
            p.spark_gmacs_per_j,
            p.baseline_gmacs_per_j,
            p.spark_gmacs_per_j / p.baseline_gmacs_per_j,
            p.lossless_pct
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_gain_grows_with_model_size() {
        let ctx = ExperimentContext::new();
        let fig = run(&ctx);
        assert_eq!(fig.points.len(), 5);
        let gains: Vec<f64> = fig
            .points
            .iter()
            .map(|p| p.spark_gmacs_per_j / p.baseline_gmacs_per_j)
            .collect();
        // Monotone non-decreasing advantage with size (paper's claim).
        for w in gains.windows(2) {
            assert!(w[1] >= w[0] * 0.98, "gains {gains:?}");
        }
        assert!(gains[0] > 2.0, "even the small model wins: {}", gains[0]);
        // Short-code fraction grows with size.
        assert!(fig.points.last().unwrap().short_frac > fig.points[0].short_frac);
        // Accuracy proxy stays high.
        for p in &fig.points {
            assert!(p.lossless_pct > 90.0);
        }
    }
}

spark_util::to_json_struct!(Fig14Point { layers, param_millions, short_frac, spark_gmacs_per_j, baseline_gmacs_per_j, lossless_pct });
spark_util::to_json_struct!(Fig14 { points });
