//! Table IV — accuracy loss and bit-width without finetuning: SPARK vs
//! 6-bit ANT vs 6-bit BiScaled on the CNN models.

use spark_quant::{AntCodec, BiScaledCodec, SparkCodec};

use crate::accuracy::{ProxyFamily, TrainedProxy};
use crate::context::ExperimentContext;

/// One model row.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Model name.
    pub model: String,
    /// SPARK accuracy loss (%) and measured average bits.
    pub spark: (f64, f64),
    /// ANT-6 accuracy loss (%) and bits.
    pub ant: (f64, f64),
    /// BiScaled-6 accuracy loss (%) and bits.
    pub biscaled: (f64, f64),
}

/// The regenerated table.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// Rows for VGG16 / ResNet50 / ResNet152.
    pub rows: Vec<Table4Row>,
}

/// Measures the three codecs on trained CNN proxies. The per-model SPARK
/// bit-width comes from the model's calibrated tensor profile (Table IV
/// reports 5.1–5.3 bits).
pub fn run(ctx: &ExperimentContext, quick: bool) -> Table4 {
    let models = ["VGG16", "ResNet50", "ResNet152"];
    let spark = SparkCodec::default();
    let ant = AntCodec::new(6).expect("6 bits supported");
    let biscaled = BiScaledCodec::new(6).expect("6 bits supported");
    let rows = models
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let mut proxy = TrainedProxy::train_for(ProxyFamily::Cnn, 400 + i as u64, quick);
            let (spark_acc, _) = proxy.accuracy_with(&spark);
            let (ant_acc, ant_bits) = proxy.accuracy_with(&ant);
            let (bi_acc, bi_bits) = proxy.accuracy_with(&biscaled);
            // Representative bit-width: the codec measured on the model's
            // calibrated weight distribution.
            let model_bits = ctx
                .model(name)
                .map(|m| m.precision.spark_bits_w)
                .unwrap_or(5.3);
            Table4Row {
                model: name.to_string(),
                spark: ((proxy.fp32_acc - spark_acc) * 100.0, model_bits),
                ant: ((proxy.fp32_acc - ant_acc) * 100.0, ant_bits),
                biscaled: ((proxy.fp32_acc - bi_acc) * 100.0, bi_bits),
            }
        })
        .collect();
    Table4 { rows }
}

/// Renders the table as text.
pub fn render(t: &Table4) -> String {
    let mut out = String::from(
        "Table IV: accuracy loss (%) and bit-width without finetuning\n\
         model       SPARK              ANT                BiScaled\n",
    );
    for r in &t.rows {
        out.push_str(&format!(
            "{:<11} {:>5.2} ({:.2} bit)   {:>5.2} ({:.2} bit)   {:>5.2} ({:.2} bit)\n",
            r.model, r.spark.0, r.spark.1, r.ant.0, r.ant.1, r.biscaled.0, r.biscaled.1
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spark_fewer_bits_and_competitive_loss() {
        let ctx = ExperimentContext::new();
        let t = run(&ctx, true);
        assert_eq!(t.rows.len(), 3);
        for r in &t.rows {
            // SPARK's measured bits sit below the 6-bit baselines.
            assert!(r.spark.1 < 6.0, "{}: {} bits", r.model, r.spark.1);
            assert!(r.ant.1 >= 6.0);
            assert!(r.biscaled.1 >= 6.0);
            // SPARK's loss is not dramatically worse than the 6-bit codecs
            // (the paper: strictly better; tiny proxies are noisy).
            assert!(
                r.spark.0 <= r.biscaled.0 + 5.0,
                "{}: spark {} vs biscaled {}",
                r.model,
                r.spark.0,
                r.biscaled.0
            );
        }
    }
}

spark_util::to_json_struct!(Table4Row { model, spark, ant, biscaled });
spark_util::to_json_struct!(Table4 { rows });
