//! Fig 15 — joint optimization: Density-Bound Block (50 %) sparsity
//! combined with SPARK.

use spark_util::par_map;
use spark_data::{dbb_prune, DbbConfig};
use spark_sim::{Accelerator, AcceleratorKind, SimConfig};

use crate::context::ExperimentContext;

/// One model's dense-vs-DBB comparison.
#[derive(Debug, Clone)]
pub struct Fig15Row {
    /// Model name.
    pub model: String,
    /// SPARK cycles, dense.
    pub dense_cycles: f64,
    /// SPARK cycles with DBB 50 %.
    pub dbb_cycles: f64,
    /// Achieved sparsity of the pruned weight sample.
    pub achieved_sparsity: f64,
    /// Short-code fraction after pruning (zeros are short codes, so DBB
    /// *increases* bit sparsity — the compressions compose).
    pub short_frac_after_dbb: f64,
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Fig15 {
    /// One row per performance model (the paper shows five networks).
    pub rows: Vec<Fig15Row>,
}

/// Runs the joint-optimization comparison.
pub fn run(ctx: &ExperimentContext) -> Fig15 {
    let spark = Accelerator::new(AcceleratorKind::Spark);
    let dbb_cfg = DbbConfig::half_sparse();
    let rows = par_map(&ctx.performance_models(), |m| {
            let workload = m.workload.as_ref().expect("workload exists");
            let dense = spark.run(workload, &m.precision, &ctx.sim);
            let sparse_sim = SimConfig {
                dbb_density: Some(dbb_cfg.density()),
                ..ctx.sim
            };
            // Measure how pruning changes the code statistics.
            let (pruned, sparsity) = dbb_prune(&m.weights, &dbb_cfg);
            let precision_after =
                spark_sim::PrecisionProfile::from_tensors(&pruned, &m.activations)
                    .expect("finite");
            let sparse = spark.run(workload, &precision_after, &sparse_sim);
            Fig15Row {
                model: m.profile.name.clone(),
                dense_cycles: dense.total_cycles,
                dbb_cycles: sparse.total_cycles,
                achieved_sparsity: sparsity,
                short_frac_after_dbb: precision_after.short_frac_w,
            }
        });
    Fig15 { rows }
}

/// Renders the figure as text.
pub fn render(fig: &Fig15) -> String {
    let mut out = String::from(
        "Fig 15: SPARK + DBB (50%) joint optimization\n\
         model       dense cycles    DBB cycles    speedup   sparsity   short% after DBB\n",
    );
    for r in &fig.rows {
        out.push_str(&format!(
            "{:<11} {:>12.3e}  {:>12.3e}   {:>7.2}   {:>8.2}   {:>16.1}\n",
            r.model,
            r.dense_cycles,
            r.dbb_cycles,
            r.dense_cycles / r.dbb_cycles,
            r.achieved_sparsity,
            r.short_frac_after_dbb * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbb_roughly_halves_cycles_and_composes() {
        let ctx = ExperimentContext::new();
        let fig = run(&ctx);
        assert_eq!(fig.rows.len(), 6);
        for r in &fig.rows {
            let speedup = r.dense_cycles / r.dbb_cycles;
            assert!(
                (1.4..2.6).contains(&speedup),
                "{}: speedup {speedup}",
                r.model
            );
            assert!((r.achieved_sparsity - 0.5).abs() < 0.05, "{}", r.model);
        }
        // Pruning zeroes values -> more short codes (compositionality).
        let dense_short = ctx.model("ResNet50").unwrap().precision.short_frac_w;
        let after = fig
            .rows
            .iter()
            .find(|r| r.model == "ResNet50")
            .unwrap()
            .short_frac_after_dbb;
        assert!(after > dense_short);
    }
}

spark_util::to_json_struct!(Fig15Row { model, dense_cycles, dbb_cycles, achieved_sparsity, short_frac_after_dbb });
spark_util::to_json_struct!(Fig15 { rows });
