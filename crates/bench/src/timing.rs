//! Extension experiment: SPARK timing-fidelity comparison.
//!
//! The cycle-accurate simulator exposes a gap the paper leaves implicit:
//! taking the Fig 9(c) lockstep protocol literally, a column holding any
//! long-code weight is paced by it, costing real throughput; with per-lane
//! line buffers (the Fig 6 microarchitecture) the sustained rate is the
//! expected per-MAC cost. This experiment quantifies both, per model.

use spark_sim::perf::{spark_cycles_per_wave, SparkTiming};
use spark_sim::{cost::expected_mac_cycles, Accelerator, AcceleratorKind, SimConfig};

use crate::context::ExperimentContext;

/// One model's timing comparison.
#[derive(Debug, Clone)]
pub struct TimingRow {
    /// Model name.
    pub model: String,
    /// Analytic expected cycles per MAC (decoupled lanes).
    pub expected_cycles: f64,
    /// Measured cycles per wave on the lockstep cycle-accurate array,
    /// normalized per MAC (divided by nothing — one wave = one MAC/PE).
    pub lockstep_cycles: f64,
    /// Whole-model slowdown of lockstep vs decoupled.
    pub slowdown: f64,
}

/// The full comparison.
#[derive(Debug, Clone)]
pub struct Timing {
    /// One row per performance-suite model.
    pub rows: Vec<TimingRow>,
}

/// Runs the comparison.
pub fn run(ctx: &ExperimentContext) -> Timing {
    let spark = Accelerator::new(AcceleratorKind::Spark);
    let rows = ctx
        .performance_models()
        .iter()
        .map(|m| {
            let workload = m.workload.as_ref().expect("workload exists");
            let expected =
                expected_mac_cycles(m.precision.short_frac_a, m.precision.short_frac_w);
            let lockstep = spark_cycles_per_wave(
                spark.array_rows,
                spark.array_cols,
                &m.precision,
                256,
                11,
            );
            let decoupled_cfg = SimConfig {
                spark_timing: SparkTiming::Decoupled,
                ..ctx.sim
            };
            let lockstep_cfg = SimConfig {
                spark_timing: SparkTiming::Lockstep,
                ..ctx.sim
            };
            let fast = spark.run(workload, &m.precision, &decoupled_cfg);
            let slow = spark.run(workload, &m.precision, &lockstep_cfg);
            TimingRow {
                model: m.profile.name.clone(),
                expected_cycles: expected,
                lockstep_cycles: lockstep,
                slowdown: slow.total_cycles / fast.total_cycles,
            }
        })
        .collect();
    Timing { rows }
}

/// Renders the comparison as text.
pub fn render(t: &Timing) -> String {
    let mut out = String::from(
        "Timing fidelity (extension): decoupled vs lockstep SPARK array\n\
         model       E[c]/MAC   lockstep c/wave   model slowdown\n",
    );
    for r in &t.rows {
        out.push_str(&format!(
            "{:<11} {:>8.2}   {:>15.2}   {:>14.2}\n",
            r.model, r.expected_cycles, r.lockstep_cycles, r.slowdown
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lockstep_strictly_slower_but_bounded() {
        let ctx = ExperimentContext::new();
        let t = run(&ctx);
        assert_eq!(t.rows.len(), 6);
        for r in &t.rows {
            // Lockstep pays for long-weight columns...
            assert!(
                r.lockstep_cycles > r.expected_cycles,
                "{}: {} vs {}",
                r.model,
                r.lockstep_cycles,
                r.expected_cycles
            );
            // ...but never beyond the all-INT8 worst case.
            assert!(r.lockstep_cycles <= 4.2, "{}: {}", r.model, r.lockstep_cycles);
            assert!(r.slowdown >= 1.0, "{}", r.model);
            assert!(r.slowdown <= 4.0, "{}: {}", r.model, r.slowdown);
        }
    }
}

spark_util::to_json_struct!(TimingRow { model, expected_cycles, lockstep_cycles, slowdown });
spark_util::to_json_struct!(Timing { rows });
