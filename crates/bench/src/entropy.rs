//! Extension experiment: SPARK's rate versus the entropy bound.
//!
//! For each model's calibrated INT8 codes, compares SPARK's achieved
//! bits/value with the Shannon entropy of the reconstructed distribution —
//! the floor any prefix-free code (e.g. Huffman) could reach. The gap is
//! the price of memory alignment, the property Table I credits SPARK with
//! over the coordinate-list and sparse-index schemes.

use spark_codec::analysis::{analyze, CodeAnalysis};
use spark_quant::MagnitudeQuantizer;

use crate::context::ExperimentContext;

/// One model's rate analysis.
#[derive(Debug, Clone)]
pub struct EntropyRow {
    /// Model name.
    pub model: String,
    /// Full analysis of its weight codes.
    pub analysis: CodeAnalysis,
}

/// The full experiment.
#[derive(Debug, Clone)]
pub struct Entropy {
    /// One row per model, Fig 2 order.
    pub rows: Vec<EntropyRow>,
}

/// Runs the analysis on every model's calibrated weights.
pub fn run(ctx: &ExperimentContext) -> Entropy {
    let quantizer = MagnitudeQuantizer::new(8).expect("8 bits supported");
    let rows = ctx
        .models
        .iter()
        .map(|m| {
            let codes = quantizer
                .quantize(&m.weights)
                .expect("sampled weights are finite");
            EntropyRow {
                model: m.profile.name.clone(),
                analysis: analyze(&codes.codes),
            }
        })
        .collect();
    Entropy { rows }
}

/// Renders the experiment as text.
pub fn render(e: &Entropy) -> String {
    let mut out = String::from(
        "Entropy analysis (extension): SPARK rate vs the entropy bound\n\
         model       SPARK bits   H(source)   H(recon)   alignment cost   RMS err\n",
    );
    for r in &e.rows {
        out.push_str(&format!(
            "{:<11} {:>10.2}   {:>9.2}   {:>8.2}   {:>14.2}   {:>7.2}\n",
            r.model,
            r.analysis.spark_bits,
            r.analysis.source_entropy,
            r.analysis.reconstructed_entropy,
            r.analysis.alignment_overhead_bits(),
            r.analysis.rms_error
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spark_between_entropy_bound_and_8_bits() {
        let ctx = ExperimentContext::new();
        let e = run(&ctx);
        assert_eq!(e.rows.len(), 8);
        for r in &e.rows {
            let a = &r.analysis;
            assert!(
                a.spark_bits >= a.reconstructed_entropy,
                "{}: SPARK {} below entropy {}",
                r.model,
                a.spark_bits,
                a.reconstructed_entropy
            );
            assert!(a.spark_bits < 8.0, "{}", r.model);
            // Alignment costs a bounded premium over the entropy coder.
            assert!(
                a.alignment_overhead_bits() < 3.5,
                "{}: overhead {}",
                r.model,
                a.alignment_overhead_bits()
            );
            // Errors stay tiny on calibrated tensors.
            assert!(a.rms_error < 4.0, "{}: rms {}", r.model, a.rms_error);
        }
    }
}

spark_util::to_json_struct!(EntropyRow { model, analysis });
spark_util::to_json_struct!(Entropy { rows });
