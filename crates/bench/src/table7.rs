//! Table VII — iso-area core configurations across all designs.

use spark_sim::area::{breakdown, AreaBreakdown};
use spark_sim::AcceleratorKind;

/// The regenerated table.
#[derive(Debug, Clone)]
pub struct Table7 {
    /// One breakdown per design.
    pub designs: Vec<AreaBreakdown>,
}

/// Regenerates Table VII.
pub fn run() -> Table7 {
    Table7 {
        designs: AcceleratorKind::ALL.into_iter().map(breakdown).collect(),
    }
}

/// Renders the table as text.
pub fn render(t: &Table7) -> String {
    let mut out = String::from("Table VII: core configuration and area (28 nm, iso-area)\n");
    for d in &t.designs {
        out.push_str(&format!(
            "{:<10} total {:>7.4} mm^2\n",
            d.kind.name(),
            d.total_mm2()
        ));
        for c in &d.components {
            out.push_str(&format!(
                "    {:<16} x{:<5} {:>10.6} mm^2\n",
                c.component, c.count, c.area_mm2
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_designs_iso_area() {
        let t = run();
        assert_eq!(t.designs.len(), 8);
        for d in &t.designs {
            let total = d.total_mm2();
            assert!(
                (0.29..0.35).contains(&total),
                "{}: {total}",
                d.kind.name()
            );
        }
        // SPARK has the smallest codec area of the decoder-based designs.
        let codec_area = |kind: AcceleratorKind| -> f64 {
            breakdown(kind)
                .components
                .iter()
                .filter(|c| c.component.contains("decoder") || c.component.contains("encoder"))
                .map(|c| c.area_mm2)
                .sum()
        };
        assert!(codec_area(AcceleratorKind::Spark) < codec_area(AcceleratorKind::Olive));
        assert!(render(&t).contains("SPARK"));
    }
}

spark_util::to_json_struct!(Table7 { designs });
