//! Shared machinery for the accuracy experiments (Tables III–V, Fig 13):
//! train a proxy once, then measure each codec's accuracy delta by
//! compressing the trained weights, evaluating, and restoring.

use spark_data::Dataset;
use spark_nn::{proxy, train, Sequential};
use spark_quant::Codec;
use spark_tensor::Tensor;

/// Which proxy family stands in for a paper model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProxyFamily {
    /// Convolutional proxy (`tiny_cnn` on the bar-images task).
    Cnn,
    /// Attention proxy (`tiny_attention` on the token-patterns task).
    Attention,
}

impl ProxyFamily {
    /// Family for a paper model name.
    pub fn of_model(name: &str) -> Self {
        match name {
            "BERT" | "ViT" | "GPT-2" | "BART" => ProxyFamily::Attention,
            _ => ProxyFamily::Cnn,
        }
    }
}

/// A trained proxy plus its datasets, reusable across codecs.
pub struct TrainedProxy {
    model: Sequential,
    train_set: Dataset,
    test_set: Dataset,
    /// FP32 test accuracy after training.
    pub fp32_acc: f64,
}

impl std::fmt::Debug for TrainedProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainedProxy")
            .field("fp32_acc", &self.fp32_acc)
            .finish()
    }
}

impl TrainedProxy {
    /// Trains a proxy of the given family. `quick` shrinks data and epochs
    /// for unit tests; experiments use `quick = false`.
    pub fn train_for(family: ProxyFamily, seed: u64, quick: bool) -> Self {
        let (mut model, data, cfg) = match family {
            ProxyFamily::Cnn => {
                let n = if quick { 600 } else { 1600 };
                // Noise 0.7 keeps FP32 accuracy around 93% so codec damage
                // is visible (a saturated task hides it).
                let data = Dataset::bars_noisy(n, 8, 16, 0.7, seed);
                let model = proxy::tiny_cnn(8, 6, 48, 16, seed.wrapping_add(31));
                let cfg = train::TrainConfig {
                    epochs: if quick { 8 } else { 16 },
                    lr: 0.25,
                    batch: 16,
                    seed,
                };
                (model, data, cfg)
            }
            ProxyFamily::Attention => {
                let n = if quick { 800 } else { 1600 };
                // Attention training is stable at lr 0.1 (higher rates
                // collapse to the uniform predictor); noise 0.25 keeps the
                // task off saturation.
                let data = Dataset::token_patterns_noisy(n, 5, 8, 0.25, seed);
                let model = proxy::tiny_attention(5, 8, 16, 8, seed.wrapping_add(41));
                let cfg = train::TrainConfig {
                    epochs: if quick { 40 } else { 80 },
                    lr: 0.1,
                    batch: 8,
                    seed,
                };
                (model, data, cfg)
            }
        };
        let (train_set, test_set) = data.split(0.8);
        train::train(&mut model, &train_set, &cfg);
        let fp32_acc = train::evaluate(&mut model, &test_set);
        Self {
            model,
            train_set,
            test_set,
            fp32_acc,
        }
    }

    /// Snapshot of the current weights.
    fn snapshot(&mut self) -> Vec<Tensor> {
        self.model.weights_mut().into_iter().map(|w| w.clone()).collect()
    }

    /// Restores weights from a snapshot.
    fn restore(&mut self, snap: &[Tensor]) {
        for (w, s) in self.model.weights_mut().into_iter().zip(snap) {
            *w = s.clone();
        }
    }

    /// Compresses the trained weights with `codec`, evaluates, restores.
    /// Returns `(accuracy, avg_bits)`.
    pub fn accuracy_with(&mut self, codec: &dyn Codec) -> (f64, f64) {
        let snap = self.snapshot();
        let bits = train::compress_weights(&mut self.model, codec)
            .expect("trained weights are finite");
        let acc = train::evaluate(&mut self.model, &self.test_set);
        self.restore(&snap);
        (acc, bits)
    }

    /// Like [`TrainedProxy::accuracy_with`] but finetunes with the codec in
    /// the loop before evaluating (the "w/-FT" Fig 13 arm).
    pub fn accuracy_with_finetune(&mut self, codec: &dyn Codec, epochs: usize) -> f64 {
        let snap = self.snapshot();
        train::compress_weights(&mut self.model, codec).expect("finite");
        let cfg = train::TrainConfig {
            epochs,
            lr: 0.02,
            batch: 16,
            seed: 77,
        };
        train::finetune_with_codec(&mut self.model, &self.train_set, codec, &cfg)
            .expect("finite");
        let acc = train::evaluate(&mut self.model, &self.test_set);
        self.restore(&snap);
        acc
    }

    /// Accuracy with weights compressed AND activations round-tripped
    /// through the codec between layers (the full accelerator datapath).
    pub fn accuracy_with_activations(&mut self, codec: &dyn Codec) -> f64 {
        let snap = self.snapshot();
        train::compress_weights(&mut self.model, codec).expect("finite");
        let acc = train::evaluate_with_activation_codec(&mut self.model, &self.test_set, codec);
        self.restore(&snap);
        acc
    }

    /// Accuracy loss of a codec in percentage points relative to FP32.
    pub fn loss_pct(&mut self, codec: &dyn Codec) -> f64 {
        let (acc, _) = self.accuracy_with(codec);
        (self.fp32_acc - acc) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_quant::{SparkCodec, UniformQuantizer};

    #[test]
    fn family_mapping() {
        assert_eq!(ProxyFamily::of_model("BERT"), ProxyFamily::Attention);
        assert_eq!(ProxyFamily::of_model("VGG16"), ProxyFamily::Cnn);
        assert_eq!(ProxyFamily::of_model("ResNet152"), ProxyFamily::Cnn);
    }

    #[test]
    fn restore_round_trips() {
        let mut p = TrainedProxy::train_for(ProxyFamily::Cnn, 3, true);
        let before = p.fp32_acc;
        // Destroy accuracy with 2-bit quantization, then verify restore.
        let _ = p.accuracy_with(&UniformQuantizer::symmetric(2));
        let mut model_acc = spark_nn::train::evaluate(&mut p.model, &p.test_set.clone());
        assert!((model_acc - before).abs() < 1e-9, "{model_acc} vs {before}");
        model_acc = spark_nn::train::evaluate(&mut p.model, &p.test_set.clone());
        assert!((model_acc - before).abs() < 1e-9);
    }

    #[test]
    fn spark_loss_small_on_quick_proxy() {
        let mut p = TrainedProxy::train_for(ProxyFamily::Cnn, 5, true);
        let loss = p.loss_pct(&SparkCodec::default());
        assert!(loss < 10.0, "loss {loss}");
    }
}
