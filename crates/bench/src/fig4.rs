//! Fig 4 — lossless vs lossy fraction after SPARK encoding, per model.

use spark_quant::SparkCodec;

use crate::context::ExperimentContext;

/// One bar of Fig 4.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Model name.
    pub model: String,
    /// Percentage of values reconstructed exactly.
    pub lossless_pct: f64,
    /// Percentage with a rounding error.
    pub lossy_pct: f64,
    /// Average bits per value under SPARK.
    pub avg_bits: f64,
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// One row per model.
    pub rows: Vec<Fig4Row>,
}

/// Measures lossless fractions with the real codec.
pub fn run(ctx: &ExperimentContext) -> Fig4 {
    let codec = SparkCodec::default();
    let rows = ctx
        .models
        .iter()
        .map(|m| {
            let (_, stats) = codec
                .compress_with_stats(&m.weights)
                .expect("sampled weights are finite");
            Fig4Row {
                model: m.profile.name.clone(),
                lossless_pct: stats.lossless_fraction() * 100.0,
                lossy_pct: (1.0 - stats.lossless_fraction()) * 100.0,
                avg_bits: stats.avg_bits(),
            }
        })
        .collect();
    Fig4 { rows }
}

/// Renders the figure as text.
pub fn render(fig: &Fig4) -> String {
    let mut out = String::from(
        "Fig 4: lossless vs lossy percentage after SPARK encoding\n\
         model       lossless %   lossy %   avg bits\n",
    );
    for r in &fig.rows {
        out.push_str(&format!(
            "{:<11} {:>10.2}   {:>7.2}   {:>8.2}\n",
            r.model, r.lossless_pct, r.lossy_pct, r.avg_bits
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_than_90_pct_lossless_everywhere() {
        // Paper: "more than 95% data is lossless" — our calibrated
        // distributions land in the same regime.
        let ctx = ExperimentContext::new();
        let fig = run(&ctx);
        assert_eq!(fig.rows.len(), 8);
        for r in &fig.rows {
            assert!(r.lossless_pct > 90.0, "{}: {}", r.model, r.lossless_pct);
            assert!((4.0..8.0).contains(&r.avg_bits), "{}", r.model);
        }
    }
}

spark_util::to_json_struct!(Fig4Row { model, lossless_pct, lossy_pct, avg_bits });
spark_util::to_json_struct!(Fig4 { rows });
