//! Experiment runner: regenerates every table and figure of the SPARK
//! paper's evaluation.
//!
//! ```text
//! experiments all              # everything (slow: trains proxies)
//! experiments fig2 table4 ...  # selected experiments
//! experiments --quick all      # reduced training, for smoke tests
//! experiments --json DIR all   # additionally dump JSON per experiment
//! experiments --smoke          # CI smoke: the cheap experiments, quick mode
//! ```

use std::fs;
use std::path::PathBuf;

use spark_bench::context::ExperimentContext;
use spark_util::ToJson;
use spark_bench::{
    entropy, fig11, fig12, fig13, fig14, fig15, fig2, fig4, formats, scaling, table2, table3,
    table4, table5, table6, table7, timing,
};

struct Options {
    quick: bool,
    json_dir: Option<PathBuf>,
    selected: Vec<String>,
}

const EXPERIMENTS: [&str; 17] = [
    "table2", "fig2", "fig4", "table3", "table4", "table5", "fig11", "fig12", "table6",
    "table7", "fig13", "fig14", "fig15", "formats", "timing", "scaling", "entropy",
];

fn parse_args() -> Options {
    let mut quick = false;
    let mut json_dir = None;
    let mut selected = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => {
                println!("available experiments (or 'all'):");
                for e in EXPERIMENTS {
                    println!("  {e}");
                }
                std::process::exit(0);
            }
            "--quick" => quick = true,
            "--smoke" => {
                // The CI smoke path: the experiments cheap enough to run on
                // every commit (mirrors tests/experiments_smoke.rs). `timing`
                // joined once the flat-buffer engine made Lockstep cheap.
                quick = true;
                selected.extend(["table2", "table6", "table7", "timing"].map(String::from));
            }
            "--json" => {
                json_dir = args.next().map(PathBuf::from);
            }
            other => selected.push(other.to_string()),
        }
    }
    if selected.is_empty() {
        selected.push("all".to_string());
    }
    Options {
        quick,
        json_dir,
        selected,
    }
}

fn wants(opts: &Options, name: &str) -> bool {
    opts.selected.iter().any(|s| s == name || s == "all")
}

fn emit(opts: &Options, name: &str, rendered: String, json: spark_util::Value) {
    println!("{rendered}");
    if let Some(dir) = &opts.json_dir {
        fs::create_dir_all(dir).expect("create json dir");
        let path = dir.join(format!("{name}.json"));
        fs::write(&path, json.to_string_pretty()).expect("write json");
        eprintln!("[wrote {}]", path.display());
    }
}

fn main() {
    let opts = parse_args();
    let needs_ctx = ["fig2", "fig4", "fig11", "fig12", "fig14", "fig15", "formats", "timing", "scaling", "entropy", "table3", "table4", "table5"]
        .iter()
        .any(|n| wants(&opts, n));
    let ctx = if needs_ctx {
        eprintln!("[building experiment context: sampling calibrated tensors]");
        Some(ExperimentContext::new())
    } else {
        None
    };
    let ctx_ref = ctx.as_ref();

    if wants(&opts, "table2") {
        let t = table2::run();
        emit(&opts, "table2", table2::render(&t), t.to_json());
    }
    if wants(&opts, "fig2") {
        let f = fig2::run(ctx_ref.expect("ctx"), opts.quick);
        emit(&opts, "fig2", fig2::render(&f), f.to_json());
    }
    if wants(&opts, "fig4") {
        let f = fig4::run(ctx_ref.expect("ctx"));
        emit(&opts, "fig4", fig4::render(&f), f.to_json());
    }
    if wants(&opts, "table3") {
        let t = table3::run(ctx_ref.expect("ctx"), opts.quick);
        emit(&opts, "table3", table3::render(&t), t.to_json());
    }
    if wants(&opts, "table4") {
        let t = table4::run(ctx_ref.expect("ctx"), opts.quick);
        emit(&opts, "table4", table4::render(&t), t.to_json());
    }
    if wants(&opts, "table5") {
        let t = table5::run(ctx_ref.expect("ctx"), opts.quick);
        emit(&opts, "table5", table5::render(&t), t.to_json());
    }
    if wants(&opts, "fig11") {
        let f = fig11::run(ctx_ref.expect("ctx"));
        emit(&opts, "fig11", fig11::render(&f), f.to_json());
    }
    if wants(&opts, "fig12") {
        let f = fig12::run(ctx_ref.expect("ctx"));
        emit(&opts, "fig12", fig12::render(&f), f.to_json());
    }
    if wants(&opts, "table6") {
        let t = table6::run();
        emit(&opts, "table6", table6::render(&t), t.to_json());
    }
    if wants(&opts, "table7") {
        let t = table7::run();
        emit(&opts, "table7", table7::render(&t), t.to_json());
    }
    if wants(&opts, "fig13") {
        let f = fig13::run(opts.quick);
        emit(&opts, "fig13", fig13::render(&f), f.to_json());
    }
    if wants(&opts, "fig14") {
        let f = fig14::run(ctx_ref.expect("ctx"));
        emit(&opts, "fig14", fig14::render(&f), f.to_json());
    }
    if wants(&opts, "fig15") {
        let f = fig15::run(ctx_ref.expect("ctx"));
        emit(&opts, "fig15", fig15::render(&f), f.to_json());
    }
    if wants(&opts, "formats") {
        let f = formats::run(ctx_ref.expect("ctx"));
        emit(&opts, "formats", formats::render(&f), f.to_json());
    }
    if wants(&opts, "timing") {
        let t = timing::run(ctx_ref.expect("ctx"));
        emit(&opts, "timing", timing::render(&t), t.to_json());
    }
    if wants(&opts, "scaling") {
        let s = scaling::run(ctx_ref.expect("ctx"));
        emit(&opts, "scaling", scaling::render(&s), s.to_json());
    }
    if wants(&opts, "entropy") {
        let e = entropy::run(ctx_ref.expect("ctx"));
        emit(&opts, "entropy", entropy::render(&e), e.to_json());
    }
}
