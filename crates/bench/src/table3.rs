//! Table III — FP32 vs SPARK accuracy for the five evaluated models,
//! measured end to end on the trained proxies.

use spark_quant::SparkCodec;

use crate::accuracy::{ProxyFamily, TrainedProxy};
use crate::context::ExperimentContext;

/// One model row.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Paper model the proxy stands in for.
    pub model: String,
    /// Proxy FP32 test accuracy (%).
    pub fp32_acc: f64,
    /// Proxy accuracy after SPARK weight compression (%).
    pub spark_acc: f64,
    /// Average storage bits per weight under SPARK.
    pub avg_bits: f64,
}

/// The regenerated table.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// Rows in paper order (VGG16, ResNet18, ResNet50, ViT, BERT).
    pub rows: Vec<Table3Row>,
}

/// Trains one proxy per model (distinct seeds stand in for distinct
/// networks) and measures the SPARK accuracy delta. The reported bit-width
/// is the codec measured on the model's calibrated weight distribution
/// (trained-proxy weights are near-Gaussian without the long tails real
/// checkpoints show, so their own bit-width is not representative).
pub fn run(ctx: &ExperimentContext, quick: bool) -> Table3 {
    let models = ["VGG16", "ResNet18", "ResNet50", "ViT", "BERT"];
    let codec = SparkCodec::default();
    let rows = models
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let family = ProxyFamily::of_model(name);
            let mut proxy = TrainedProxy::train_for(family, 300 + i as u64, quick);
            let (acc, _) = proxy.accuracy_with(&codec);
            let model_bits = ctx
                .model(name)
                .map(|m| m.precision.spark_bits_w)
                .unwrap_or(8.0);
            Table3Row {
                model: name.to_string(),
                fp32_acc: proxy.fp32_acc * 100.0,
                spark_acc: acc * 100.0,
                avg_bits: model_bits,
            }
        })
        .collect();
    Table3 { rows }
}

/// Renders the table as text.
pub fn render(t: &Table3) -> String {
    let mut out = String::from(
        "Table III: FP32 vs SPARK accuracy (trained proxies)\n\
         model      FP32 acc %   SPARK acc %   delta    avg bits\n",
    );
    for r in &t.rows {
        out.push_str(&format!(
            "{:<10} {:>9.2}   {:>11.2}   {:>6.2}   {:>8.2}\n",
            r.model,
            r.fp32_acc,
            r.spark_acc,
            r.spark_acc - r.fp32_acc,
            r.avg_bits
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spark_accuracy_near_fp32() {
        let ctx = ExperimentContext::new();
        let t = run(&ctx, true);
        assert_eq!(t.rows.len(), 5);
        for r in &t.rows {
            // Paper: ~0.1-0.7 point deltas on ImageNet/SST-2; the tiny
            // proxies are noisier, so allow a few points.
            assert!(
                (r.fp32_acc - r.spark_acc).abs() < 8.0,
                "{}: {} vs {}",
                r.model,
                r.fp32_acc,
                r.spark_acc
            );
            assert!(r.fp32_acc > 30.0, "{} undertrained: {}", r.model, r.fp32_acc);
            assert!(r.avg_bits < 8.0);
        }
    }
}

spark_util::to_json_struct!(Table3Row { model, fp32_acc, spark_acc, avg_bits });
spark_util::to_json_struct!(Table3 { rows });
