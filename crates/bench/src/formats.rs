//! Extension experiment (beyond the paper): the generalized SPARK format
//! sweep.
//!
//! Sweeps `(base, short)` instances of the SPARK family over the calibrated
//! model tensors and reports bits/fidelity, showing where the paper's 8/4
//! choice sits on the frontier and demonstrating the format-selection rule
//! documented in `spark-quant::general_spark`.

use spark_quant::{Codec, GeneralSparkCodec};

use crate::context::ExperimentContext;

/// One format's measurement on one model.
#[derive(Debug, Clone)]
pub struct FormatPoint {
    /// Format name (e.g. "SPARK-8/4").
    pub format: String,
    /// Average storage bits.
    pub avg_bits: f64,
    /// Reconstruction SQNR in dB.
    pub sqnr_db: f64,
    /// Short-code fraction.
    pub short_fraction: f64,
}

/// The sweep for one model.
#[derive(Debug, Clone)]
pub struct FormatsRow {
    /// Model name.
    pub model: String,
    /// Points across formats.
    pub points: Vec<FormatPoint>,
}

/// The full sweep.
#[derive(Debug, Clone)]
pub struct Formats {
    /// One row per representative model.
    pub rows: Vec<FormatsRow>,
}

/// Formats swept, `(base, short)` pairs.
pub const FORMATS: [(u8, u8); 6] = [(6, 3), (8, 4), (8, 5), (10, 5), (12, 6), (16, 8)];

/// Runs the sweep on one CNN and one attention profile.
pub fn run(ctx: &ExperimentContext) -> Formats {
    let rows = ["ResNet50", "BERT"]
        .iter()
        .filter_map(|name| ctx.model(name))
        .map(|m| {
            let points = FORMATS
                .iter()
                .map(|&(base, short)| {
                    let codec = GeneralSparkCodec::new(base, short)
                        .expect("formats in the sweep are valid");
                    let r = codec.compress(&m.weights).expect("finite samples");
                    FormatPoint {
                        format: codec.name(),
                        avg_bits: r.avg_bits,
                        sqnr_db: r.sqnr_db(&m.weights),
                        short_fraction: r.low_precision_fraction,
                    }
                })
                .collect();
            FormatsRow {
                model: m.profile.name.clone(),
                points,
            }
        })
        .collect();
    Formats { rows }
}

/// Renders the sweep as text.
pub fn render(f: &Formats) -> String {
    let mut out = String::from(
        "Format sweep (extension): generalized SPARK family on calibrated tensors\n",
    );
    for row in &f.rows {
        out.push_str(&format!(
            "{}\n  format        bits    SQNR(dB)  short%\n",
            row.model
        ));
        for p in &row.points {
            out.push_str(&format!(
                "  {:<12} {:>5.2}  {:>9.1}  {:>6.1}\n",
                p.format,
                p.avg_bits,
                p.sqnr_db,
                p.short_fraction * 100.0
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_format_on_the_frontier() {
        let ctx = ExperimentContext::new();
        let f = run(&ctx);
        assert_eq!(f.rows.len(), 2);
        for row in &f.rows {
            assert_eq!(row.points.len(), FORMATS.len());
            let p84 = row
                .points
                .iter()
                .find(|p| p.format == "SPARK-8/4")
                .expect("8/4 swept");
            // The paper's point: high short fraction at useful fidelity.
            assert!(p84.short_fraction > 0.4, "{}", row.model);
            assert!(p84.sqnr_db > 15.0, "{}", row.model);
            // The 16/8 point stores more bits on INT8-scale data (the
            // format-selection rule).
            let p168 = row.points.iter().find(|p| p.format == "SPARK-16/8").unwrap();
            assert!(p168.avg_bits > p84.avg_bits);
        }
    }
}

spark_util::to_json_struct!(FormatPoint { format, avg_bits, sqnr_db, short_fraction });
spark_util::to_json_struct!(FormatsRow { model, points });
spark_util::to_json_struct!(Formats { rows });
