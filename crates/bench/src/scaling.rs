//! Extension experiments: multi-page scaling and batch-size sensitivity.
//!
//! The paper says the SPARK architecture "can be extended to a larger
//! number of PEs under the same area budget" (Section V-A); the page sweep
//! quantifies that, and the batch sweep shows how weight-traffic
//! amortization moves the compute/memory balance.

use spark_nn::{Gemm, ModelWorkload};
use spark_sim::{scaling_sweep, Accelerator, AcceleratorKind, PageReport};
use spark_util::par_map;

use crate::context::ExperimentContext;

/// The page-scaling sweep for one model.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Model name.
    pub model: String,
    /// One report per page count.
    pub reports: Vec<PageReport>,
}

/// One batch point.
#[derive(Debug, Clone)]
pub struct BatchPoint {
    /// Batch size.
    pub batch: usize,
    /// SPARK cycles per inference.
    pub cycles_per_inference: f64,
    /// Fraction of layers memory-bound at this batch.
    pub memory_bound_fraction: f64,
}

/// The combined extension experiment.
#[derive(Debug, Clone)]
pub struct Scaling {
    /// Page sweeps (BERT and ResNet50).
    pub pages: Vec<ScalingRow>,
    /// Batch sweep on BERT.
    pub batch: Vec<BatchPoint>,
}

/// Replicates a workload's activation stream for a batch of inputs.
fn with_batch(workload: &ModelWorkload, batch: usize) -> ModelWorkload {
    ModelWorkload {
        name: format!("{}xB{batch}", workload.name),
        gemms: workload
            .gemms
            .iter()
            .map(|g| Gemm::new(&g.label, g.m * batch, g.k, g.n).times(g.repeats))
            .collect(),
    }
}

/// Runs both sweeps.
pub fn run(ctx: &ExperimentContext) -> Scaling {
    let spark = Accelerator::new(AcceleratorKind::Spark);
    let page_models: Vec<_> = ["BERT", "ResNet50"]
        .iter()
        .filter_map(|n| ctx.model(n))
        .collect();
    let pages = par_map(&page_models, |m| {
        let workload = m.workload.as_ref().expect("workload exists");
        ScalingRow {
            model: m.profile.name.clone(),
            reports: scaling_sweep(
                &spark,
                workload,
                &m.precision,
                &ctx.sim,
                &[1, 2, 4, 8, 16],
            ),
        }
    });

    let bert = ctx.model("BERT").expect("BERT in context");
    let base = bert.workload.as_ref().expect("workload exists");
    // Batch effects only show when weight traffic matters: evaluate at a
    // bandwidth-constrained configuration (an edge-device DRAM interface),
    // where batch-1 inference is memory-bound and batching amortizes the
    // weight stream back to compute-bound.
    let constrained = spark_sim::SimConfig {
        dram_bytes_per_cycle: 8.0,
        ..ctx.sim
    };
    let batch = [1usize, 2, 4, 8, 16]
        .iter()
        .map(|&b| {
            let w = with_batch(base, b);
            let r = spark.run(&w, &bert.precision, &constrained);
            let memory_bound = r
                .layers
                .iter()
                .filter(|l| l.memory_cycles > l.compute_cycles)
                .count() as f64
                / r.layers.len().max(1) as f64;
            BatchPoint {
                batch: b,
                cycles_per_inference: r.total_cycles / b as f64,
                memory_bound_fraction: memory_bound,
            }
        })
        .collect();
    Scaling { pages, batch }
}

/// Renders the experiment as text.
pub fn render(s: &Scaling) -> String {
    let mut out = String::from("Scaling (extension): PE pages and batch size\n");
    for row in &s.pages {
        out.push_str(&format!("{} page sweep:\n", row.model));
        let base = row.reports[0].total_cycles;
        for r in &row.reports {
            out.push_str(&format!(
                "  {:>2} pages: {:>10.3e} cycles  speedup {:>5.2}x  util {:>5.2}  mem-bound {:>4.0}%\n",
                r.pages,
                r.total_cycles,
                base / r.total_cycles,
                r.utilization,
                r.memory_bound_fraction * 100.0
            ));
        }
    }
    out.push_str("BERT batch sweep (SPARK, bandwidth-constrained 1.6 GB/s):\n");
    for p in &s.batch {
        out.push_str(&format!(
            "  batch {:>2}: {:>10.3e} cycles/inference  mem-bound {:>4.0}%\n",
            p.batch, p.cycles_per_inference, p.memory_bound_fraction * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_scale_and_batch_amortizes() {
        let ctx = ExperimentContext::new();
        let s = run(&ctx);
        assert_eq!(s.pages.len(), 2);
        for row in &s.pages {
            assert_eq!(row.reports.len(), 5);
            let speedup_16 = row.reports[0].total_cycles / row.reports[4].total_cycles;
            assert!(speedup_16 > 2.0, "{}: {speedup_16}", row.model);
        }
        // Batching never increases per-inference cycles, and at the
        // constrained bandwidth it strictly amortizes the weight stream.
        for pair in s.batch.windows(2) {
            assert!(
                pair[1].cycles_per_inference <= pair[0].cycles_per_inference * 1.01,
                "{pair:?}"
            );
        }
        let first = &s.batch[0];
        let last = s.batch.last().unwrap();
        assert!(
            last.cycles_per_inference < first.cycles_per_inference * 0.9,
            "batching should amortize: {} -> {}",
            first.cycles_per_inference,
            last.cycles_per_inference
        );
        assert!(last.memory_bound_fraction <= first.memory_bound_fraction);
    }
}

spark_util::to_json_struct!(ScalingRow { model, reports });
spark_util::to_json_struct!(BatchPoint { batch, cycles_per_inference, memory_bound_fraction });
spark_util::to_json_struct!(Scaling { pages, batch });
