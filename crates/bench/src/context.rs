//! Shared experiment context: per-model precision profiles, workloads, and
//! sampled tensors.

use spark_data::ModelProfile;
use spark_nn::ModelWorkload;
use spark_sim::{PrecisionProfile, SimConfig};
use spark_tensor::Tensor;

/// How many values are sampled per tensor when measuring code statistics.
pub const SAMPLE_ELEMS: usize = 40_000;

/// Everything an experiment needs about one model.
#[derive(Debug, Clone)]
pub struct ModelContext {
    /// The calibrated distribution profile.
    pub profile: ModelProfile,
    /// The GEMM workload (when the model has one defined).
    pub workload: Option<ModelWorkload>,
    /// Sampled weight tensor.
    pub weights: Tensor,
    /// Sampled activation tensor.
    pub activations: Tensor,
    /// SPARK precision statistics measured on the samples.
    pub precision: PrecisionProfile,
}

/// Shared context across all experiments.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// Per-model contexts, Fig 2 order.
    pub models: Vec<ModelContext>,
    /// Simulator configuration (paper defaults).
    pub sim: SimConfig,
}

impl ExperimentContext {
    /// Builds the context for every model in the paper, sampling tensors
    /// deterministically.
    pub fn new() -> Self {
        let models = ModelProfile::all()
            .into_iter()
            .enumerate()
            .map(|(i, profile)| ModelContext::build(profile, 1000 + i as u64))
            .collect();
        Self {
            models,
            sim: SimConfig::default(),
        }
    }

    /// Looks up a model context by name.
    pub fn model(&self, name: &str) -> Option<&ModelContext> {
        self.models.iter().find(|m| m.profile.name == name)
    }

    /// The models of the Fig 11/12/15 performance suite, in paper order.
    pub fn performance_models(&self) -> Vec<&ModelContext> {
        ["VGG16", "ResNet18", "ResNet50", "ViT", "BERT", "GPT-2"]
            .iter()
            .filter_map(|n| self.model(n))
            .collect()
    }
}

impl Default for ExperimentContext {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelContext {
    /// Builds one model's context with a deterministic seed.
    pub fn build(profile: ModelProfile, seed: u64) -> Self {
        let weights = profile.sample_tensor(SAMPLE_ELEMS, seed);
        let activations = profile.sample_activations(SAMPLE_ELEMS, seed.wrapping_add(1));
        let precision = PrecisionProfile::from_tensors(&weights, &activations)
            .expect("sampled tensors are finite");
        let workload = ModelWorkload::by_name(&profile.name);
        Self {
            profile,
            workload,
            weights,
            activations,
            precision,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_builds_all_models() {
        let ctx = ExperimentContext::new();
        assert_eq!(ctx.models.len(), 8);
        assert!(ctx.model("BERT").is_some());
        assert!(ctx.model("Nonexistent").is_none());
        assert_eq!(ctx.performance_models().len(), 6);
    }

    #[test]
    fn precision_profiles_measured_not_defaulted() {
        let ctx = ExperimentContext::new();
        let bert = ctx.model("BERT").unwrap();
        let resnet = ctx.model("ResNet50").unwrap();
        assert!(bert.precision.short_frac_w > resnet.precision.short_frac_w);
        assert!(bert.precision.spark_bits_w < resnet.precision.spark_bits_w);
    }

    #[test]
    fn workloads_attached_where_defined() {
        let ctx = ExperimentContext::new();
        for m in &ctx.models {
            assert!(m.workload.is_some(), "{} missing workload", m.profile.name);
        }
    }
}
