//! Table II — the SPARK value table, regenerated from the implementation
//! and checked exhaustively.

use spark_codec::table::{classify, TABLE_II};
use spark_codec::{decode_value, encode_value};

/// One regenerated row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Bit pattern of the original value.
    pub bits: String,
    /// SPARK code pattern.
    pub spark_code: String,
    /// Decimal coverage.
    pub values: String,
    /// Whether the row is lossy.
    pub lossy: bool,
    /// How many of the 256 byte values land in this row.
    pub population: usize,
    /// Largest |error| observed in this row.
    pub max_error: u8,
}

/// The regenerated table.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Five rows in paper order.
    pub rows: Vec<Table2Row>,
}

/// Regenerates Table II by classifying every byte.
pub fn run() -> Table2 {
    let mut rows: Vec<Table2Row> = TABLE_II
        .iter()
        .map(|r| Table2Row {
            bits: r.bits.to_string(),
            spark_code: r.spark_code.to_string(),
            values: r.values.to_string(),
            lossy: r.lossy,
            population: 0,
            max_error: 0,
        })
        .collect();
    for v in 0u16..=255 {
        let v = v as u8;
        let row = classify(v);
        rows[row].population += 1;
        let err = (i16::from(decode_value(v)) - i16::from(v)).unsigned_abs() as u8;
        rows[row].max_error = rows[row].max_error.max(err);
        // Internal consistency: code kind matches row.
        let _ = encode_value(v);
    }
    Table2 { rows }
}

/// Renders the table as text.
pub fn render(t: &Table2) -> String {
    let mut out = String::from(
        "Table II: SPARK value table\n\
         bits        SPARK code   values                                      lossy  pop  max_err\n",
    );
    for r in &t.rows {
        out.push_str(&format!(
            "{:<11} {:<12} {:<43} {:<6} {:>4} {:>7}\n",
            r.bits,
            r.spark_code,
            r.values,
            if r.lossy { "yes" } else { "no" },
            r.population,
            r.max_error
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn populations_cover_all_bytes() {
        let t = run();
        assert_eq!(t.rows.iter().map(|r| r.population).sum::<usize>(), 256);
        assert_eq!(t.rows[0].population, 8); // [0,7]
    }

    #[test]
    fn lossy_rows_have_bounded_error_and_lossless_rows_none() {
        let t = run();
        for r in &t.rows {
            if r.lossy {
                assert!(r.max_error > 0 && r.max_error <= 16, "{}", r.bits);
            } else {
                assert_eq!(r.max_error, 0, "{}", r.bits);
            }
        }
    }

    #[test]
    fn render_contains_all_patterns() {
        let text = render(&run());
        for r in TABLE_II {
            assert!(text.contains(r.bits));
        }
    }
}

spark_util::to_json_struct!(Table2Row { bits, spark_code, values, lossy, population, max_error });
spark_util::to_json_struct!(Table2 { rows });
