//! Fig 11 — normalized total execution cycles across accelerators for the
//! six performance-suite networks (normalized to SPARK = 1).

use spark_util::par_map;
use spark_sim::{Accelerator, AcceleratorKind};

use crate::context::ExperimentContext;

/// One model's latency bars.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Model name.
    pub model: String,
    /// `(accelerator, normalized latency)` pairs, SPARK = 1.0.
    pub normalized: Vec<(String, f64)>,
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Fig11 {
    /// One row per performance-suite model.
    pub rows: Vec<Fig11Row>,
    /// Geometric-mean speedup of SPARK over each design.
    pub mean_speedup: Vec<(String, f64)>,
}

/// Runs the latency sweep.
pub fn run(ctx: &ExperimentContext) -> Fig11 {
    let designs = Accelerator::all();
    let models = ctx.performance_models();
    let rows: Vec<Fig11Row> = par_map(&models, |m| {
            let workload = m.workload.as_ref().expect("performance models have workloads");
            let reports: Vec<(String, f64)> = designs
                .iter()
                .map(|d| {
                    let r = d.run(workload, &m.precision, &ctx.sim);
                    (d.kind.name().to_string(), r.total_cycles)
                })
                .collect();
            let spark = reports
                .iter()
                .find(|(n, _)| n == "SPARK")
                .expect("SPARK among designs")
                .1;
            Fig11Row {
                model: m.profile.name.clone(),
                normalized: reports
                    .into_iter()
                    .map(|(n, c)| (n, c / spark))
                    .collect(),
            }
        });
    // Geomean speedup of SPARK over each design across models.
    let mut mean_speedup = Vec::new();
    for kind in AcceleratorKind::ALL {
        let name = kind.name().to_string();
        let logsum: f64 = rows
            .iter()
            .map(|r| {
                r.normalized
                    .iter()
                    .find(|(n, _)| *n == name)
                    .map(|(_, v)| v.ln())
                    .unwrap_or(0.0)
            })
            .sum();
        mean_speedup.push((name, (logsum / rows.len() as f64).exp()));
    }
    Fig11 { rows, mean_speedup }
}

/// Renders the figure as text.
pub fn render(fig: &Fig11) -> String {
    let mut out = String::from("Fig 11: normalized latency (SPARK = 1.0)\n");
    if let Some(first) = fig.rows.first() {
        out.push_str(&format!("{:<10}", "model"));
        for (n, _) in &first.normalized {
            out.push_str(&format!("{n:>11}"));
        }
        out.push('\n');
    }
    for r in &fig.rows {
        out.push_str(&format!("{:<10}", r.model));
        for (_, v) in &r.normalized {
            out.push_str(&format!("{v:>11.2}"));
        }
        out.push('\n');
    }
    out.push_str("geomean   ");
    for (_, v) in &fig.mean_speedup {
        out.push_str(&format!("{v:>11.2}"));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spark_wins_and_ordering_matches_paper() {
        let ctx = ExperimentContext::new();
        let fig = run(&ctx);
        assert_eq!(fig.rows.len(), 6);
        let geo = |name: &str| {
            fig.mean_speedup
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        // SPARK is the fastest design everywhere.
        for r in &fig.rows {
            for (n, v) in &r.normalized {
                assert!(*v >= 0.99, "{} beat SPARK on {}: {v}", n, r.model);
            }
        }
        // Paper's headline ratios (shape): ANT closest (~1.1x), then
        // OliVe, with OLAccel ~3.8x and AdaFloat ~4.7x, Eyeriss far worst.
        assert!((1.02..1.6).contains(&geo("ANT")), "ANT {}", geo("ANT"));
        assert!(geo("OliVe") > geo("ANT"));
        assert!((2.0..7.0).contains(&geo("OLAccel")), "OLAccel {}", geo("OLAccel"));
        assert!((2.0..7.0).contains(&geo("AdaFloat")), "AdaFloat {}", geo("AdaFloat"));
        assert!(geo("Eyeriss") > geo("AdaFloat"));
    }
}

spark_util::to_json_struct!(Fig11Row { model, normalized });
spark_util::to_json_struct!(Fig11 { rows, mean_speedup });
