//! Table VI — area breakdown of the SPARK core.

use spark_sim::area::{spark_breakdown, AreaBreakdown};

/// The regenerated table (the area crate's breakdown plus shares).
#[derive(Debug, Clone)]
pub struct Table6 {
    /// The breakdown.
    pub breakdown: AreaBreakdown,
}

/// Regenerates Table VI.
pub fn run() -> Table6 {
    Table6 {
        breakdown: spark_breakdown(),
    }
}

/// Renders the table as text.
pub fn render(t: &Table6) -> String {
    let total = t.breakdown.total_mm2();
    let mut out = String::from(
        "Table VI: SPARK area breakdown (28 nm)\n\
         component       count     area (mm^2)   share (%)\n",
    );
    for c in &t.breakdown.components {
        out.push_str(&format!(
            "{:<15} {:>5}   {:>12.6}   {:>8.3}\n",
            c.component,
            c.count,
            c.area_mm2,
            c.area_mm2 / total * 100.0
        ));
    }
    out.push_str(&format!("total                   {total:>12.6}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_overhead_below_one_percent() {
        let t = run();
        let codec_share = t.breakdown.share("4-bit decoder") + t.breakdown.share("encoder");
        assert!(codec_share < 0.01, "codec share {codec_share}");
        assert!(render(&t).contains("4-bit PE"));
    }
}

spark_util::to_json_struct!(Table6 { breakdown });
