//! # spark-bench — the experiment harness
//!
//! One module per table/figure of the paper's evaluation. Every experiment
//! is a library function returning a serializable result, so the
//! `experiments` binary, the integration tests and the Criterion benches
//! all share the same code paths.
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`fig2`] | Fig 2 — short-code percentage and INT8 accuracy loss per model |
//! | [`table2`] | Table II — the SPARK value table |
//! | [`fig4`] | Fig 4 — lossless/lossy fractions after SPARK encoding |
//! | [`table3`] | Table III — FP32 vs SPARK accuracy (trained proxies) |
//! | [`table4`] | Table IV — accuracy loss and bit-width vs ANT/BiScaled |
//! | [`table5`] | Table V — BERT accuracy loss vs Q8BERT/OS/OliVe/ANT |
//! | [`fig11`] | Fig 11 — normalized latency across accelerators |
//! | [`fig12`] | Fig 12 — normalized energy (DRAM/buffer/core) |
//! | [`table6`] | Table VI — SPARK area breakdown |
//! | [`table7`] | Table VII — iso-area core configurations |
//! | [`fig13`] | Fig 13 — compensation mechanism / finetuning ablation |
//! | [`fig14`] | Fig 14 — energy efficiency vs model size |
//! | [`fig15`] | Fig 15 — DBB sparsity + SPARK |
//! | [`formats`] | extension: generalized SPARK format sweep |
//! | [`timing`] | extension: decoupled vs lockstep array timing |
//! | [`scaling`] | extension: PE-page and batch-size scaling |
//! | [`entropy`] | extension: SPARK rate vs the entropy bound |

pub mod accuracy;
pub mod context;
pub mod entropy;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig2;
pub mod fig4;
pub mod formats;
pub mod scaling;
pub mod table2;
pub mod timing;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;

pub use context::ExperimentContext;
