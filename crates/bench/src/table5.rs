//! Table V — accuracy loss and bit-width for the attention model (BERT /
//! SST-2 in the paper): Q8BERT, Outlier Suppression, OliVe, ANT, SPARK.

use spark_quant::{
    AntCodec, Codec, OliveCodec, OutlierSuppressionCodec, SparkCodec, UniformQuantizer,
};

use crate::accuracy::{ProxyFamily, TrainedProxy};
use crate::context::ExperimentContext;

/// One codec column.
#[derive(Debug, Clone)]
pub struct Table5Col {
    /// Scheme name.
    pub scheme: String,
    /// Accuracy loss (%).
    pub acc_loss: f64,
    /// Average bit-width.
    pub avg_bits: f64,
}

/// The regenerated table.
#[derive(Debug, Clone)]
pub struct Table5 {
    /// Columns in paper order.
    pub cols: Vec<Table5Col>,
}

/// Measures the five schemes on the trained attention proxy.
pub fn run(ctx: &ExperimentContext, quick: bool) -> Table5 {
    let mut proxy = TrainedProxy::train_for(ProxyFamily::Attention, 500, quick);
    let spark_bits = ctx
        .model("BERT")
        .map(|m| m.precision.spark_bits_w)
        .unwrap_or(4.31);
    let schemes: Vec<(&str, Box<dyn Codec>, Option<f64>)> = vec![
        (
            "Q8BERT",
            Box::new(UniformQuantizer::symmetric(8)),
            Some(8.0),
        ),
        (
            "OS",
            Box::new(OutlierSuppressionCodec::new(6).expect("6 bits")),
            Some(6.0),
        ),
        ("OliVe", Box::new(OliveCodec::new()), Some(4.0)),
        ("ANT", Box::new(AntCodec::new(4).expect("4 bits")), Some(4.0)),
        ("SPARK", Box::new(SparkCodec::default()), Some(spark_bits)),
    ];
    let mut cols: Vec<Table5Col> = schemes
        .into_iter()
        .map(|(name, codec, bits)| {
            let (acc, measured_bits) = proxy.accuracy_with(codec.as_ref());
            Table5Col {
                scheme: name.to_string(),
                acc_loss: (proxy.fp32_acc - acc) * 100.0,
                avg_bits: bits.unwrap_or(measured_bits),
            }
        })
        .collect();
    // Extension beyond the table: SPARK on *both* weights and activations
    // (the full accelerator datapath; the paper quantizes both but reports
    // the weight-side bit-width).
    let wa_acc = proxy.accuracy_with_activations(&SparkCodec::default());
    cols.push(Table5Col {
        scheme: "SPARK-W+A".to_string(),
        acc_loss: (proxy.fp32_acc - wa_acc) * 100.0,
        avg_bits: spark_bits,
    });
    Table5 { cols }
}

/// Renders the table as text.
pub fn render(t: &Table5) -> String {
    let mut out = String::from("Table V: accuracy loss (%) and bit-width, attention model\n");
    out.push_str("scheme  ");
    for c in &t.cols {
        out.push_str(&format!("{:>10}", c.scheme));
    }
    out.push_str("\nloss %  ");
    for c in &t.cols {
        out.push_str(&format!("{:>10.2}", c.acc_loss));
    }
    out.push_str("\nbits    ");
    for c in &t.cols {
        out.push_str(&format!("{:>10.2}", c.avg_bits));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spark_low_bits_and_low_loss() {
        let ctx = ExperimentContext::new();
        let t = run(&ctx, true);
        assert_eq!(t.cols.len(), 6);
        let col = |name: &str| t.cols.iter().find(|c| c.scheme == name).unwrap();
        // SPARK uses fewer bits than Q8BERT and OS.
        assert!(col("SPARK").avg_bits < col("Q8BERT").avg_bits);
        assert!(col("SPARK").avg_bits < col("OS").avg_bits);
        // SPARK's loss beats ANT-4 (the paper: 0.34 vs 2.87) and stays small.
        assert!(
            col("SPARK").acc_loss <= col("ANT").acc_loss + 2.0,
            "SPARK {} vs ANT {}",
            col("SPARK").acc_loss,
            col("ANT").acc_loss
        );
        assert!(col("SPARK").acc_loss < 8.0);
        // The full W+A datapath stays usable too.
        assert!(col("SPARK-W+A").acc_loss < 15.0);
    }
}

spark_util::to_json_struct!(Table5Col { scheme, acc_loss, avg_bits });
spark_util::to_json_struct!(Table5 { cols });
