//! Fig 2 — the quantized-network characterization: per model, the fraction
//! of INT8 values that fit the `[0, 7]` short-code range, and the INT8
//! quantization accuracy loss.

use spark_quant::{MagnitudeQuantizer, UniformQuantizer};
use spark_tensor::stats;

use crate::accuracy::{ProxyFamily, TrainedProxy};
use crate::context::ExperimentContext;

/// One bar group of Fig 2.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// Model name.
    pub model: String,
    /// Percentage of INT8 codes in `[0, 7]` (the blue bars).
    pub short_pct: f64,
    /// Percentage in `[8, 255]` (the orange bars).
    pub long_pct: f64,
    /// INT8 accuracy loss in percentage points (the folded line), measured
    /// on the family's trained proxy.
    pub int8_acc_loss_pct: f64,
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// One row per model, paper order.
    pub rows: Vec<Fig2Row>,
}

/// Runs the characterization. `quick` shrinks the proxy training for tests.
pub fn run(ctx: &ExperimentContext, quick: bool) -> Fig2 {
    // One trained proxy per family; the INT8 loss line is family-level.
    let mut cnn = TrainedProxy::train_for(ProxyFamily::Cnn, 101, quick);
    let mut att = TrainedProxy::train_for(ProxyFamily::Attention, 102, quick);
    let int8 = UniformQuantizer::symmetric(8);
    let cnn_loss = cnn.loss_pct(&int8);
    let att_loss = att.loss_pct(&int8);

    let quantizer = MagnitudeQuantizer::new(8).expect("8 bits supported");
    let rows = ctx
        .models
        .iter()
        .map(|m| {
            let codes = quantizer
                .quantize(&m.weights)
                .expect("sampled weights are finite");
            let short = stats::fraction_in_range(&codes.codes, 0, 7);
            let loss = match ProxyFamily::of_model(&m.profile.name) {
                ProxyFamily::Cnn => cnn_loss,
                ProxyFamily::Attention => att_loss,
            };
            Fig2Row {
                model: m.profile.name.clone(),
                short_pct: short * 100.0,
                long_pct: (1.0 - short) * 100.0,
                int8_acc_loss_pct: loss,
            }
        })
        .collect();
    Fig2 { rows }
}

/// Renders the figure as a text table.
pub fn render(fig: &Fig2) -> String {
    let mut out = String::from(
        "Fig 2: short-code percentage and INT8 accuracy loss\n\
         model       [0,7] %   [8,255] %   INT8 acc loss %\n",
    );
    for r in &fig.rows {
        out.push_str(&format!(
            "{:<11} {:>7.1}   {:>9.1}   {:>15.2}\n",
            r.model, r.short_pct, r.long_pct, r.int8_acc_loss_pct
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper() {
        let ctx = ExperimentContext::new();
        let fig = run(&ctx, true);
        assert_eq!(fig.rows.len(), 8);
        for r in &fig.rows {
            // Paper: "more than 40% of the values can be converted to short
            // codes" across all evaluated models.
            assert!(r.short_pct > 30.0, "{}: {}", r.model, r.short_pct);
            assert!((r.short_pct + r.long_pct - 100.0).abs() < 1e-9);
            // INT8 loss is small ("generally no more than 2%"); proxies are
            // noisier than ImageNet, allow slack.
            assert!(r.int8_acc_loss_pct.abs() < 6.0, "{}: {}", r.model, r.int8_acc_loss_pct);
        }
        // Attention models have more short codes than CNNs.
        let short = |name: &str| {
            fig.rows
                .iter()
                .find(|r| r.model == name)
                .map(|r| r.short_pct)
                .unwrap()
        };
        assert!(short("BERT") > short("ResNet50"));
        let rendered = render(&fig);
        assert!(rendered.contains("BERT"));
    }
}

spark_util::to_json_struct!(Fig2Row { model, short_pct, long_pct, int8_acc_loss_pct });
spark_util::to_json_struct!(Fig2 { rows });
