//! Blockstore benchmark: cold-loading an encoded weight matrix from
//! `spark-store` versus re-encoding it from dense `f32` at startup.
//!
//! The number that matters is gated in CI (`BENCH_store.json`):
//!
//! - `cold_load_speedup` — time to rebuild the encoded matrix from its
//!   dense values (`EncodedMatrix::encode`, the only alternative when no
//!   store exists) over time to open the store directory and `pread` the
//!   panels back (`BlockStore::open` + `get_matrix`, the full cold path
//!   including WAL recovery). Must stay ≥ 3×: persistence has to beat
//!   re-encoding decisively or the subsystem isn't paying rent.
//!
//! Bit-identity is asserted before any timing: the cold-loaded matrix
//! must decode to exactly the same values as the one that was stored, so
//! the two timed paths produce interchangeable artifacts.
//! `SPARK_BENCH_JSON=<path>` writes the JSON document;
//! `SPARK_BENCH_QUICK=1` shrinks iteration counts.

use spark_store::BlockStore;
use spark_tensor::{EncodedMatrix, Tensor};
use spark_util::bench::{bench, black_box};
use spark_util::{Rng, Value};

fn main() {
    let (k, n) = (512, 512);
    let mut rng = Rng::seed_from_u64(0x570_4E5E);
    let mut uniform = || (rng.gen_f64() as f32) * 2.0 - 1.0;
    let dense = Tensor::from_fn(&[k, n], |_| uniform());
    let encoded = EncodedMatrix::encode(&dense).expect("finite operand encodes");

    let dir = std::env::temp_dir().join(format!("spark-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let store = BlockStore::open(&dir).expect("fresh temp dir opens");
        store.put_matrix("bench/w", &encoded).expect("clean matrix stores");
    }

    // The stored artifact must be interchangeable with the re-encoded
    // one: identical reconstructed values, bit for bit.
    let loaded = {
        let store = BlockStore::open(&dir).expect("stored dir reopens");
        store.get_matrix("bench/w").expect("stored matrix loads")
    };
    let bits = |t: &Tensor| t.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    let want = encoded.decode().expect("clean container decodes");
    let got = loaded.decode().expect("loaded container decodes");
    assert_eq!(bits(&want), bits(&got), "cold-loaded matrix != stored matrix");

    let resident = encoded.resident_bytes();
    let dense_bytes = encoded.dense_bytes();
    println!(
        "store/artifact_bytes {resident} encoded / {dense_bytes} dense ({:.2}x reduction)",
        dense_bytes as f64 / resident as f64
    );

    // The no-store cold path: quantize + encode the dense weights again.
    let r_encode = bench(&format!("store/encode_from_dense/{k}x{n}"), || {
        black_box(EncodedMatrix::encode(&dense).expect("finite operand encodes"));
    });
    // The store cold path, end to end: directory scan, WAL recovery,
    // aligned pread, zero-copy rehydration.
    let r_cold = bench(&format!("store/cold_load/{k}x{n}"), || {
        let store = BlockStore::open(&dir).expect("stored dir reopens");
        black_box(store.get_matrix("bench/w").expect("stored matrix loads"));
    });
    // Warm read: the handle already open, pure pread + rehydrate.
    let warm_store = BlockStore::open(&dir).expect("stored dir reopens");
    let r_warm = bench(&format!("store/warm_get/{k}x{n}"), || {
        black_box(warm_store.get_matrix("bench/w").expect("stored matrix loads"));
    });
    // Ingest: WAL append + group-committed fdatasync.
    let mut put_i = 0u64;
    let r_put = bench(&format!("store/put_matrix/{k}x{n}"), || {
        put_i += 1;
        let name = format!("bench/put-{put_i}");
        black_box(warm_store.put_matrix(&name, &encoded).expect("clean matrix stores"));
    });
    drop(warm_store);

    let cold_load_speedup = r_encode.mean_ns / r_cold.mean_ns;
    let warm_read_mb_s = resident as f64 / (r_warm.mean_ns * 1e-9) / 1e6;
    let put_mb_s = resident as f64 / (r_put.mean_ns * 1e-9) / 1e6;
    println!("store/cold_load_speedup         {cold_load_speedup:>11.2}x");
    println!("store/warm_read_mb_s            {warm_read_mb_s:>11.1}");
    println!("store/put_mb_s                  {put_mb_s:>11.1}");

    if let Some(path) = std::env::var_os("SPARK_BENCH_JSON") {
        let doc = Value::object([
            ("bench", Value::Str("store/cold_load".into())),
            ("shape", Value::Str(format!("{k}x{n}"))),
            ("artifact_bytes", Value::Num(resident as f64)),
            ("dense_bytes", Value::Num(dense_bytes as f64)),
            ("encode_mean_ns", Value::Num(r_encode.mean_ns)),
            ("cold_load_mean_ns", Value::Num(r_cold.mean_ns)),
            ("warm_get_mean_ns", Value::Num(r_warm.mean_ns)),
            ("put_mean_ns", Value::Num(r_put.mean_ns)),
            ("cold_load_speedup", Value::Num(cold_load_speedup)),
            ("warm_read_mb_s", Value::Num(warm_read_mb_s)),
            ("put_mb_s", Value::Num(put_mb_s)),
        ]);
        std::fs::write(&path, doc.to_string_pretty() + "\n").expect("write SPARK_BENCH_JSON");
        println!("wrote {}", path.to_string_lossy());
    }

    let _ = std::fs::remove_dir_all(&dir);
}
