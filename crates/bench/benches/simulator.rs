//! Criterion benchmarks for the accelerator simulator: the cycle-accurate
//! systolic tile (Fig 9(c) protocol) and the workload-level model behind
//! Figs 11/12.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use spark_nn::ModelWorkload;
use spark_sim::perf::spark_cycles_per_wave;
use spark_sim::{Accelerator, AcceleratorKind, PrecisionProfile, SimConfig};

fn bench_cycle_accurate_tile(c: &mut Criterion) {
    let profile = PrecisionProfile::from_short_fractions(0.8, 0.8);
    let mut group = c.benchmark_group("sim/cycle_accurate_tile");
    for waves in [64usize, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(waves), &waves, |b, &waves| {
            b.iter(|| black_box(spark_cycles_per_wave(64, 64, &profile, waves, 5)))
        });
    }
    group.finish();
}

fn bench_workload_simulation(c: &mut Criterion) {
    let workload = ModelWorkload::resnet50();
    let profile = PrecisionProfile::from_short_fractions(0.65, 0.6);
    let cfg = SimConfig::default();
    let mut group = c.benchmark_group("sim/resnet50_workload");
    for kind in [
        AcceleratorKind::Spark,
        AcceleratorKind::Ant,
        AcceleratorKind::Eyeriss,
    ] {
        let acc = Accelerator::new(kind);
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &acc, |b, acc| {
            b.iter(|| black_box(acc.run(&workload, &profile, &cfg)))
        });
    }
    group.finish();
}

fn bench_functional_array(c: &mut Criterion) {
    use spark_sim::pe::SignMag;
    use spark_sim::FunctionalArray;
    let (m, k, n) = (16usize, 64usize, 32usize);
    let a: Vec<SignMag> = (0..m * k)
        .map(|i| SignMag::from_i16(((i * 37) % 511) as i16 - 255))
        .collect();
    let w: Vec<SignMag> = (0..k * n)
        .map(|i| SignMag::from_i16(((i * 91) % 511) as i16 - 255))
        .collect();
    let array = FunctionalArray::new(64, 64);
    let mut group = c.benchmark_group("sim/functional_array");
    group.bench_function("16x64x32_gemm", |b| {
        b.iter(|| black_box(array.gemm(&a, &w, m, k, n)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cycle_accurate_tile,
    bench_workload_simulation,
    bench_functional_array
);
criterion_main!(benches);
