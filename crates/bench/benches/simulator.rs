//! Micro-benchmarks for the accelerator simulator: the cycle-accurate
//! systolic tile (Fig 9(c) protocol) and the workload-level model behind
//! Figs 11/12, on the in-tree `spark_util::bench` timer.

use spark_nn::ModelWorkload;
use spark_sim::perf::spark_cycles_per_wave;
use spark_sim::{Accelerator, AcceleratorKind, PrecisionProfile, SimConfig};
use spark_util::bench::{bench, black_box};

fn bench_cycle_accurate_tile() {
    let profile = PrecisionProfile::from_short_fractions(0.8, 0.8);
    for waves in [64usize, 256] {
        bench(&format!("sim/cycle_accurate_tile/{waves}"), || {
            black_box(spark_cycles_per_wave(64, 64, &profile, waves, 5));
        });
    }
}

fn bench_workload_simulation() {
    let workload = ModelWorkload::resnet50();
    let profile = PrecisionProfile::from_short_fractions(0.65, 0.6);
    let cfg = SimConfig::default();
    for kind in [
        AcceleratorKind::Spark,
        AcceleratorKind::Ant,
        AcceleratorKind::Eyeriss,
    ] {
        let acc = Accelerator::new(kind);
        bench(&format!("sim/resnet50_workload/{}", kind.name()), || {
            black_box(acc.run(&workload, &profile, &cfg));
        });
    }
}

fn bench_functional_array() {
    use spark_sim::pe::SignMag;
    use spark_sim::FunctionalArray;
    let (m, k, n) = (16usize, 64usize, 32usize);
    let a: Vec<SignMag> = (0..m * k)
        .map(|i| SignMag::from_i16(((i * 37) % 511) as i16 - 255))
        .collect();
    let w: Vec<SignMag> = (0..k * n)
        .map(|i| SignMag::from_i16(((i * 91) % 511) as i16 - 255))
        .collect();
    let array = FunctionalArray::new(64, 64);
    bench("sim/functional_array/16x64x32_gemm", || {
        black_box(array.gemm(&a, &w, m, k, n));
    });
}

fn main() {
    bench_cycle_accurate_tile();
    bench_workload_simulation();
    bench_functional_array();
}
