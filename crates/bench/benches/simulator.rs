//! Micro-benchmarks for the accelerator simulator: the cycle-accurate
//! systolic tile (Fig 9(c) protocol) and the workload-level model behind
//! Figs 11/12, on the in-tree `spark_util::bench` timer.
//!
//! The engine-variant section times the flat-buffer `run_tile` kernel
//! against the retained nested-`Vec` `run_tile_reference` on the same
//! mixed-precision tile and reports simulated cycles per wall-second for
//! each. Set `SPARK_BENCH_JSON=<path>` to also write the numbers as JSON
//! (CI writes `BENCH_sim.json` and fails if no throughput number appears).

use spark_nn::ModelWorkload;
use spark_sim::perf::spark_cycles_per_wave;
use spark_sim::{
    Accelerator, AcceleratorKind, OperandKind, PrecisionProfile, SimConfig, SystolicSim,
};
use spark_util::bench::{bench, black_box};
use spark_util::{Rng, Value};

fn bench_cycle_accurate_tile() {
    let profile = PrecisionProfile::from_short_fractions(0.8, 0.8);
    for waves in [64usize, 256] {
        bench(&format!("sim/cycle_accurate_tile/{waves}"), || {
            black_box(spark_cycles_per_wave(64, 64, &profile, waves, 5));
        });
    }
}

/// A fixed mixed-precision 64x64 tile with `waves` activation rows, drawn
/// from the workspace RNG so both engine variants time identical work.
fn mixed_tile(waves: usize) -> (Vec<Vec<OperandKind>>, Vec<Vec<OperandKind>>) {
    let mut rng = Rng::seed_from_u64(0x5AA5_C0DE);
    let mut kind = |p: f64| {
        if rng.gen_f64() < p {
            OperandKind::Int4
        } else {
            OperandKind::Int8
        }
    };
    let weights = (0..64)
        .map(|_| (0..64).map(|_| kind(0.8)).collect())
        .collect();
    let activations = (0..waves)
        .map(|_| (0..64).map(|_| kind(0.8)).collect())
        .collect();
    (weights, activations)
}

/// Times both systolic engines on the same tile and returns
/// `(name, cycles_per_sec, mean_ns)` per variant.
fn bench_engine_variants() -> Vec<(String, f64, f64)> {
    let sim = SystolicSim::new(64, 64);
    let (weights, activations) = mixed_tile(256);
    let cycles = sim.run_tile(&weights, &activations).cycles as f64;
    assert_eq!(
        cycles,
        sim.run_tile_reference(&weights, &activations).cycles as f64,
        "engines must agree on the benchmarked tile"
    );

    let mut rows = Vec::new();
    let flat = bench("sim/engine/flat_64x64x256", || {
        black_box(sim.run_tile(&weights, &activations));
    });
    rows.push((
        "flat".to_string(),
        cycles / (flat.mean_ns * 1e-9),
        flat.mean_ns,
    ));
    let reference = bench("sim/engine/reference_64x64x256", || {
        black_box(sim.run_tile_reference(&weights, &activations));
    });
    rows.push((
        "reference".to_string(),
        cycles / (reference.mean_ns * 1e-9),
        reference.mean_ns,
    ));
    println!(
        "sim/engine/speedup_flat_over_reference       {:>11.2}x",
        reference.mean_ns / flat.mean_ns
    );
    rows
}

/// Writes the engine-variant results to `$SPARK_BENCH_JSON` if set.
fn write_bench_json(variants: &[(String, f64, f64)]) {
    let Some(path) = std::env::var_os("SPARK_BENCH_JSON") else {
        return;
    };
    let per_engine: Vec<Value> = variants
        .iter()
        .map(|(name, cps, mean_ns)| {
            Value::object([
                ("engine", Value::Str(name.clone())),
                ("cycles_per_sec", Value::Num(*cps)),
                ("mean_ns_per_tile", Value::Num(*mean_ns)),
            ])
        })
        .collect();
    let speedup = match variants {
        [(_, _, flat_ns), (_, _, ref_ns), ..] => ref_ns / flat_ns,
        _ => f64::NAN,
    };
    let doc = Value::object([
        ("bench", Value::Str("simulator/engine_variants".into())),
        ("tile", Value::Str("64x64, 256 waves, p_short=0.8".into())),
        ("engines", Value::Array(per_engine)),
        ("speedup_flat_over_reference", Value::Num(speedup)),
    ]);
    std::fs::write(&path, doc.to_string_pretty() + "\n").expect("write SPARK_BENCH_JSON");
    println!("wrote {}", path.to_string_lossy());
}

fn bench_workload_simulation() {
    let workload = ModelWorkload::resnet50();
    let profile = PrecisionProfile::from_short_fractions(0.65, 0.6);
    let cfg = SimConfig::default();
    for kind in [
        AcceleratorKind::Spark,
        AcceleratorKind::Ant,
        AcceleratorKind::Eyeriss,
    ] {
        let acc = Accelerator::new(kind);
        bench(&format!("sim/resnet50_workload/{}", kind.name()), || {
            black_box(acc.run(&workload, &profile, &cfg));
        });
    }
}

fn bench_functional_array() {
    use spark_sim::pe::SignMag;
    use spark_sim::FunctionalArray;
    let (m, k, n) = (16usize, 64usize, 32usize);
    let a: Vec<SignMag> = (0..m * k)
        .map(|i| SignMag::from_i16(((i * 37) % 511) as i16 - 255))
        .collect();
    let w: Vec<SignMag> = (0..k * n)
        .map(|i| SignMag::from_i16(((i * 91) % 511) as i16 - 255))
        .collect();
    let array = FunctionalArray::new(64, 64);
    bench("sim/functional_array/16x64x32_gemm", || {
        black_box(array.gemm(&a, &w, m, k, n));
    });
}

fn main() {
    let variants = bench_engine_variants();
    write_bench_json(&variants);
    bench_cycle_accurate_tile();
    bench_workload_simulation();
    bench_functional_array();
}
