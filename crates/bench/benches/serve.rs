//! Serving-path benchmark: batched versus one-request-per-call encode,
//! plus an end-to-end HTTP measurement against a live loopback server.
//!
//! The headline number is `speedup_batched_over_unbatched`: how much
//! faster `encode_batch` (the table-driven single-pass plan the server's
//! micro-batcher calls) processes a set of request payloads than calling
//! `encode_tensor` once per payload, exactly as an unbatched server
//! would. The server section reports real requests/sec and client-side
//! p50/p99 latency over concurrent loopback connections. Set
//! `SPARK_BENCH_JSON=<path>` to write `BENCH_serve.json`; CI greps the
//! numeric fields and gates on the speedup.

use std::time::{Duration, Instant};

use spark_codec::{encode_batch, encode_tensor};
use spark_serve::http::client_request;
use spark_serve::{ServeConfig, Server};
use spark_util::bench::{bench, black_box};
use spark_util::{Histogram, Value};

/// Distinct request payloads, shaped like the loopback tests' traffic.
fn payloads(count: usize, values_each: usize) -> Vec<Vec<f32>> {
    (0..count)
        .map(|seed| {
            (0..values_each)
                .map(|i| (((i * 31 + seed * 97) % 211) as f32 - 105.0) / 50.0)
                .collect()
        })
        .collect()
}

/// The encode stage both paths share everything up to: INT8 code words.
fn quantized(payloads: &[Vec<f32>]) -> Vec<Vec<u8>> {
    payloads
        .iter()
        .map(|values| {
            spark_serve::api::quantize_codes(values)
                .expect("bench payloads are finite and non-empty")
                .codes
        })
        .collect()
}

struct EncodeNumbers {
    requests: usize,
    values_per_request: usize,
    unbatched_rps: f64,
    batched_rps: f64,
    speedup: f64,
}

fn bench_encode_paths() -> EncodeNumbers {
    let requests = 32;
    let values_per_request = 4096;
    let codes = quantized(&payloads(requests, values_per_request));
    let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();

    // Both paths must produce identical streams before timing them.
    let batched = encode_batch(&refs);
    for (one, many) in codes.iter().zip(&batched) {
        let single = encode_tensor(one);
        assert_eq!(single.stream.as_bytes(), many.stream.as_bytes());
        assert_eq!(single.stats, many.stats);
    }

    let unbatched = bench("serve/encode_unbatched_32x4096", || {
        for one in &refs {
            black_box(encode_tensor(one));
        }
    });
    let batched = bench("serve/encode_batched_32x4096", || {
        black_box(encode_batch(&refs));
    });
    let unbatched_rps = requests as f64 / (unbatched.mean_ns * 1e-9);
    let batched_rps = requests as f64 / (batched.mean_ns * 1e-9);
    let speedup = batched_rps / unbatched_rps;
    println!("serve/speedup_batched_over_unbatched          {speedup:>10.2}x");
    EncodeNumbers { requests, values_per_request, unbatched_rps, batched_rps, speedup }
}

struct ServerNumbers {
    clients: usize,
    requests: usize,
    requests_per_sec: f64,
    latency: Histogram,
}

/// End-to-end: concurrent loopback clients against a live server, the
/// whole stack in the path (TCP, parsing, quantization, micro-batching).
fn bench_server_round_trips() -> ServerNumbers {
    let quick = std::env::var_os("SPARK_BENCH_QUICK").is_some();
    let clients = 8;
    let per_client = if quick { 8 } else { 40 };

    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        queue_depth: 64,
        batch_window: Duration::from_millis(1),
        max_batch: 16,
        ..ServeConfig::default()
    })
    .expect("bind loopback");
    let addr = server.addr().to_string();

    let latency = std::sync::Arc::new(Histogram::new());
    let started = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            let latency = std::sync::Arc::clone(&latency);
            std::thread::spawn(move || {
                for r in 0..per_client {
                    let values = payloads(1, 1024 + c * 64 + r)[0].clone();
                    let body: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
                    let t0 = Instant::now();
                    let (status, _) = client_request(
                        &addr,
                        "POST",
                        "/v1/encode",
                        "application/octet-stream",
                        &body,
                    )
                    .expect("loopback request");
                    assert_eq!(status, 200);
                    latency.record((t0.elapsed().as_micros() as u64).max(1));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    let elapsed = started.elapsed().as_secs_f64();
    server.shutdown();
    server.join();

    let total = clients * per_client;
    let rps = total as f64 / elapsed;
    println!(
        "serve/http_encode: {total} requests, {clients} clients: {rps:.0} req/s, p50 {} us, p99 {} us",
        latency.quantile(0.5),
        latency.quantile(0.99)
    );
    let latency = std::sync::Arc::try_unwrap(latency).ok().expect("threads joined");
    ServerNumbers { clients, requests: total, requests_per_sec: rps, latency }
}

fn write_bench_json(encode: &EncodeNumbers, server: &ServerNumbers) {
    let Some(path) = std::env::var_os("SPARK_BENCH_JSON") else {
        return;
    };
    let doc = Value::object([
        ("bench", Value::Str("serve/batched_encode".into())),
        ("requests", Value::Num(encode.requests as f64)),
        ("values_per_request", Value::Num(encode.values_per_request as f64)),
        ("unbatched_encode_rps", Value::Num(encode.unbatched_rps)),
        ("batched_encode_rps", Value::Num(encode.batched_rps)),
        ("speedup_batched_over_unbatched", Value::Num(encode.speedup)),
        (
            "server",
            Value::object([
                ("clients", Value::Num(server.clients as f64)),
                ("requests", Value::Num(server.requests as f64)),
                ("requests_per_sec", Value::Num(server.requests_per_sec)),
                ("latency_us", server.latency.to_json()),
            ]),
        ),
    ]);
    std::fs::write(&path, doc.to_string_pretty() + "\n").expect("write SPARK_BENCH_JSON");
    println!("wrote {}", path.to_string_lossy());
}

fn main() {
    let encode = bench_encode_paths();
    let server = bench_server_round_trips();
    write_bench_json(&encode, &server);
}
