//! Open-loop saturation comparison: single-pool versus sharded serving
//! under a noisy-neighbor flood.
//!
//! Both configurations run on the same host with the same endpoints and
//! the same offered workload: a blended mix (encode/decode/analyze/
//! infer, 128 tenants, mild Zipf skew, small tensors) plus a dedicated
//! flooder tenant firing `/v1/simulate` — the cycle-accurate simulator,
//! ~20x the CPU of a mix request — at half the mix rate. The sharded
//! configuration additionally consistent-hashes tenants onto independent
//! shard queues and enforces *cost-weighted* per-tenant token buckets
//! (a simulate call charges 16 units, a mix call 1-2), so the flooder's
//! bucket drains on work demanded, not request count.
//!
//! The ladder raises the offered mix rate and asks, per rung: do the
//! *innocent* (cold) tenants still get `DELIVERY_FLOOR` of their
//! requests served with p99 at most `P99_BOUND_US`, measured open-loop
//! from intended send time? Saturation is the highest rung that holds.
//!
//! The single pool has no defense: every admitted simulate occupies a
//! shared worker, the shared queue fills with 5 ms jobs, and cold
//! requests either crawl (p99 blows the bound) or bounce (503s eat the
//! delivery floor). The sharded server sheds the flood at the router
//! with cheap 429s and confines the admitted remainder to one shard, so
//! cold tenants keep their tail until the mix itself outgrows the host.
//! CI gates `saturation_ratio` (sharded over single-pool) at >= 2x.
//!
//! Set `SPARK_BENCH_JSON=<path>` to write the JSON report;
//! `SPARK_BENCH_QUICK=1` shortens the rungs for CI smoke.

use std::time::Duration;

use spark_serve::load::{run_load, LoadConfig, LoadReport};
use spark_serve::{ServeConfig, Server};
use spark_util::Value;

/// Bounded-tail criterion for cold-tenant success latency, measured from
/// the intended send time (coordinated-omission-free), in microseconds.
const P99_BOUND_US: u64 = 150_000;

/// Minimum fraction of cold-tenant requests that must return 200 for a
/// rung to count as sustained.
const DELIVERY_FLOOR: f64 = 0.85;

/// Per-tenant quota for the sharded configuration, in cost units/s.
/// The flooder demands `flood_rps * 16` units and trips it at every
/// rung; the busiest cold tenant (~5% of the mix, 1-2 units a request)
/// stays well under it at every ladder rate.
const QUOTA_UNITS_PER_S: f64 = 240.0;

fn workload(offered_rps: f64, duration: Duration) -> LoadConfig {
    LoadConfig {
        seed: 0x10AD_5EED,
        offered_rps,
        duration,
        // Many small tenants on a flat Zipf: the busiest cold tenant is
        // ~5% of the mix, so an honest quota clears every one of them.
        tenants: 128,
        tenant_skew: 0.5,
        payloads: 12,
        payload_skew: 1.0,
        // The flood: simulate calls at half the mix rate from tenant 0.
        flood_rps: offered_rps * 0.5,
        injectors: 12,
        ..LoadConfig::default()
    }
}

/// The pre-sharding shape: one shard, one shared queue, no admission
/// control. Total handler workers match the sharded config.
fn single_pool() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        shards: 1,
        shard_workers: 4,
        queue_depth: 64,
        shard_queue: 32,
        quota_rps: 0.0,
        batch_window: Duration::from_millis(1),
        max_batch: 16,
        ..ServeConfig::default()
    }
}

/// Same worker budget, split across four consistent-hash shards, with
/// per-tenant quotas shedding floods at the router.
fn sharded() -> ServeConfig {
    ServeConfig {
        shards: 4,
        shard_workers: 2,
        shard_queue: 16,
        quota_rps: QUOTA_UNITS_PER_S,
        quota_burst: QUOTA_UNITS_PER_S / 2.0,
        ..single_pool()
    }
}

struct Rung {
    offered_rps: f64,
    cold_delivery: f64,
    cold_p99_us: u64,
    ok_rps: f64,
    shed_429: u64,
    shed_503: u64,
    sustained: bool,
    report: LoadReport,
}

fn healthy(report: &LoadReport) -> (f64, bool) {
    let delivery = if report.cold_offered == 0 {
        0.0
    } else {
        report.cold_ok as f64 / report.cold_offered as f64
    };
    (delivery, delivery >= DELIVERY_FLOOR && report.cold_p99_us <= P99_BOUND_US)
}

fn run_ladder(label: &str, config: &ServeConfig, rates: &[f64], duration: Duration) -> Vec<Rung> {
    let mut rungs = Vec::new();
    for &offered_rps in rates {
        // Fresh server per rung: clean queues, clean metrics.
        let server = Server::start(config.clone()).expect("bind loopback");
        let addr = server.addr().to_string();
        let report =
            run_load(&addr, &workload(offered_rps, duration)).expect("load run");
        server.shutdown();
        server.join();

        let (cold_delivery, sustained) = healthy(&report);
        println!(
            "load/{label} @ {offered_rps:>6.0} rps: cold_delivery {:.3}, cold_p99 {:>7} us, ok {:>6.0} rps, 429 {:>5}, 503 {:>5}  [{}]",
            cold_delivery,
            report.cold_p99_us,
            report.ok_rps,
            report.shed_429,
            report.shed_503,
            if sustained { "sustained" } else { "saturated" },
        );
        rungs.push(Rung {
            offered_rps,
            cold_delivery,
            cold_p99_us: report.cold_p99_us,
            ok_rps: report.ok_rps,
            shed_429: report.shed_429,
            shed_503: report.shed_503,
            sustained,
            report,
        });
    }
    rungs
}

/// Highest sustained rung, 0.0 if none.
fn saturation_rps(rungs: &[Rung]) -> f64 {
    rungs.iter().filter(|r| r.sustained).map(|r| r.offered_rps).fold(0.0, f64::max)
}

fn rungs_json(rungs: &[Rung]) -> Value {
    Value::Array(
        rungs
            .iter()
            .map(|r| {
                Value::object([
                    ("offered_rps", Value::Num(r.offered_rps)),
                    ("cold_delivery", Value::Num(r.cold_delivery)),
                    ("cold_p99_us", Value::Num(r.cold_p99_us as f64)),
                    ("ok_rps", Value::Num(r.ok_rps)),
                    ("shed_429", Value::Num(r.shed_429 as f64)),
                    ("shed_503", Value::Num(r.shed_503 as f64)),
                    ("sustained", Value::Bool(r.sustained)),
                ])
            })
            .collect(),
    )
}

fn write_bench_json(
    rates: &[f64],
    single: &[Rung],
    sharded_rungs: &[Rung],
    single_sat: f64,
    sharded_sat: f64,
    ratio: f64,
) {
    let Some(path) = std::env::var_os("SPARK_BENCH_JSON") else {
        return;
    };
    let digest = single
        .first()
        .map(|r| r.report.digest.clone())
        .unwrap_or_default();
    let doc = Value::object([
        ("bench", Value::Str("serve/load_saturation".into())),
        ("p99_bound_us", Value::Num(P99_BOUND_US as f64)),
        ("delivery_floor", Value::Num(DELIVERY_FLOOR)),
        ("quota_units_per_s", Value::Num(QUOTA_UNITS_PER_S)),
        (
            "ladder_rps",
            Value::Array(rates.iter().map(|&r| Value::Num(r)).collect()),
        ),
        ("schedule_digest_first_rung", Value::Str(digest)),
        ("single_pool", rungs_json(single)),
        ("sharded", rungs_json(sharded_rungs)),
        ("single_pool_saturation_rps", Value::Num(single_sat)),
        ("sharded_saturation_rps", Value::Num(sharded_sat)),
        ("saturation_ratio", Value::Num(ratio)),
    ]);
    std::fs::write(&path, doc.to_string_pretty() + "\n").expect("write SPARK_BENCH_JSON");
    println!("wrote {}", path.to_string_lossy());
}

fn main() {
    let quick = std::env::var_os("SPARK_BENCH_QUICK").is_some();
    let (rates, duration): (Vec<f64>, Duration) = if quick {
        (vec![150.0, 300.0, 600.0, 1200.0, 2400.0], Duration::from_millis(700))
    } else {
        (vec![150.0, 300.0, 600.0, 1200.0, 2400.0], Duration::from_millis(1500))
    };

    println!("load/ladder: single-pool (1x4 workers, no quota)");
    let single = run_ladder("single ", &single_pool(), &rates, duration);
    println!(
        "load/ladder: sharded (4x2 workers, cost-weighted quota {QUOTA_UNITS_PER_S} units/s/tenant)"
    );
    let sharded_rungs = run_ladder("sharded", &sharded(), &rates, duration);

    let single_sat = saturation_rps(&single);
    let sharded_sat = saturation_rps(&sharded_rungs);
    let ratio = if single_sat > 0.0 { sharded_sat / single_sat } else { f64::INFINITY };
    println!("load/single_pool_saturation_rps  {single_sat:>10.0}");
    println!("load/sharded_saturation_rps      {sharded_sat:>10.0}");
    println!("load/saturation_ratio            {ratio:>10.2}x");

    write_bench_json(&rates, &single, &sharded_rungs, single_sat, sharded_sat, ratio);
}
