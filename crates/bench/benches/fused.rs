//! Decode-fused GEMM benchmark: encoded weights streamed straight into
//! the B-panel packer versus decoding first and running the dense turbo
//! path.
//!
//! Two numbers matter and both are gated in CI (`BENCH_fused.json`):
//!
//! - `weight_bytes_ratio` — resident encoded bytes (containers + sign
//!   planes) over dense `f32` bytes. The whole point of keeping weights
//!   as nibble streams; must stay ≤ 0.55 (≥ 1.8× reduction).
//! - `fused_over_decode_then` — fused throughput relative to
//!   decode-then-dense-GEMM with the decode *inside* the timed loop (the
//!   honest comparison for weights that live encoded). Must stay ≥ 0.8×.
//!
//! Bit-identity is asserted before any timing: fused output must equal
//! decode-then-turbo and the scalar reference to the bit, so the numbers
//! compare equal computations. `SPARK_BENCH_JSON=<path>` writes the JSON
//! document; `SPARK_BENCH_QUICK=1` shrinks iteration counts.

use spark_tensor::{ops, EncodedMatrix, Tensor};
use spark_util::bench::{bench, black_box};
use spark_util::{Rng, Value};

fn operands(m: usize, k: usize, n: usize, seed: u64) -> (Tensor, Tensor) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut uniform = || (rng.gen_f64() as f32) * 2.0 - 1.0;
    let a = Tensor::from_fn(&[m, k], |_| uniform());
    let b = Tensor::from_fn(&[k, n], |_| uniform());
    (a, b)
}

fn gflops(m: usize, k: usize, n: usize, mean_ns: f64) -> f64 {
    2.0 * (m as f64) * (k as f64) * (n as f64) / mean_ns
}

fn main() {
    let (m, k, n) = (64, 512, 512);
    let (a, b) = operands(m, k, n, 0xF05E_D6E4);
    let encoded = EncodedMatrix::encode(&b).expect("finite operand encodes");

    // The encoded weights replace the dense matrix entirely: the fused
    // path computes on the *reconstructed* values, so the comparison
    // baseline is the dense GEMM over the decoded matrix, and outputs
    // must match it (and the scalar reference) to the bit.
    let reconstructed = encoded.decode().expect("clean container decodes");
    let fused = ops::matmul_encoded(&a, &encoded).expect("dims");
    let dense = ops::matmul(&a, &reconstructed).expect("dims");
    let reference = ops::matmul_reference(&a, &reconstructed).expect("dims");
    let bits = |t: &Tensor| t.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&fused), bits(&dense), "fused != decode-then-turbo");
    assert_eq!(bits(&fused), bits(&reference), "fused != reference");

    let weight_bytes_encoded = encoded.resident_bytes();
    let weight_bytes_f32 = encoded.dense_bytes();
    let ratio = weight_bytes_encoded as f64 / weight_bytes_f32 as f64;
    println!(
        "fused/resident_weight_bytes {weight_bytes_encoded} / {weight_bytes_f32} (ratio {ratio:.3}, {:.2}x reduction)",
        1.0 / ratio
    );

    let r_fused = bench(&format!("fused/encoded_gemm/{m}x{k}x{n}"), || {
        black_box(ops::matmul_encoded(&a, &encoded).expect("dims"));
    });
    // Decode-then-GEMM with the decode inside the loop: what serving
    // encoded weights through the dense engine would actually cost.
    let r_decode_then = bench(&format!("fused/decode_then_gemm/{m}x{k}x{n}"), || {
        let w = encoded.decode().expect("clean container decodes");
        black_box(ops::matmul(&a, &w).expect("dims"));
    });
    // The two components of decode-then, for attribution.
    let r_gemm_only = bench(&format!("fused/dense_gemm_only/{m}x{k}x{n}"), || {
        black_box(ops::matmul(&a, &reconstructed).expect("dims"));
    });
    let r_decode_only = bench(&format!("fused/decode_only/{k}x{n}"), || {
        black_box(encoded.decode().expect("clean container decodes"));
    });

    let fused_gflops = gflops(m, k, n, r_fused.mean_ns);
    let fused_over_decode_then = r_decode_then.mean_ns / r_fused.mean_ns;
    let fused_over_dense = r_gemm_only.mean_ns / r_fused.mean_ns;
    // Panel-decode overhead: fused time not explained by the dense GEMM
    // over the same panels, as a fraction of the dense time.
    let decode_overhead = (r_fused.mean_ns - r_gemm_only.mean_ns) / r_gemm_only.mean_ns;
    println!("fused/gflops                    {fused_gflops:>11.2}");
    println!("fused/over_decode_then          {fused_over_decode_then:>11.2}x");
    println!("fused/over_dense_gemm           {fused_over_dense:>11.2}x");
    println!("fused/panel_decode_overhead     {:>10.1}%", decode_overhead * 100.0);

    if let Some(path) = std::env::var_os("SPARK_BENCH_JSON") {
        let doc = Value::object([
            ("bench", Value::Str("gemm/decode_fused".into())),
            ("shape", Value::Str(format!("{m}x{k}x{n}"))),
            ("weight_bytes_encoded", Value::Num(weight_bytes_encoded as f64)),
            ("weight_bytes_f32", Value::Num(weight_bytes_f32 as f64)),
            ("weight_bytes_ratio", Value::Num(ratio)),
            ("weight_reduction", Value::Num(1.0 / ratio)),
            ("fused_gflops", Value::Num(fused_gflops)),
            ("fused_mean_ns", Value::Num(r_fused.mean_ns)),
            ("decode_then_mean_ns", Value::Num(r_decode_then.mean_ns)),
            ("dense_gemm_mean_ns", Value::Num(r_gemm_only.mean_ns)),
            ("decode_only_mean_ns", Value::Num(r_decode_only.mean_ns)),
            ("fused_over_decode_then", Value::Num(fused_over_decode_then)),
            ("fused_over_dense_gemm", Value::Num(fused_over_dense)),
            ("panel_decode_overhead", Value::Num(decode_overhead)),
        ]);
        std::fs::write(&path, doc.to_string_pretty() + "\n").expect("write SPARK_BENCH_JSON");
        println!("wrote {}", path.to_string_lossy());
    }
}
