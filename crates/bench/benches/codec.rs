//! Micro-benchmarks for the SPARK codec datapath: the encoder (Fig 10),
//! the streaming decoder (Fig 7), the bit-parallel bulk decoder per
//! dispatch variant, and whole-tensor stream packing, on the in-tree
//! `spark_util::bench` timer.
//!
//! The paper's Section V-A verifies the codec sustains ~50 GB/s at 200 MHz
//! in hardware; these benches measure the software model's throughput so
//! regressions in the bit-twiddling hot path are visible.
//!
//! `SPARK_BENCH_JSON=<path>` writes the decode engine comparison as JSON
//! (the `BENCH_codec.json` ci.sh gates on `speedup_bulk_over_fsm >= 3`);
//! `SPARK_BENCH_QUICK=1` shrinks iteration counts.

use spark_codec::{
    decode_bulk_with, decode_stream, decode_stream_reference, encode_tensor, encode_value,
    DecodeVariant, SparkDecoder, SparkEncoder,
};
use spark_util::bench::{bench_throughput, black_box};
use spark_util::Value;

fn test_tensor(n: usize) -> Vec<u8> {
    // ~65% short codes, like a CNN tensor.
    (0..n)
        .map(|i| {
            let x = (i * 2654435761) % 100;
            if x < 65 {
                (x % 8) as u8
            } else {
                (8 + (x * 7) % 248) as u8
            }
        })
        .collect()
}

fn bench_encode_value() {
    bench_throughput("codec/encode_value/all_bytes", 256, || {
        for v in 0u16..=255 {
            black_box(encode_value(v as u8));
        }
    });
}

fn bench_hw_encoder() {
    let values = test_tensor(4096);
    bench_throughput("codec/hw_encoder/4k_tensor", values.len() as u64, || {
        let mut enc = SparkEncoder::new();
        for &v in &values {
            black_box(enc.encode(v));
        }
    });
}

fn bench_stream_round_trip() {
    let values = test_tensor(65_536);
    let encoded = encode_tensor(&values);
    let elems = values.len() as u64;
    bench_throughput("codec/stream/encode_64k", elems, || {
        black_box(encode_tensor(&values));
    });
    bench_throughput("codec/stream/decode_64k", elems, || {
        black_box(decode_stream(&encoded.stream).expect("valid stream"));
    });
}

fn bench_stream_encode_presized() {
    // Whole-tensor encode throughput at a size where allocation policy
    // matters: the CodeStats pre-pass sizes the nibble stream exactly, so
    // this path never reallocates nor over-commits the 2x worst case.
    let values = test_tensor(1 << 20);
    bench_throughput("codec/stream/encode_1m_presized", values.len() as u64, || {
        black_box(encode_tensor(&values));
    });
}

fn bench_streaming_decoder() {
    let values = test_tensor(16_384);
    let encoded = encode_tensor(&values);
    let nibbles: Vec<u8> = encoded.stream.iter().collect();
    bench_throughput("codec/decoder_fsm/nibble_fsm", nibbles.len() as u64, || {
        let mut dec = SparkDecoder::new();
        let mut out = 0u64;
        for &n in &nibbles {
            if let Some(v) = dec.push_nibble(n).expect("valid") {
                out = out.wrapping_add(u64::from(v));
            }
        }
        black_box(out);
    });
}

fn bench_bulk_decode() {
    // Head-to-head on a 1M-value tensor: the nibble-at-a-time FSM reference
    // versus the bit-parallel bulk engine, once per runtime dispatch variant.
    // Bit-identity is asserted before timing so the speedup is never bought
    // with a wrong answer.
    let values = test_tensor(1 << 20);
    let encoded = encode_tensor(&values);
    let stream = &encoded.stream;
    let elems = values.len() as u64;

    let want = decode_stream_reference(stream).expect("reference decode");
    for variant in DecodeVariant::all() {
        let got = decode_bulk_with(variant, stream).expect("bulk decode");
        assert_eq!(got, want, "bulk {} diverged from the FSM", variant.name());
    }

    let fsm = bench_throughput("codec/decode/fsm_reference_1m", elems, || {
        black_box(decode_stream_reference(stream).expect("valid stream"));
    });

    let mut per_variant = Vec::new();
    for variant in DecodeVariant::all() {
        let r = bench_throughput(
            &format!("codec/decode/bulk_{}_1m", variant.name()),
            elems,
            || {
                black_box(decode_bulk_with(variant, stream).expect("valid stream"));
            },
        );
        per_variant.push((variant, r));
    }

    let detected = DecodeVariant::detect();
    let detected_result = per_variant
        .iter()
        .find(|(v, _)| *v == detected)
        .map(|(_, r)| r)
        .expect("detected variant is benched");
    let speedup = fsm.mean_ns / detected_result.mean_ns;
    println!(
        "  decode speedup: bulk/{} over FSM = {:.2}x",
        detected.name(),
        speedup
    );

    if let Some(path) = std::env::var_os("SPARK_BENCH_JSON") {
        let mut fields: Vec<(String, Value)> = vec![
            ("bench".into(), Value::Str("codec_decode".to_string())),
            ("elements".into(), Value::Num(elems as f64)),
            ("stream_nibbles".into(), Value::Num(stream.len() as f64)),
            ("fsm_mean_ns".into(), Value::Num(fsm.mean_ns)),
            (
                "detected_variant".into(),
                Value::Str(detected.name().to_string()),
            ),
            ("speedup_bulk_over_fsm".into(), Value::Num(speedup)),
        ];
        let mut names = Vec::new();
        for (v, r) in &per_variant {
            fields.push((format!("bulk_{}_mean_ns", v.name()), Value::Num(r.mean_ns)));
            names.push(v.name().to_string());
        }
        fields.push(("variants".into(), Value::Str(names.join(","))));
        let doc = Value::object(fields);
        std::fs::write(&path, doc.to_string_pretty() + "\n").expect("write SPARK_BENCH_JSON");
        println!("wrote {}", path.to_string_lossy());
    }
}

fn bench_general_formats() {
    use spark_codec::{decode_general, encode_general, SparkFormat};
    let values: Vec<u16> = (0..16_384u32)
        .map(|i| (i.wrapping_mul(2654435761) % 65536) as u16 >> 4)
        .collect();
    for (base, short) in [(8u8, 4u8), (12, 6), (16, 8)] {
        let fmt = SparkFormat::new(base, short).expect("valid format");
        let masked: Vec<u16> = values.iter().map(|&v| v & fmt.max_value()).collect();
        bench_throughput(
            &format!("codec/general_formats/round_trip_{base}_{short}"),
            values.len() as u64,
            || {
                let stream = encode_general(&fmt, &masked);
                black_box(decode_general(&fmt, &stream).expect("valid stream"));
            },
        );
    }
}

fn main() {
    bench_encode_value();
    bench_hw_encoder();
    bench_stream_round_trip();
    bench_stream_encode_presized();
    bench_streaming_decoder();
    bench_bulk_decode();
    bench_general_formats();
}
