//! Criterion benchmarks for the SPARK codec datapath: the encoder (Fig 10),
//! the streaming decoder (Fig 7), and whole-tensor stream packing.
//!
//! The paper's Section V-A verifies the codec sustains ~50 GB/s at 200 MHz
//! in hardware; these benches measure the software model's throughput so
//! regressions in the bit-twiddling hot path are visible.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use spark_codec::{decode_stream, encode_tensor, encode_value, SparkDecoder, SparkEncoder};

fn test_tensor(n: usize) -> Vec<u8> {
    // ~65% short codes, like a CNN tensor.
    (0..n)
        .map(|i| {
            let x = (i * 2654435761) % 100;
            if x < 65 {
                (x % 8) as u8
            } else {
                (8 + (x * 7) % 248) as u8
            }
        })
        .collect()
}

fn bench_encode_value(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec/encode_value");
    group.throughput(Throughput::Elements(256));
    group.bench_function("all_bytes", |b| {
        b.iter(|| {
            for v in 0u16..=255 {
                black_box(encode_value(v as u8));
            }
        })
    });
    group.finish();
}

fn bench_hw_encoder(c: &mut Criterion) {
    let values = test_tensor(4096);
    let mut group = c.benchmark_group("codec/hw_encoder");
    group.throughput(Throughput::Elements(values.len() as u64));
    group.bench_function("4k_tensor", |b| {
        b.iter(|| {
            let mut enc = SparkEncoder::new();
            for &v in &values {
                black_box(enc.encode(v));
            }
        })
    });
    group.finish();
}

fn bench_stream_round_trip(c: &mut Criterion) {
    let values = test_tensor(65_536);
    let encoded = encode_tensor(&values);
    let mut group = c.benchmark_group("codec/stream");
    group.throughput(Throughput::Elements(values.len() as u64));
    group.bench_function("encode_64k", |b| b.iter(|| black_box(encode_tensor(&values))));
    group.bench_function("decode_64k", |b| {
        b.iter(|| black_box(decode_stream(&encoded.stream).expect("valid stream")))
    });
    group.finish();
}

fn bench_streaming_decoder(c: &mut Criterion) {
    let values = test_tensor(16_384);
    let encoded = encode_tensor(&values);
    let nibbles: Vec<u8> = encoded.stream.iter().collect();
    let mut group = c.benchmark_group("codec/decoder_fsm");
    group.throughput(Throughput::Elements(nibbles.len() as u64));
    group.bench_function("nibble_fsm", |b| {
        b.iter(|| {
            let mut dec = SparkDecoder::new();
            let mut out = 0u64;
            for &n in &nibbles {
                if let Some(v) = dec.push_nibble(n).expect("valid") {
                    out = out.wrapping_add(u64::from(v));
                }
            }
            black_box(out)
        })
    });
    group.finish();
}

fn bench_general_formats(c: &mut Criterion) {
    use spark_codec::{decode_general, encode_general, SparkFormat};
    let values: Vec<u16> = (0..16_384u32)
        .map(|i| (i.wrapping_mul(2654435761) % 65536) as u16 >> 4)
        .collect();
    let mut group = c.benchmark_group("codec/general_formats");
    group.throughput(Throughput::Elements(values.len() as u64));
    for (base, short) in [(8u8, 4u8), (12, 6), (16, 8)] {
        let fmt = SparkFormat::new(base, short).expect("valid format");
        let masked: Vec<u16> = values.iter().map(|&v| v & fmt.max_value()).collect();
        group.bench_function(format!("round_trip_{base}_{short}"), |b| {
            b.iter(|| {
                let stream = encode_general(&fmt, &masked);
                black_box(decode_general(&fmt, &stream).expect("valid stream"))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_encode_value,
    bench_hw_encoder,
    bench_stream_round_trip,
    bench_streaming_decoder,
    bench_general_formats
);
criterion_main!(benches);
