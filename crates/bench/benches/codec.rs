//! Micro-benchmarks for the SPARK codec datapath: the encoder (Fig 10),
//! the streaming decoder (Fig 7), and whole-tensor stream packing, on the
//! in-tree `spark_util::bench` timer.
//!
//! The paper's Section V-A verifies the codec sustains ~50 GB/s at 200 MHz
//! in hardware; these benches measure the software model's throughput so
//! regressions in the bit-twiddling hot path are visible.

use spark_codec::{decode_stream, encode_tensor, encode_value, SparkDecoder, SparkEncoder};
use spark_util::bench::{bench_throughput, black_box};

fn test_tensor(n: usize) -> Vec<u8> {
    // ~65% short codes, like a CNN tensor.
    (0..n)
        .map(|i| {
            let x = (i * 2654435761) % 100;
            if x < 65 {
                (x % 8) as u8
            } else {
                (8 + (x * 7) % 248) as u8
            }
        })
        .collect()
}

fn bench_encode_value() {
    bench_throughput("codec/encode_value/all_bytes", 256, || {
        for v in 0u16..=255 {
            black_box(encode_value(v as u8));
        }
    });
}

fn bench_hw_encoder() {
    let values = test_tensor(4096);
    bench_throughput("codec/hw_encoder/4k_tensor", values.len() as u64, || {
        let mut enc = SparkEncoder::new();
        for &v in &values {
            black_box(enc.encode(v));
        }
    });
}

fn bench_stream_round_trip() {
    let values = test_tensor(65_536);
    let encoded = encode_tensor(&values);
    let elems = values.len() as u64;
    bench_throughput("codec/stream/encode_64k", elems, || {
        black_box(encode_tensor(&values));
    });
    bench_throughput("codec/stream/decode_64k", elems, || {
        black_box(decode_stream(&encoded.stream).expect("valid stream"));
    });
}

fn bench_stream_encode_presized() {
    // Whole-tensor encode throughput at a size where allocation policy
    // matters: the CodeStats pre-pass sizes the nibble stream exactly, so
    // this path never reallocates nor over-commits the 2x worst case.
    let values = test_tensor(1 << 20);
    bench_throughput("codec/stream/encode_1m_presized", values.len() as u64, || {
        black_box(encode_tensor(&values));
    });
}

fn bench_streaming_decoder() {
    let values = test_tensor(16_384);
    let encoded = encode_tensor(&values);
    let nibbles: Vec<u8> = encoded.stream.iter().collect();
    bench_throughput("codec/decoder_fsm/nibble_fsm", nibbles.len() as u64, || {
        let mut dec = SparkDecoder::new();
        let mut out = 0u64;
        for &n in &nibbles {
            if let Some(v) = dec.push_nibble(n).expect("valid") {
                out = out.wrapping_add(u64::from(v));
            }
        }
        black_box(out);
    });
}

fn bench_general_formats() {
    use spark_codec::{decode_general, encode_general, SparkFormat};
    let values: Vec<u16> = (0..16_384u32)
        .map(|i| (i.wrapping_mul(2654435761) % 65536) as u16 >> 4)
        .collect();
    for (base, short) in [(8u8, 4u8), (12, 6), (16, 8)] {
        let fmt = SparkFormat::new(base, short).expect("valid format");
        let masked: Vec<u16> = values.iter().map(|&v| v & fmt.max_value()).collect();
        bench_throughput(
            &format!("codec/general_formats/round_trip_{base}_{short}"),
            values.len() as u64,
            || {
                let stream = encode_general(&fmt, &masked);
                black_box(decode_general(&fmt, &stream).expect("valid stream"));
            },
        );
    }
}

fn main() {
    bench_encode_value();
    bench_hw_encoder();
    bench_stream_round_trip();
    bench_stream_encode_presized();
    bench_streaming_decoder();
    bench_general_formats();
}
