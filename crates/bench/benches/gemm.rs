//! Turbo GEMM backend benchmark: the blocked SIMD-dispatched kernels of
//! `spark_tensor::gemm` against the retained seed scalar `matmul`.
//!
//! The headline number is GFLOP/s (`2·m·n·k` flops per run) on a
//! 256x256x256 GEMM, per dispatch variant, plus the transpose-free
//! `matmul_nt`/`matmul_tn` paths, the fused bias+ReLU epilogue, and one
//! real model-shaped GEMM drawn from the workload tables. Set
//! `SPARK_BENCH_JSON=<path>` to also write the numbers as JSON (CI writes
//! `BENCH_gemm.json` and fails if no numeric `gflops` appears).

use spark_nn::ModelWorkload;
use spark_tensor::gemm::{gemm_with, Epilogue, GemmVariant, Layout};
use spark_tensor::{ops, Tensor};
use spark_util::bench::{bench, black_box};
use spark_util::{Rng, Value};

fn operands(m: usize, k: usize, n: usize, seed: u64) -> (Tensor, Tensor) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut uniform = || (rng.gen_f64() as f32) * 2.0 - 1.0;
    let a = Tensor::from_fn(&[m, k], |_| uniform());
    let b = Tensor::from_fn(&[k, n], |_| uniform());
    (a, b)
}

fn gflops(m: usize, k: usize, n: usize, mean_ns: f64) -> f64 {
    2.0 * (m as f64) * (k as f64) * (n as f64) / mean_ns
}

/// Times the reference kernel and every available dispatch variant on one
/// square GEMM; returns `(rows, reference_gflops, turbo_gflops)` where
/// `rows` is `(name, gflops, mean_ns)` and `turbo` is the auto-dispatched
/// `ops::matmul` path the accuracy experiments actually run.
fn bench_square(dim: usize) -> (Vec<(String, f64, f64)>, f64, f64) {
    let (m, k, n) = (dim, dim, dim);
    let (a, b) = operands(m, k, n, 0x5EED_6E44);
    let want = ops::matmul_reference(&a, &b).expect("dims");

    let mut rows = Vec::new();
    let reference = bench(&format!("gemm/reference/{dim}"), || {
        black_box(ops::matmul_reference(&a, &b).expect("dims"));
    });
    let ref_gflops = gflops(m, k, n, reference.mean_ns);
    rows.push(("reference".to_string(), ref_gflops, reference.mean_ns));

    for variant in GemmVariant::available() {
        let got = gemm_with(
            variant,
            Layout::Nn,
            a.as_slice(),
            b.as_slice(),
            m,
            k,
            n,
            Epilogue::None,
        );
        assert_eq!(got, want.as_slice(), "{} must match reference", variant.name());
        let r = bench(&format!("gemm/{}/{dim}", variant.name()), || {
            black_box(gemm_with(
                variant,
                Layout::Nn,
                a.as_slice(),
                b.as_slice(),
                m,
                k,
                n,
                Epilogue::None,
            ));
        });
        rows.push((variant.name().to_string(), gflops(m, k, n, r.mean_ns), r.mean_ns));
    }

    // The auto path (detected variant + row fan-out) is what ops::matmul
    // actually runs — this is the headline turbo number.
    let turbo = bench(&format!("gemm/turbo_auto/{dim}"), || {
        black_box(ops::matmul(&a, &b).expect("dims"));
    });
    let turbo_gflops = gflops(m, k, n, turbo.mean_ns);
    rows.push(("turbo_auto".to_string(), turbo_gflops, turbo.mean_ns));
    println!(
        "gemm/speedup_turbo_over_reference            {:>11.2}x",
        reference.mean_ns / turbo.mean_ns
    );
    (rows, ref_gflops, turbo_gflops)
}

/// The transpose-free layouts and the fused epilogue at the same size.
fn bench_layouts(dim: usize) {
    let (a, b) = operands(dim, dim, dim, 0x7A6E_0001);
    bench(&format!("gemm/matmul_nt/{dim}"), || {
        black_box(ops::matmul_nt(&a, &b).expect("dims"));
    });
    bench(&format!("gemm/matmul_tn/{dim}"), || {
        black_box(ops::matmul_tn(&a, &b).expect("dims"));
    });
    let bias: Vec<f32> = (0..dim).map(|j| j as f32 * 0.01 - 1.0).collect();
    bench(&format!("gemm/matmul_bias_relu/{dim}"), || {
        black_box(ops::matmul_bias_relu(&a, &b, &bias).expect("dims"));
    });
}

/// One real network layer: the largest BERT-base GEMM that stays under
/// ~100M MACs, executed through the turbo backend.
fn bench_model_layer() {
    let workload = ModelWorkload::bert();
    let layer = workload
        .gemms
        .iter()
        .filter(|g| g.m * g.k * g.n <= 100_000_000)
        .max_by_key(|g| g.m * g.k * g.n)
        .expect("bert has layers")
        .clone();
    let (a, b) = layer.make_operands(0xB387);
    let r = bench(&format!("gemm/model/{}", layer.label), || {
        black_box(ops::matmul(&a, &b).expect("dims"));
    });
    println!(
        "gemm/model/{} ({}x{}x{}): {:.2} GFLOP/s",
        layer.label,
        layer.m,
        layer.k,
        layer.n,
        gflops(layer.m, layer.k, layer.n, r.mean_ns)
    );
}

/// Writes the square-GEMM results to `$SPARK_BENCH_JSON` if set.
fn write_bench_json(dim: usize, rows: &[(String, f64, f64)], ref_gflops: f64, turbo_gflops: f64) {
    let Some(path) = std::env::var_os("SPARK_BENCH_JSON") else {
        return;
    };
    let per_variant: Vec<Value> = rows
        .iter()
        .map(|(name, gf, mean_ns)| {
            Value::object([
                ("variant", Value::Str(name.clone())),
                ("gflops", Value::Num(*gf)),
                ("mean_ns", Value::Num(*mean_ns)),
            ])
        })
        .collect();
    let doc = Value::object([
        ("bench", Value::Str("gemm/turbo_backend".into())),
        ("shape", Value::Str(format!("{dim}x{dim}x{dim}"))),
        ("variants", Value::Array(per_variant)),
        ("reference_gflops", Value::Num(ref_gflops)),
        ("gflops", Value::Num(turbo_gflops)),
        (
            "speedup_turbo_over_reference",
            Value::Num(turbo_gflops / ref_gflops),
        ),
    ]);
    std::fs::write(&path, doc.to_string_pretty() + "\n").expect("write SPARK_BENCH_JSON");
    println!("wrote {}", path.to_string_lossy());
}

fn main() {
    let dim = 256;
    let (rows, ref_gflops, turbo_gflops) = bench_square(dim);
    write_bench_json(dim, &rows, ref_gflops, turbo_gflops);
    bench_layouts(dim);
    bench_model_layer();
}
