//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! - compensation mechanism (check-bit rounding) vs naive truncation —
//!   measures both the cost and, via Criterion's output, documents that CM
//!   adds no per-value overhead;
//! - decoupled vs strict-lockstep SPARK array timing (the fidelity gap the
//!   cycle-accurate simulator exposes);
//! - dense vs DBB-pruned execution (Fig 15's mechanism).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use spark_codec::EncodeMode;
use spark_nn::ModelWorkload;
use spark_sim::perf::SparkTiming;
use spark_sim::{Accelerator, AcceleratorKind, PrecisionProfile, SimConfig};

fn bench_compensation_modes(c: &mut Criterion) {
    let values: Vec<u8> = (0..65_536u32)
        .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
        .collect();
    let mut group = c.benchmark_group("ablation/encode_mode");
    for (name, mode) in [
        ("compensated", EncodeMode::Compensated),
        ("truncated", EncodeMode::Truncated),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &mode| {
            b.iter(|| {
                let mut acc = 0u64;
                for &v in &values {
                    acc = acc.wrapping_add(u64::from(mode.encode(v).decode()));
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_timing_models(c: &mut Criterion) {
    let workload = ModelWorkload::bert();
    let profile = PrecisionProfile::from_short_fractions(0.8, 0.8);
    let spark = Accelerator::new(AcceleratorKind::Spark);
    let mut group = c.benchmark_group("ablation/spark_timing");
    for (name, timing) in [
        ("decoupled", SparkTiming::Decoupled),
        ("lockstep", SparkTiming::Lockstep),
    ] {
        let cfg = SimConfig {
            spark_timing: timing,
            ..SimConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| black_box(spark.run(&workload, &profile, cfg)))
        });
    }
    group.finish();
}

fn bench_dbb_density(c: &mut Criterion) {
    let workload = ModelWorkload::resnet50();
    let profile = PrecisionProfile::from_short_fractions(0.65, 0.6);
    let spark = Accelerator::new(AcceleratorKind::Spark);
    let mut group = c.benchmark_group("ablation/dbb");
    for (name, density) in [("dense", None), ("dbb50", Some(0.5))] {
        let cfg = SimConfig {
            dbb_density: density,
            ..SimConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| black_box(spark.run(&workload, &profile, cfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compensation_modes, bench_timing_models, bench_dbb_density);
criterion_main!(benches);
