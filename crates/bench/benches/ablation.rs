//! Ablation benchmarks for the design choices DESIGN.md calls out, on the
//! in-tree `spark_util::bench` timer:
//!
//! - compensation mechanism (check-bit rounding) vs naive truncation —
//!   measures both the cost and, via the printed output, documents that CM
//!   adds no per-value overhead;
//! - decoupled vs strict-lockstep SPARK array timing (the fidelity gap the
//!   cycle-accurate simulator exposes);
//! - dense vs DBB-pruned execution (Fig 15's mechanism).

use spark_codec::EncodeMode;
use spark_nn::ModelWorkload;
use spark_sim::perf::SparkTiming;
use spark_sim::{Accelerator, AcceleratorKind, PrecisionProfile, SimConfig};
use spark_util::bench::{bench, black_box};

fn bench_compensation_modes() {
    let values: Vec<u8> = (0..65_536u32)
        .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
        .collect();
    for (name, mode) in [
        ("compensated", EncodeMode::Compensated),
        ("truncated", EncodeMode::Truncated),
    ] {
        bench(&format!("ablation/encode_mode/{name}"), || {
            let mut acc = 0u64;
            for &v in &values {
                acc = acc.wrapping_add(u64::from(mode.encode(v).decode()));
            }
            black_box(acc);
        });
    }
}

fn bench_timing_models() {
    let workload = ModelWorkload::bert();
    let profile = PrecisionProfile::from_short_fractions(0.8, 0.8);
    let spark = Accelerator::new(AcceleratorKind::Spark);
    for (name, timing) in [
        ("decoupled", SparkTiming::Decoupled),
        ("lockstep", SparkTiming::Lockstep),
    ] {
        let cfg = SimConfig {
            spark_timing: timing,
            ..SimConfig::default()
        };
        bench(&format!("ablation/spark_timing/{name}"), || {
            black_box(spark.run(&workload, &profile, &cfg));
        });
    }
}

fn bench_dbb_density() {
    let workload = ModelWorkload::resnet50();
    let profile = PrecisionProfile::from_short_fractions(0.65, 0.6);
    let spark = Accelerator::new(AcceleratorKind::Spark);
    for (name, density) in [("dense", None), ("dbb50", Some(0.5))] {
        let cfg = SimConfig {
            dbb_density: density,
            ..SimConfig::default()
        };
        bench(&format!("ablation/dbb/{name}"), || {
            black_box(spark.run(&workload, &profile, &cfg));
        });
    }
}

fn main() {
    bench_compensation_modes();
    bench_timing_models();
    bench_dbb_density();
}
