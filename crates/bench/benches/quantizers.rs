//! Criterion benchmarks over every codec the accuracy experiments sweep
//! (Tables IV/V): compression throughput on a calibrated 64k-value tensor.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spark_data::ModelProfile;
use spark_quant::{
    AdaptiveFloatCodec, AntCodec, BiScaledCodec, Codec, GoboCodec, OlAccelCodec, OliveCodec,
    OutlierSuppressionCodec, SparkCodec, UniformQuantizer,
};

fn bench_codecs(c: &mut Criterion) {
    let tensor = ModelProfile::bert().sample_tensor(65_536, 3);
    let codecs: Vec<Box<dyn Codec>> = vec![
        Box::new(SparkCodec::default()),
        Box::new(UniformQuantizer::symmetric(8)),
        Box::new(AntCodec::new(4).expect("valid bits")),
        Box::new(BiScaledCodec::new(6).expect("valid bits")),
        Box::new(OlAccelCodec::new()),
        Box::new(OliveCodec::new()),
        Box::new(GoboCodec::new()),
        Box::new(OutlierSuppressionCodec::new(6).expect("valid bits")),
        Box::new(AdaptiveFloatCodec::adafloat8()),
    ];
    let mut group = c.benchmark_group("quantizers/compress_64k");
    group.throughput(Throughput::Elements(tensor.len() as u64));
    for codec in &codecs {
        group.bench_with_input(
            BenchmarkId::from_parameter(codec.name()),
            codec,
            |b, codec| b.iter(|| black_box(codec.compress(&tensor).expect("finite tensor"))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
