//! Micro-benchmarks over every codec the accuracy experiments sweep
//! (Tables IV/V): compression throughput on a calibrated 64k-value tensor,
//! on the in-tree `spark_util::bench` timer.

use spark_data::ModelProfile;
use spark_quant::{
    AdaptiveFloatCodec, AntCodec, BiScaledCodec, Codec, GoboCodec, OlAccelCodec, OliveCodec,
    OutlierSuppressionCodec, SparkCodec, UniformQuantizer,
};
use spark_util::bench::{bench_throughput, black_box};

fn main() {
    let tensor = ModelProfile::bert().sample_tensor(65_536, 3);
    let codecs: Vec<Box<dyn Codec>> = vec![
        Box::new(SparkCodec::default()),
        Box::new(UniformQuantizer::symmetric(8)),
        Box::new(AntCodec::new(4).expect("valid bits")),
        Box::new(BiScaledCodec::new(6).expect("valid bits")),
        Box::new(OlAccelCodec::new()),
        Box::new(OliveCodec::new()),
        Box::new(GoboCodec::new()),
        Box::new(OutlierSuppressionCodec::new(6).expect("valid bits")),
        Box::new(AdaptiveFloatCodec::adafloat8()),
    ];
    for codec in &codecs {
        bench_throughput(
            &format!("quantizers/compress_64k/{}", codec.name()),
            tensor.len() as u64,
            || {
                black_box(codec.compress(&tensor).expect("finite tensor"));
            },
        );
    }
}
