//! Loopback integration tests: a real server on an ephemeral port, real
//! TCP clients, and the library as the reference implementation.
//!
//! The three properties the serving layer must never lose:
//!
//! 1. **Bit identity** — a batched server response is byte-for-byte what
//!    the direct library call produces for the same input.
//! 2. **Accounting** — every request shows up in `/metrics`; nothing is
//!    double- or under-counted, concurrency notwithstanding.
//! 3. **Loud overload** — when the bounded queue is full, the peer gets
//!    an explicit 503 body, never a dropped or hanging connection.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use spark_codec::{decode_stream, encode_tensor};
use spark_serve::api;
use spark_serve::http::client_request;
use spark_serve::{ServeConfig, Server};
use spark_util::json::parse;

fn start(workers: usize, queue_depth: usize) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_depth,
        batch_window: Duration::from_millis(2),
        max_batch: 16,
        ..ServeConfig::default()
    })
    .unwrap()
}

fn payload(seed: usize, n: usize) -> Vec<f32> {
    (0..n).map(|i| (((i * 31 + seed * 97) % 211) as f32 - 105.0) / 50.0).collect()
}

fn raw_bytes(values: &[f32]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// The reference body for `/v1/encode`: the direct, unbatched library
/// pipeline run through the same serializer.
fn reference_encode_body(values: &[f32]) -> String {
    let codes = api::quantize_codes(values).unwrap();
    let encoded = encode_tensor(&codes.codes);
    api::encode_response(&encoded, codes.scale).to_string_compact()
}

#[test]
fn concurrent_clients_get_bit_identical_batched_responses() {
    let server = start(4, 64);
    let addr = server.addr().to_string();

    const CLIENTS: usize = 8;
    const REQUESTS_PER_CLIENT: usize = 4;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                for r in 0..REQUESTS_PER_CLIENT {
                    let values = payload(c * 100 + r, 1000 + c * 37 + r);
                    let (status, body) = client_request(
                        &addr,
                        "POST",
                        "/v1/encode",
                        "application/octet-stream",
                        &raw_bytes(&values),
                    )
                    .unwrap();
                    assert_eq!(status, 200);
                    let got = String::from_utf8(body).unwrap();
                    assert_eq!(
                        got,
                        reference_encode_body(&values),
                        "client {c} request {r}: batched response diverged from library"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Accounting: every request counted, all encodes flowed through
    // batches whose sizes sum to the request count.
    let (status, body) = client_request(&addr, "GET", "/metrics", "", b"").unwrap();
    assert_eq!(status, 200);
    let m = parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let total = (CLIENTS * REQUESTS_PER_CLIENT) as f64;
    let encode = m.get("endpoints").unwrap().get("encode").unwrap();
    assert_eq!(encode.get("hits").unwrap().as_f64(), Some(total));
    assert_eq!(encode.get("errors").unwrap().as_f64(), Some(0.0));
    let batching = m.get("batching").unwrap();
    let batches = batching.get("batches").unwrap().as_f64().unwrap();
    assert!(batches >= 1.0 && batches <= total);
    assert_eq!(
        batching.get("batch_size").unwrap().get("count").unwrap().as_f64(),
        Some(batches)
    );
    // accepted = all encodes, plus possibly this in-flight /metrics
    // request (its own accept tick races with the snapshot).
    let accepted = m.get("queue").unwrap().get("accepted").unwrap().as_f64().unwrap();
    assert!(accepted >= total && accepted <= total + 1.0, "accepted = {accepted}");
    assert!(m.get("latency_us").unwrap().get("count").unwrap().as_f64().unwrap() >= total);

    server.shutdown();
    server.join();
}

#[test]
fn decode_round_trip_matches_library_decode() {
    let server = start(2, 16);
    let addr = server.addr().to_string();
    let values = payload(7, 1500);
    let codes = api::quantize_codes(&values).unwrap();
    let encoded = encode_tensor(&codes.codes);
    let hex = api::stream_to_hex(&encoded.stream);

    let (status, body) = client_request(
        &addr,
        "POST",
        "/v1/decode",
        "application/json",
        format!("{{\"stream_hex\": \"{hex}\"}}").as_bytes(),
    )
    .unwrap();
    assert_eq!(status, 200);
    let v = parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let got: Vec<u8> = v
        .get("codes")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|x| x.as_f64().unwrap() as u8)
        .collect();
    // Identical to the library's own decode. (Not to the original codes:
    // SPARK's encoding is deliberately lossy on ~5% of values.)
    assert_eq!(got, decode_stream(&encoded.stream).unwrap());

    server.shutdown();
    server.join();
}

#[test]
fn concurrent_decodes_batch_and_stay_bit_identical() {
    // Decode rides the micro-batcher like encode: concurrent requests
    // coalesce into decode_batch calls, each response byte-identical to
    // the direct library pipeline, and a malformed stream in the mix
    // fails alone with its own 400.
    let server = start(4, 64);
    let addr = server.addr().to_string();

    const CLIENTS: usize = 6;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let values = payload(c * 11 + 1, 900 + c * 53);
                let codes = api::quantize_codes(&values).unwrap();
                let encoded = encode_tensor(&codes.codes);
                let hex = api::stream_to_hex(&encoded.stream);
                let (status, body) = client_request(
                    &addr,
                    "POST",
                    "/v1/decode",
                    "application/json",
                    format!("{{\"stream_hex\": \"{hex}\"}}").as_bytes(),
                )
                .unwrap();
                assert_eq!(status, 200);
                assert_eq!(
                    String::from_utf8(body).unwrap(),
                    api::decode_response(&hex).unwrap().to_string_compact(),
                    "client {c}: batched decode diverged from library"
                );
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // A truncated long code (lone prev nibble "8") is this request's own
    // 400, reported through the batch path with the typed error message.
    let (status, body) = client_request(
        &addr,
        "POST",
        "/v1/decode",
        "application/json",
        b"{\"stream_hex\": \"8\"}",
    )
    .unwrap();
    assert_eq!(status, 400);
    assert!(String::from_utf8(body).unwrap().contains("long code"));

    // Accounting: all decode requests counted, exactly one error.
    let (status, body) = client_request(&addr, "GET", "/metrics", "", b"").unwrap();
    assert_eq!(status, 200);
    let m = parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let decode = m.get("endpoints").unwrap().get("decode").unwrap();
    assert_eq!(decode.get("hits").unwrap().as_f64(), Some((CLIENTS + 1) as f64));
    assert_eq!(decode.get("errors").unwrap().as_f64(), Some(1.0));
    let batches = m.get("batching").unwrap().get("batches").unwrap().as_f64().unwrap();
    assert!(batches >= 1.0, "decode requests never hit the batcher");

    server.shutdown();
    server.join();
}

#[test]
fn analyze_and_simulate_match_shared_serializers() {
    let server = start(2, 16);
    let addr = server.addr().to_string();

    let values = payload(3, 2000);
    let (status, body) = client_request(
        &addr,
        "POST",
        "/v1/analyze",
        "application/octet-stream",
        &raw_bytes(&values),
    )
    .unwrap();
    assert_eq!(status, 200);
    let got = String::from_utf8(body).unwrap();
    assert_eq!(got, api::analyze_response(&values).unwrap().to_string_compact());

    let (status, body) = client_request(
        &addr,
        "POST",
        "/v1/simulate",
        "application/json",
        b"{\"model\": \"resnet18\"}",
    )
    .unwrap();
    assert_eq!(status, 200);
    let v = parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(v.get("model").unwrap().as_str(), Some("ResNet18"));
    assert_eq!(v.get("accelerator").unwrap().as_str(), Some("SPARK"));
    assert!(v.get("latency_ms").unwrap().as_f64().unwrap() > 0.0);

    server.shutdown();
    server.join();
}

/// Reads whatever response a raw socket eventually produces.
fn read_raw_response(stream: &mut TcpStream) -> String {
    let mut out = Vec::new();
    stream.read_to_end(&mut out).unwrap();
    String::from_utf8_lossy(&out).into_owned()
}

#[test]
fn overload_answers_503_loudly_and_recovers() {
    // One worker, queue of one: the third concurrent connection must
    // overflow deterministically.
    let server = start(1, 1);
    let addr = server.addr().to_string();

    // Occupy the only worker: a request whose body never quite arrives.
    let mut stall = TcpStream::connect(&addr).unwrap();
    stall
        .write_all(b"POST /v1/analyze HTTP/1.1\r\nContent-Type: application/octet-stream\r\nContent-Length: 8\r\n\r\nhalf")
        .unwrap();
    stall.flush().unwrap();
    // Let the worker dequeue it and block on the body read.
    std::thread::sleep(Duration::from_millis(300));

    // Fills the queue (will be served once the stall resolves).
    let queued = std::thread::spawn({
        let addr = addr.clone();
        let values = payload(1, 64);
        move || client_request(&addr, "GET", "/healthz", "", &raw_bytes(&values)[..0]).unwrap()
    });
    std::thread::sleep(Duration::from_millis(300));

    // Queue is now full: these must all get explicit 503 JSON bodies.
    let mut saw_503 = 0;
    for _ in 0..3 {
        let mut conn = TcpStream::connect(&addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let reply = read_raw_response(&mut conn);
        assert!(!reply.is_empty(), "overflow connection was silently dropped");
        assert!(reply.starts_with("HTTP/1.1 503"), "expected 503, got {reply:?}");
        assert!(reply.contains("\"error\""), "503 carried no JSON body: {reply:?}");
        saw_503 += 1;
    }
    assert_eq!(saw_503, 3);

    // Release the stalled worker; both in-flight requests now finish.
    stall.write_all(b"more").unwrap();
    stall.flush().unwrap();
    let stall_reply = read_raw_response(&mut stall);
    assert!(stall_reply.starts_with("HTTP/1.1 200"), "{stall_reply:?}");
    let (status, _) = queued.join().unwrap();
    assert_eq!(status, 200);

    // The rejections are on the books.
    let (status, body) = client_request(&addr, "GET", "/metrics", "", b"").unwrap();
    assert_eq!(status, 200);
    let m = parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let rejected = m.get("queue").unwrap().get("rejected_503").unwrap().as_f64().unwrap();
    assert_eq!(rejected, 3.0);
    let peak = m.get("queue").unwrap().get("peak_depth").unwrap().as_f64().unwrap();
    assert!(peak >= 1.0);

    server.shutdown();
    server.join();
}

#[test]
fn shutdown_drains_then_refuses_new_connections() {
    let server = start(2, 16);
    let addr = server.addr().to_string();

    // A couple of real requests first.
    for seed in 0..2 {
        let values = payload(seed, 256);
        let (status, _) = client_request(
            &addr,
            "POST",
            "/v1/encode",
            "application/octet-stream",
            &raw_bytes(&values),
        )
        .unwrap();
        assert_eq!(status, 200);
    }

    let (status, body) = client_request(&addr, "POST", "/shutdown", "", b"").unwrap();
    assert_eq!(status, 200);
    assert!(String::from_utf8(body).unwrap().contains("shutting down"));
    server.join();

    // Listener is gone: connecting now must fail outright.
    assert!(TcpStream::connect(&addr).is_err(), "listener survived shutdown");
}

/// JSON bodies work on the encode path too, and malformed ones error
/// without dropping the connection.
#[test]
fn json_encode_body_and_error_paths() {
    let server = start(2, 16);
    let addr = server.addr().to_string();

    let (status, body) = client_request(
        &addr,
        "POST",
        "/v1/encode",
        "application/json",
        b"{\"values\": [0.5, -0.25, 0.125, 1.0]}",
    )
    .unwrap();
    assert_eq!(status, 200);
    let expected = reference_encode_body(&[0.5, -0.25, 0.125, 1.0]);
    assert_eq!(String::from_utf8(body).unwrap(), expected);

    // Deeply nested hostile JSON: parser must refuse, server must answer.
    let bomb = format!("{}1{}", "[".repeat(100_000), "]".repeat(100_000));
    let (status, body) =
        client_request(&addr, "POST", "/v1/encode", "application/json", bomb.as_bytes()).unwrap();
    assert_eq!(status, 400);
    assert!(String::from_utf8(body).unwrap().contains("error"));

    server.shutdown();
    server.join();
}
