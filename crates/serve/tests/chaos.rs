//! Adversarial loopback tests: a real server on an ephemeral port under
//! deliberately hostile clients.
//!
//! The resilience contract under test:
//!
//! 1. **Panic isolation** — a panicking handler costs its own request a
//!    500 (and a `panics_total` tick); the pool keeps serving.
//! 2. **Worker respawn** — a worker thread that dies outright is replaced
//!    by the supervisor; capacity is restored, `workers_respawned` ticks,
//!    and `/healthz` reports `degraded` instead of lying.
//! 3. **Slowloris shedding** — a drip-feeding client is cut off with a
//!    408 close to the configured request deadline, not held for an
//!    unbounded sequence of per-read timeouts.
//! 4. **Garbage tolerance** — truncated bodies, immediate disconnects,
//!    and binary junk never wedge or kill the server.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use spark_serve::http::client_request;
use spark_serve::{ServeConfig, Server};
use spark_util::json::parse;

fn start_chaos(workers: usize, deadline: Duration) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_depth: 16,
        batch_window: Duration::from_millis(1),
        max_batch: 8,
        request_deadline: deadline,
        chaos_endpoints: true,
        ..ServeConfig::default()
    })
    .unwrap()
}

fn metric(addr: &str, section: &str, name: &str) -> f64 {
    let (status, body) = client_request(addr, "GET", "/metrics", "", b"").unwrap();
    assert_eq!(status, 200);
    parse(std::str::from_utf8(&body).unwrap())
        .unwrap()
        .get(section)
        .and_then(|v| v.get(name))
        .and_then(|v| v.as_f64())
        .unwrap_or(f64::NAN)
}

fn healthz_status(addr: &str) -> String {
    let (status, body) = client_request(addr, "GET", "/healthz", "", b"").unwrap();
    assert_eq!(status, 200);
    parse(std::str::from_utf8(&body).unwrap())
        .unwrap()
        .get("status")
        .and_then(|v| v.as_str())
        .unwrap_or("missing")
        .to_string()
}

#[test]
fn handler_panic_is_a_500_not_an_outage() {
    let server = start_chaos(2, Duration::from_secs(10));
    let addr = server.addr().to_string();

    // Inject a panic; the connection must still get a JSON 500.
    let (status, body) = client_request(&addr, "POST", "/__chaos/panic", "", b"").unwrap();
    assert_eq!(status, 500, "{body:?}");
    let v = parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert!(
        v.get("error").and_then(|e| e.as_str()).unwrap_or("").contains("panic"),
        "{v:?}"
    );

    // The pool survived: real work still gets served, on every worker.
    for _ in 0..8 {
        let (status, _) = client_request(
            &addr,
            "POST",
            "/v1/analyze",
            "application/json",
            b"{\"values\": [0.5, -0.25, 0.125, 0.75]}",
        )
        .unwrap();
        assert_eq!(status, 200);
    }

    assert_eq!(metric(&addr, "resilience", "panics_total"), 1.0);
    assert_eq!(healthz_status(&addr), "degraded");

    server.shutdown();
    server.join();
}

#[test]
fn dead_worker_is_respawned_and_capacity_restored() {
    let server = start_chaos(2, Duration::from_secs(10));
    let addr = server.addr().to_string();
    assert_eq!(healthz_status(&addr), "ok");

    // Kill both original workers (each request rides one worker thread).
    for _ in 0..2 {
        let (status, body) = client_request(&addr, "POST", "/__chaos/exit-worker", "", b"").unwrap();
        assert_eq!(status, 200, "{body:?}");
    }

    // The supervisor polls every 25 ms; give it a bounded window to
    // restore the pool, then prove the server still answers real work.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if metric(&addr, "resilience", "workers_respawned") >= 2.0 {
            break;
        }
        assert!(Instant::now() < deadline, "supervisor never respawned both workers");
        std::thread::sleep(Duration::from_millis(25));
    }
    for _ in 0..4 {
        let (status, _) = client_request(
            &addr,
            "POST",
            "/v1/encode",
            "application/json",
            b"{\"values\": [0.1, 0.2, 0.3, 0.4]}",
        )
        .unwrap();
        assert_eq!(status, 200);
    }
    assert_eq!(healthz_status(&addr), "degraded");

    server.shutdown();
    server.join();
}

#[test]
fn slowloris_client_is_shed_within_the_deadline() {
    let deadline = Duration::from_millis(300);
    let server = start_chaos(1, deadline);
    let addr = server.addr().to_string();

    let started = Instant::now();
    let mut s = TcpStream::connect(&addr).unwrap();
    s.write_all(b"POST /v1/encode HTTP/1.1\r\nContent-Le").unwrap();
    // Drip a byte every 50 ms — each gap is far below IO_TIMEOUT, so only
    // the overall deadline can cut this off.
    let mut reply = Vec::new();
    for _ in 0..40 {
        std::thread::sleep(Duration::from_millis(50));
        if s.write_all(b"x").is_err() {
            break;
        }
        s.set_read_timeout(Some(Duration::from_millis(10))).unwrap();
        let mut buf = [0u8; 1024];
        match s.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                reply.extend_from_slice(&buf[..n]);
                if reply.windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => {}
        }
    }
    // Collect whatever is left of the response.
    s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    let mut rest = Vec::new();
    let _ = s.read_to_end(&mut rest);
    reply.extend_from_slice(&rest);
    let elapsed = started.elapsed();

    let text = String::from_utf8_lossy(&reply);
    assert!(text.starts_with("HTTP/1.1 408"), "expected 408, got {text:?}");
    assert!(
        elapsed < deadline + Duration::from_secs(3),
        "shedding took {elapsed:?} against a {deadline:?} deadline"
    );
    assert!(metric(&addr, "resilience", "deadline_408") >= 1.0);

    // The lone worker is free again: a healthy request goes straight through.
    let (status, _) = client_request(&addr, "GET", "/metrics", "", b"").unwrap();
    assert_eq!(status, 200);

    server.shutdown();
    server.join();
}

#[test]
fn garbage_and_disconnects_never_wedge_the_server() {
    let server = start_chaos(2, Duration::from_millis(500));
    let addr = server.addr().to_string();

    // Immediate disconnect, raw binary junk, truncated body, each a few
    // times over — then the server must still answer cleanly.
    for round in 0..3 {
        drop(TcpStream::connect(&addr).unwrap());
        {
            let mut s = TcpStream::connect(&addr).unwrap();
            let junk: Vec<u8> = (0..64u16).map(|i| (i * 37 + round) as u8).collect();
            let _ = s.write_all(&junk);
        }
        {
            let mut s = TcpStream::connect(&addr).unwrap();
            let _ = s.write_all(b"POST /v1/encode HTTP/1.1\r\nContent-Length: 999\r\n\r\nshort");
            // Drop without finishing the body: the read deadline reaps it.
        }
    }

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match client_request(&addr, "GET", "/healthz", "", b"") {
            Ok((200, _)) => break,
            _ if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(50)),
            other => panic!("server wedged after garbage: {other:?}"),
        }
    }
    assert_eq!(metric(&addr, "resilience", "panics_total"), 0.0);

    server.shutdown();
    server.join();
}

#[test]
fn chaos_endpoints_are_404_when_disabled() {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_depth: 8,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr().to_string();
    for path in ["/__chaos/panic", "/__chaos/exit-worker"] {
        let (status, _) = client_request(&addr, "POST", path, "", b"").unwrap();
        assert_eq!(status, 404, "{path} must not exist without chaos_endpoints");
    }
    server.shutdown();
    server.join();
}
