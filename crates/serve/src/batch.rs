//! Adaptive micro-batching.
//!
//! A [`Batcher`] owns one background thread and a bounded job channel.
//! Worker threads submit single inputs and block on a per-job [`Slot`];
//! the batcher thread coalesces whatever is queued into one call of the
//! batch function and fans the results back out. The coalescing policy
//! is adaptive:
//!
//! 1. Take the first job (blocking — an idle batcher costs nothing).
//! 2. Drain everything already queued, up to `max_batch`.
//! 3. Only if the job is still alone, wait up to `window` for company —
//!    a lone request under light load pays at most `window` extra
//!    latency, while under heavy load step 2 always finds a full batch
//!    and the window never triggers.
//!
//! Shutdown is channel-drop driven: dropping the last [`Batcher`] handle
//! closes the channel, the thread drains remaining jobs, runs them, and
//! exits. No flags, no sentinel jobs.

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use spark_util::par::{channel, RecvTimeoutError, Sender};

/// One-shot response cell a submitting thread parks on.
pub struct Slot<R> {
    value: Mutex<Option<R>>,
    ready: Condvar,
}

impl<R> Slot<R> {
    fn new() -> Arc<Self> {
        Arc::new(Self { value: Mutex::new(None), ready: Condvar::new() })
    }

    fn fill(&self, result: R) {
        let mut guard = self.value.lock().unwrap_or_else(|e| e.into_inner());
        *guard = Some(result);
        self.ready.notify_all();
    }

    /// Blocks until the batcher fills the slot or `timeout` elapses.
    /// `None` means the batcher never delivered (it died or is wedged) —
    /// callers should answer 500, never hang the connection.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<R> {
        let deadline = Instant::now() + timeout;
        let mut guard = self.value.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if guard.is_some() {
                return guard.take();
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (g, _) = self
                .ready
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            guard = g;
        }
    }
}

struct Job<T, R> {
    input: T,
    slot: Arc<Slot<R>>,
}

/// Handle to a running batcher thread. Clone freely; the thread exits
/// once every handle is dropped and the queue drains.
pub struct Batcher<T, R> {
    tx: Sender<Job<T, R>>,
    handle: Arc<Mutex<Option<JoinHandle<()>>>>,
}

impl<T, R> Clone for Batcher<T, R> {
    fn clone(&self) -> Self {
        Self { tx: self.tx.clone(), handle: Arc::clone(&self.handle) }
    }
}

impl<T: Send + 'static, R: Send + 'static> Batcher<T, R> {
    /// Spawns the batcher thread.
    ///
    /// `run` maps a batch of inputs to a same-length vector of results,
    /// in order. `window` is the extra time a lone job waits for
    /// company; `max_batch` caps coalescing; `queue` bounds the job
    /// channel (submitting past it blocks, propagating backpressure to
    /// the connection queue).
    ///
    /// # Errors
    ///
    /// Thread-spawn failure (resource exhaustion at startup).
    pub fn spawn(
        name: &str,
        window: Duration,
        max_batch: usize,
        queue: usize,
        run: impl Fn(Vec<T>) -> Vec<R> + Send + 'static,
    ) -> std::io::Result<Self> {
        let max_batch = max_batch.max(1);
        let (tx, rx) = channel::<Job<T, R>>(queue.max(1));
        let handle = std::thread::Builder::new()
            .name(format!("spark-batch-{name}"))
            .spawn(move || {
                while let Some(first) = rx.recv() {
                    let mut jobs = vec![first];
                    while jobs.len() < max_batch {
                        match rx.try_recv() {
                            Some(job) => jobs.push(job),
                            None => break,
                        }
                    }
                    if jobs.len() == 1 && !window.is_zero() {
                        let deadline = Instant::now() + window;
                        while jobs.len() < max_batch {
                            let now = Instant::now();
                            if now >= deadline {
                                break;
                            }
                            match rx.recv_timeout(deadline - now) {
                                Ok(job) => jobs.push(job),
                                Err(RecvTimeoutError::Timeout)
                                | Err(RecvTimeoutError::Disconnected) => break,
                            }
                        }
                    }
                    let (inputs, slots): (Vec<T>, Vec<Arc<Slot<R>>>) =
                        jobs.into_iter().map(|j| (j.input, j.slot)).unzip();
                    let results = run(inputs);
                    debug_assert_eq!(results.len(), slots.len());
                    for (slot, result) in slots.iter().zip(results) {
                        slot.fill(result);
                    }
                }
            })?;
        Ok(Self { tx, handle: Arc::new(Mutex::new(Some(handle))) })
    }

    /// Queues one input. Blocks if the job channel is full. `None` means
    /// the batcher thread is gone (server shutting down).
    pub fn submit(&self, input: T) -> Option<Arc<Slot<R>>> {
        let slot = Slot::new();
        match self.tx.send(Job { input, slot: Arc::clone(&slot) }) {
            Ok(()) => Some(slot),
            Err(_) => None,
        }
    }

    /// Drops the sender and joins the batcher thread. Call on the last
    /// clone during shutdown; earlier calls just drop their sender.
    pub fn join(self) {
        let Self { tx, handle } = self;
        drop(tx);
        let taken = handle.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(h) = taken {
            // Only joinable once every other clone's sender is gone;
            // the last caller through here does the actual join.
            if Arc::strong_count(&handle) == 1 {
                h.join().ok();
            } else {
                *handle.lock().unwrap_or_else(|e| e.into_inner()) = Some(h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WAIT: Duration = Duration::from_secs(10);

    #[test]
    fn single_job_runs_after_window() {
        let b = Batcher::spawn("t1", Duration::from_millis(5), 8, 16, |xs: Vec<u32>| {
            xs.into_iter().map(|x| x * 2).collect()
        })
        .unwrap();
        let slot = b.submit(21).unwrap();
        assert_eq!(slot.wait_timeout(WAIT), Some(42));
        b.join();
    }

    #[test]
    fn queued_jobs_coalesce_and_results_route_to_their_slots() {
        let sizes = Arc::new(Mutex::new(Vec::new()));
        let sizes2 = Arc::clone(&sizes);
        // A long window so concurrent submissions coalesce deterministically.
        let b = Batcher::spawn("t2", Duration::from_millis(200), 64, 64, move |xs: Vec<u32>| {
            sizes2.lock().unwrap().push(xs.len());
            xs.into_iter().map(|x| x + 1000).collect()
        })
        .unwrap();
        let slots: Vec<_> = (0..16u32).map(|i| b.submit(i).unwrap()).collect();
        for (i, slot) in slots.into_iter().enumerate() {
            assert_eq!(slot.wait_timeout(WAIT), Some(i as u32 + 1000));
        }
        let sizes = sizes.lock().unwrap().clone();
        assert_eq!(sizes.iter().sum::<usize>(), 16);
        assert!(
            sizes.iter().any(|&s| s > 1),
            "16 near-simultaneous jobs should produce at least one real batch, got {sizes:?}"
        );
        b.join();
    }

    #[test]
    fn max_batch_caps_coalescing() {
        let sizes = Arc::new(Mutex::new(Vec::new()));
        let sizes2 = Arc::clone(&sizes);
        let b = Batcher::spawn("t3", Duration::from_millis(50), 4, 64, move |xs: Vec<u32>| {
            sizes2.lock().unwrap().push(xs.len());
            xs
        })
        .unwrap();
        let slots: Vec<_> = (0..12u32).map(|i| b.submit(i).unwrap()).collect();
        for slot in slots {
            assert!(slot.wait_timeout(WAIT).is_some());
        }
        assert!(sizes.lock().unwrap().iter().all(|&s| s <= 4));
        b.join();
    }

    #[test]
    fn join_drains_pending_jobs() {
        let b = Batcher::spawn("t4", Duration::ZERO, 8, 64, |xs: Vec<u32>| xs).unwrap();
        let slots: Vec<_> = (0..8u32).map(|i| b.submit(i).unwrap()).collect();
        b.join();
        for (i, slot) in slots.into_iter().enumerate() {
            assert_eq!(slot.wait_timeout(WAIT), Some(i as u32));
        }
    }

    #[test]
    fn submit_after_join_reports_shutdown() {
        let b = Batcher::spawn("t5", Duration::ZERO, 8, 64, |xs: Vec<u32>| xs).unwrap();
        let b2 = b.clone();
        b.join();
        b2.join();
        // Both handles joined: channel closed, submission must fail cleanly.
        let b3 = Batcher::<u32, u32> {
            tx: {
                let (tx, _rx) = channel(1);
                drop(_rx);
                tx
            },
            handle: Arc::new(Mutex::new(None)),
        };
        assert!(b3.submit(1).is_none());
    }
}
