//! Request/response schemas over the codec, quantizer, and simulator.
//!
//! Everything JSON-shaped that the server emits lives here so the CLI's
//! `--json` mode can reuse the exact same serializers — `spark analyze
//! --json foo.f32` and `POST /v1/analyze` produce byte-identical bodies
//! for the same input, which is what makes the loopback bit-identity
//! tests meaningful.
//!
//! The functions are split along the batching seam: quantization
//! (per-request, cheap) is separate from stream encoding (batched by the
//! server through [`spark_codec::encode_batch`]) so the batcher can
//! coalesce the expensive stage without reshaping responses.

use spark_codec::{analysis, decode_stream, EncodedTensor, NibbleStream};
use spark_data::ModelProfile;
use spark_nn::layers::{Dense, Relu};
use spark_nn::{FreezeReport, ModelWorkload, Sequential};
use spark_quant::{Codec, MagnitudeCodes, MagnitudeQuantizer, SparkCodec};
use spark_sim::{AcceleratorKind, PrecisionProfile, SimConfig, WorkloadReport};
use spark_tensor::Tensor;
use spark_util::json::{ToJson, Value};

/// Bit-width every serving-path quantization uses (the paper's INT8
/// baseline that SPARK encodes).
pub const SERVE_BITS: u8 = 8;

/// Wraps a 1-D tensor around raw values.
fn tensor_of(values: &[f32]) -> Result<Tensor, String> {
    Tensor::from_vec(values.to_vec(), &[values.len()]).map_err(|e| e.to_string())
}

/// Quantizes raw f32 values to INT8 magnitude codes — the per-request
/// half of the encode pipeline (the stream-encoding half is batched).
///
/// # Errors
///
/// Non-finite inputs and empty tensors are rejected with a message.
pub fn quantize_codes(values: &[f32]) -> Result<MagnitudeCodes, String> {
    if values.is_empty() {
        return Err("empty input: no values to encode".into());
    }
    let tensor = tensor_of(values)?;
    let quantizer = MagnitudeQuantizer::new(SERVE_BITS).map_err(|e| e.to_string())?;
    quantizer.quantize(&tensor).map_err(|e| e.to_string())
}

/// Lower-hex dump of a nibble stream, one character per nibble.
pub fn stream_to_hex(stream: &NibbleStream) -> String {
    // NibbleStream::iter yields values < 16 by construction, so every
    // nibble indexes the hex alphabet; no fallible conversion needed.
    const HEX: [u8; 16] = *b"0123456789abcdef";
    stream.iter().map(|n| char::from(HEX[usize::from(n) & 0xF])).collect()
}

/// Rebuilds a nibble stream from its hex dump.
///
/// # Errors
///
/// Rejects empty input and non-hex characters.
pub fn stream_from_hex(hex: &str) -> Result<NibbleStream, String> {
    if hex.is_empty() {
        return Err("empty stream_hex".into());
    }
    let mut stream = NibbleStream::with_capacity(hex.len());
    for (i, c) in hex.chars().enumerate() {
        let nibble = c
            .to_digit(16)
            .ok_or_else(|| format!("stream_hex: invalid hex digit {c:?} at offset {i}"))?;
        stream.push(nibble as u8);
    }
    Ok(stream)
}

/// Serializes one encoded tensor (plus the quantizer scale a client needs
/// to dequantize later) as the `/v1/encode` response body.
pub fn encode_response(encoded: &EncodedTensor, scale: f32) -> Value {
    Value::object([
        ("elements", Value::Num(encoded.elements as f64)),
        ("scale", Value::Num(f64::from(scale))),
        ("nibbles", Value::Num(encoded.stream.len() as f64)),
        ("avg_bits", Value::Num(encoded.stats.avg_bits())),
        ("short_fraction", Value::Num(encoded.stats.short_fraction())),
        ("lossless_fraction", Value::Num(encoded.stats.lossless_fraction())),
        ("stream_hex", Value::Str(stream_to_hex(&encoded.stream))),
    ])
}

/// Serializes decoded code words as the `/v1/decode` response body — the
/// post-decode half of the decode pipeline, shared by the batched server
/// path and the direct [`decode_response`].
pub fn decode_codes_response(codes: &[u8]) -> Value {
    Value::object([
        ("elements", Value::Num(codes.len() as f64)),
        ("codes", codes.to_json()),
    ])
}

/// Decodes a hex-dumped stream back to code words — the `/v1/decode`
/// response body. The server splits this along the batching seam (hex
/// parsing per-request, stream decode batched through
/// [`spark_codec::decode_batch`]); this single-call form serves the CLI
/// and produces byte-identical bodies.
///
/// # Errors
///
/// Bad hex and malformed streams (truncated long code) are reported with
/// a message.
pub fn decode_response(stream_hex: &str) -> Result<Value, String> {
    let stream = stream_from_hex(stream_hex)?;
    let codes = decode_stream(&stream).map_err(|e| e.to_string())?;
    Ok(decode_codes_response(&codes))
}

/// Runs the full `spark analyze` pipeline and serializes it — shared by
/// `POST /v1/analyze` and `spark analyze --json`.
///
/// # Errors
///
/// Propagates quantizer/codec failures (empty or non-finite input).
pub fn analyze_response(values: &[f32]) -> Result<Value, String> {
    if values.is_empty() {
        return Err("empty input: no values to analyze".into());
    }
    let tensor = tensor_of(values)?;
    let quantizer = MagnitudeQuantizer::new(SERVE_BITS).map_err(|e| e.to_string())?;
    let codes = quantizer.quantize(&tensor).map_err(|e| e.to_string())?;
    let a = analysis::analyze(&codes.codes);
    let r = SparkCodec::default().compress(&tensor).map_err(|e| e.to_string())?;
    let mut members = match a.to_json() {
        Value::Object(members) => members,
        _ => unreachable!("to_json_struct always yields an object"),
    };
    members.push(("alignment_overhead_bits".into(), Value::Num(a.alignment_overhead_bits())));
    members.push(("sqnr_db".into(), Value::Num(r.sqnr_db(&tensor))));
    Ok(Value::Object(members))
}

/// Resolves a model name case-insensitively to its canonical spelling.
///
/// # Errors
///
/// Unknown names get a message listing the lookup command.
pub fn resolve_model(name: &str) -> Result<String, String> {
    ModelProfile::all()
        .into_iter()
        .map(|p| p.name)
        .find(|n| n.eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown model {name}; try `spark models`"))
}

/// Resolves an accelerator name case-insensitively.
///
/// # Errors
///
/// Unknown names get a message listing the valid set.
pub fn resolve_accelerator(name: &str) -> Result<AcceleratorKind, String> {
    AcceleratorKind::ALL
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            let names: Vec<&str> = AcceleratorKind::ALL.iter().map(|k| k.name()).collect();
            format!("unknown accelerator {name}; expected one of {}", names.join(", "))
        })
}

/// A fully-resolved simulation request, ready to run (or batch).
pub struct SimJob {
    /// The workload to simulate.
    pub workload: ModelWorkload,
    /// Accelerator to run it on.
    pub kind: AcceleratorKind,
    /// Calibrated precision mix for the model's distributions.
    pub precision: PrecisionProfile,
}

/// Resolves model + accelerator names into a runnable [`SimJob`], using
/// the same calibrated sampling as `spark simulate`.
///
/// # Errors
///
/// Unknown model or accelerator names.
pub fn resolve_sim_job(model: &str, accelerator: &str) -> Result<SimJob, String> {
    let canonical = resolve_model(model)?;
    let kind = resolve_accelerator(accelerator)?;
    let workload = ModelWorkload::by_name(&canonical)
        .ok_or_else(|| format!("no workload for {canonical}"))?;
    let profile = ModelProfile::all()
        .into_iter()
        .find(|p| p.name == canonical)
        .ok_or_else(|| format!("no calibrated profile for {canonical}"))?;
    let weights = profile.sample_tensor(40_000, 1);
    let acts = profile.sample_activations(40_000, 2);
    let precision =
        PrecisionProfile::from_tensors(&weights, &acts).map_err(|e| e.to_string())?;
    Ok(SimJob { workload, kind, precision })
}

/// Serializes a finished simulation as the `/v1/simulate` response body:
/// the full layer-by-layer report plus the derived latency/efficiency
/// figures the text CLI prints.
pub fn simulate_response(
    report: &WorkloadReport,
    workload: &ModelWorkload,
    config: &SimConfig,
) -> Value {
    let mut members = match report.to_json() {
        Value::Object(members) => members,
        _ => unreachable!("to_json_struct always yields an object"),
    };
    members.push(("frequency_mhz".into(), Value::Num(config.frequency_mhz)));
    members.push(("latency_ms".into(), Value::Num(report.latency_ms(config))));
    members.push(("gmacs_per_joule".into(), Value::Num(report.gmacs_per_joule(workload))));
    Value::Object(members)
}

/// Input width of the serving inference model.
pub const INFER_INPUTS: usize = 64;
/// Hidden width of the serving inference model.
pub const INFER_HIDDEN: usize = 128;
/// Output width (logit count) of the serving inference model.
pub const INFER_OUTPUTS: usize = 10;
/// Seed the serving inference model is built from. Any process building
/// an [`InferModel`] gets bit-identical weights, which is what makes the
/// loopback bit-identity test against `/v1/infer` meaningful.
pub const INFER_SEED: u64 = 0x5134_11CE;
/// Reserved blockstore names the serving model's frozen weight matrices
/// persist under, in layer order. `spark store put --infer-model` writes
/// them; `spark serve --store <dir>` cold-loads from them when all are
/// present.
pub const STORE_MODEL_KEYS: [&str; 2] = ["__model/infer/w0", "__model/infer/w1"];

/// The `/v1/infer` model: a deterministic seeded MLP whose weights are
/// frozen into SPARK nibble streams at construction. Every forward pass
/// runs the decode-fused GEMM directly over the encoded weights — the
/// dense `f32` weight matrices are only materialized transiently during
/// the freeze, so the resident weight footprint is the encoded form.
pub struct InferModel {
    model: Sequential,
    report: FreezeReport,
}

impl InferModel {
    /// Builds and freezes the serving model.
    ///
    /// # Errors
    ///
    /// Propagates encode failures (cannot happen for the seeded Glorot
    /// weights, but the fallible path is kept honest).
    pub fn new() -> Result<Self, String> {
        let mut model = Sequential::new("serve-infer")
            .push(Dense::new(INFER_INPUTS, INFER_HIDDEN, INFER_SEED))
            .push(Relu::new())
            .push(Dense::new(INFER_HIDDEN, INFER_OUTPUTS, INFER_SEED.wrapping_add(1)));
        let report = model.freeze_encoded().map_err(|e| format!("freeze: {e}"))?;
        Ok(Self { model, report })
    }

    /// Cold-loads the serving model from stored frozen weight matrices
    /// (layer order: the two [`Dense`] weights), skipping the
    /// quantize-and-encode pass. The resulting model serves `/v1/infer`
    /// responses bit-identical to the model the matrices were exported
    /// from — the loopback test in `server.rs` enforces this.
    ///
    /// # Errors
    ///
    /// Wrong matrix count, mismatched dimensions, or corrupt container
    /// bytes.
    pub fn from_matrices(
        mats: impl IntoIterator<Item = spark_tensor::EncodedMatrix>,
    ) -> Result<Self, String> {
        let mut model = Sequential::new("serve-infer")
            .push(Dense::new(INFER_INPUTS, INFER_HIDDEN, INFER_SEED))
            .push(Relu::new())
            .push(Dense::new(INFER_HIDDEN, INFER_OUTPUTS, INFER_SEED.wrapping_add(1)));
        let report = model.import_weights(mats).map_err(|e| format!("import: {e}"))?;
        Ok(Self { model, report })
    }

    /// The frozen weight matrices in layer order — what `spark store put
    /// --infer-model` persists and [`InferModel::from_matrices`] reloads.
    pub fn export_matrices(&self) -> Vec<spark_tensor::EncodedMatrix> {
        self.model.exported_weights().into_iter().cloned().collect()
    }

    /// Encoded resident bytes / dense `f32` bytes for the frozen weights.
    pub fn report(&self) -> FreezeReport {
        self.report
    }

    /// Runs one forward pass and serializes the `/v1/infer` response body.
    ///
    /// # Errors
    ///
    /// Wrong input width or non-finite values.
    pub fn infer(&mut self, values: &[f32]) -> Result<Value, String> {
        if values.len() != INFER_INPUTS {
            return Err(format!(
                "infer expects exactly {INFER_INPUTS} values, got {}",
                values.len()
            ));
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err("infer input contains a non-finite value".into());
        }
        let x = Tensor::from_vec(values.to_vec(), &[1, INFER_INPUTS])
            .map_err(|e| e.to_string())?;
        let logits = self.model.forward(&x);
        let l = logits.as_slice();
        let argmax = l
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map_or(0, |(i, _)| i);
        Ok(Value::object([
            ("outputs", Value::Array(l.iter().map(|v| Value::Num(f64::from(*v))).collect())),
            ("argmax", Value::Num(argmax as f64)),
            ("weight_bytes_encoded", Value::Num(self.report.resident_bytes as f64)),
            ("weight_bytes_f32", Value::Num(self.report.dense_bytes as f64)),
            ("weight_bytes_ratio", Value::Num(self.report.ratio())),
        ]))
    }
}

/// Extracts `values` from a JSON request body (`{"values": [..]}`), used
/// when an encode/analyze client prefers JSON over raw octets.
///
/// # Errors
///
/// Missing field, non-array, or non-numeric elements.
pub fn values_from_json(body: &Value) -> Result<Vec<f32>, String> {
    let arr = body
        .get("values")
        .and_then(Value::as_array)
        .ok_or("body must be {\"values\": [numbers...]}")?;
    arr.iter()
        .map(|v| v.as_f64().map(|x| x as f32).ok_or_else(|| "values must be numbers".to_string()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_codec::encode_tensor;

    fn sample_values(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 37) % 100) as f32 / 100.0 - 0.5).collect()
    }

    #[test]
    fn stream_hex_round_trips() {
        let values = sample_values(513);
        let codes = quantize_codes(&values).unwrap();
        let encoded = encode_tensor(&codes.codes);
        let hex = stream_to_hex(&encoded.stream);
        let back = stream_from_hex(&hex).unwrap();
        assert_eq!(back.as_bytes(), encoded.stream.as_bytes());
        assert_eq!(back.len(), encoded.stream.len());
        assert_eq!(decode_stream(&back).unwrap(), decode_stream(&encoded.stream).unwrap());
    }

    #[test]
    fn stream_from_hex_rejects_bad_input() {
        assert!(stream_from_hex("").is_err());
        assert!(stream_from_hex("0g").unwrap_err().contains("offset 1"));
        assert!(stream_from_hex("a b").is_err());
    }

    #[test]
    fn encode_response_has_all_fields_and_parses() {
        let values = sample_values(256);
        let codes = quantize_codes(&values).unwrap();
        let encoded = encode_tensor(&codes.codes);
        let body = encode_response(&encoded, codes.scale).to_string_compact();
        let v = spark_util::json::parse(&body).unwrap();
        assert_eq!(v.get("elements").unwrap().as_f64(), Some(256.0));
        assert!(v.get("scale").unwrap().as_f64().unwrap() > 0.0);
        assert!(v.get("avg_bits").unwrap().as_f64().unwrap() >= 4.0);
        let hex = v.get("stream_hex").unwrap().as_str().unwrap();
        assert_eq!(hex.len(), encoded.stream.len());
    }

    #[test]
    fn decode_response_inverts_encode_response() {
        let values = sample_values(300);
        let codes = quantize_codes(&values).unwrap();
        let encoded = encode_tensor(&codes.codes);
        let hex = stream_to_hex(&encoded.stream);
        let v = decode_response(&hex).unwrap();
        let decoded: Vec<u8> = v
            .get("codes")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|x| x.as_f64().unwrap() as u8)
            .collect();
        assert_eq!(decoded, decode_stream(&encoded.stream).unwrap());
    }

    #[test]
    fn analyze_response_matches_direct_pipeline() {
        let values = sample_values(2000);
        let body = analyze_response(&values).unwrap().to_string_compact();
        let v = spark_util::json::parse(&body).unwrap();
        assert_eq!(v.get("count").unwrap().as_f64(), Some(2000.0));
        for field in [
            "spark_bits",
            "source_entropy",
            "reconstructed_entropy",
            "alignment_overhead_bits",
            "mean_error",
            "rms_error",
            "sqnr_db",
        ] {
            assert!(v.get(field).unwrap().as_f64().is_some(), "missing {field}");
        }
    }

    #[test]
    fn empty_and_non_finite_inputs_error() {
        assert!(quantize_codes(&[]).is_err());
        assert!(analyze_response(&[]).is_err());
        assert!(quantize_codes(&[1.0, f32::NAN]).is_err());
        assert!(analyze_response(&[f32::INFINITY]).is_err());
    }

    #[test]
    fn model_and_accelerator_lookup_is_case_insensitive() {
        assert_eq!(resolve_model("resnet18").unwrap(), "ResNet18");
        assert_eq!(resolve_model("BERT").unwrap(), "BERT");
        assert!(resolve_model("nope").is_err());
        assert_eq!(resolve_accelerator("SPARK").unwrap(), AcceleratorKind::Spark);
        assert!(resolve_accelerator("nope").unwrap_err().contains("expected one of"));
    }

    #[test]
    fn simulate_response_extends_the_report() {
        let job = resolve_sim_job("resnet18", "spark").unwrap();
        let config = SimConfig::default();
        let report =
            spark_sim::Accelerator::new(job.kind).run(&job.workload, &job.precision, &config);
        let body = simulate_response(&report, &job.workload, &config).to_string_compact();
        let v = spark_util::json::parse(&body).unwrap();
        assert_eq!(v.get("model").unwrap().as_str(), Some("ResNet18"));
        assert!(v.get("total_cycles").unwrap().as_f64().unwrap() > 0.0);
        assert!(v.get("latency_ms").unwrap().as_f64().unwrap() > 0.0);
        assert!(v.get("gmacs_per_joule").unwrap().as_f64().unwrap() > 0.0);
        assert!(v.get("layers").unwrap().as_array().unwrap().len() > 1);
    }

    #[test]
    fn values_from_json_parses_and_rejects() {
        let ok = spark_util::json::parse("{\"values\": [1.0, -2.5, 3]}").unwrap();
        assert_eq!(values_from_json(&ok).unwrap(), vec![1.0, -2.5, 3.0]);
        let missing = spark_util::json::parse("{\"nope\": 1}").unwrap();
        assert!(values_from_json(&missing).is_err());
        let bad = spark_util::json::parse("{\"values\": [1, \"x\"]}").unwrap();
        assert!(values_from_json(&bad).is_err());
    }
}
