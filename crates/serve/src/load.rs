//! Open-loop load harness: seeded schedules, coordinated-omission-free
//! latency, and a JSON report the CI tail-latency gates consume.
//!
//! ## Open loop, not closed loop
//!
//! The PR 4 serving bench was *closed-loop*: N clients fire, wait for a
//! completion, then fire again. A closed-loop client slows down exactly
//! when the server does, so queueing delay hides — offered load
//! gracefully collapses to whatever the server can absorb, and the
//! measured p99 describes a load that no longer resembles the one you
//! asked about. That distortion is *coordinated omission*: the samples
//! most damning for the tail are the ones a closed loop never sends.
//!
//! This harness is open-loop: requests fire on a pre-built, seeded
//! schedule (Poisson arrivals, Zipf-skewed tenant and payload
//! popularity, blended endpoint mix) regardless of completions, and
//! every latency is measured from the request's *intended* send time —
//! if an injector falls behind because the server stalled, that stall
//! lands in the histogram instead of silently stretching the schedule.
//!
//! ## Determinism
//!
//! The schedule is a pure function of [`LoadConfig`]: same seed, same
//! byte-for-byte [`schedule_dump`], same [`schedule_digest`] — which CI
//! verifies by diffing two dumps. Only the measured latencies vary
//! between runs; the *work* never does.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use spark_util::dist::{Exp, Zipf};
use spark_util::json::Value;
use spark_util::{Histogram, Rng};

use crate::api;
use crate::http::{client_call, client_request_with_headers, ClientError};

/// The endpoints the blended workload exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/encode`.
    Encode,
    /// `POST /v1/decode`.
    Decode,
    /// `POST /v1/analyze`.
    Analyze,
    /// `POST /v1/infer`.
    Infer,
    /// `POST /v1/simulate` — the heavyweight call; never drawn by the
    /// blended mix, only fired by the designated flooder (see
    /// [`LoadConfig::flood_rps`]).
    Simulate,
    /// `GET /v1/tensors/<name>` — reads a stored encoded tensor off the
    /// blockstore; drawn only when [`LoadConfig::tensor_mix`] is nonzero.
    TensorGet,
    /// `PUT /v1/tensors/<name>` — encodes and persists a tensor; drawn
    /// only when [`LoadConfig::tensor_mix`] is nonzero.
    TensorPut,
}

/// All endpoints the harness can fire; the first four form the blended
/// mix, simulate is flood-only, and the tensor pair joins the mix when
/// [`LoadConfig::tensor_mix`] is nonzero.
pub const ENDPOINTS: [Endpoint; 7] = [
    Endpoint::Encode,
    Endpoint::Decode,
    Endpoint::Analyze,
    Endpoint::Infer,
    Endpoint::Simulate,
    Endpoint::TensorGet,
    Endpoint::TensorPut,
];

/// Cumulative endpoint mix: 35% encode, 25% decode, 25% analyze,
/// 15% infer — encode-heavy like the paper's serving story, with enough
/// decode/infer to keep every pipeline warm. When `tensor_mix` carves out
/// a store slice, the remainder is rescaled through this same CDF so a
/// zero `tensor_mix` reproduces historical schedules bit-for-bit.
const MIX_CDF: [f64; 4] = [0.35, 0.60, 0.85, 1.0];

/// Share of the tensor slice that reads (`GET`) rather than writes
/// (`PUT`): the store is read-mostly in serving, 4 reads per write.
const TENSOR_GET_SHARE: f64 = 0.8;

impl Endpoint {
    /// Request path. The tensor endpoints append `/<name>` at send time
    /// (see [`tensor_path`]); this is their collection prefix.
    pub fn path(self) -> &'static str {
        match self {
            Endpoint::Encode => "/v1/encode",
            Endpoint::Decode => "/v1/decode",
            Endpoint::Analyze => "/v1/analyze",
            Endpoint::Infer => "/v1/infer",
            Endpoint::Simulate => "/v1/simulate",
            Endpoint::TensorGet | Endpoint::TensorPut => "/v1/tensors",
        }
    }

    /// Short name used in dumps and reports.
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Encode => "encode",
            Endpoint::Decode => "decode",
            Endpoint::Analyze => "analyze",
            Endpoint::Infer => "infer",
            Endpoint::Simulate => "simulate",
            Endpoint::TensorGet => "tensor_get",
            Endpoint::TensorPut => "tensor_put",
        }
    }

    /// HTTP method the harness uses for this endpoint.
    pub fn method(self) -> &'static str {
        match self {
            Endpoint::TensorGet => "GET",
            Endpoint::TensorPut => "PUT",
            _ => "POST",
        }
    }

    fn index(self) -> usize {
        match self {
            Endpoint::Encode => 0,
            Endpoint::Decode => 1,
            Endpoint::Analyze => 2,
            Endpoint::Infer => 3,
            Endpoint::Simulate => 4,
            Endpoint::TensorGet => 5,
            Endpoint::TensorPut => 6,
        }
    }
}

/// The stored-tensor name the harness addresses for payload rank `i` —
/// the Zipf payload pick doubles as the tensor-name pick, so reads skew
/// onto a hot head exactly like real model traffic.
pub fn tensor_path(i: u32) -> String {
    format!("/v1/tensors/load-{i:04}")
}

/// Knobs for one load run. The schedule is a pure function of this
/// struct, so two runs with equal configs do identical work.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Seed for arrivals, tenant/payload picks, and payload contents.
    pub seed: u64,
    /// Offered request rate (Poisson arrival intensity), in req/s.
    pub offered_rps: f64,
    /// Schedule horizon; ~`offered_rps * duration` events are generated.
    pub duration: Duration,
    /// Number of distinct tenants.
    pub tenants: usize,
    /// Zipf exponent for tenant popularity (0 = uniform).
    pub tenant_skew: f64,
    /// Number of distinct pre-built tensor payloads.
    pub payloads: usize,
    /// Zipf exponent for payload popularity.
    pub payload_skew: f64,
    /// Smallest payload size, in tensor values.
    pub payload_base_values: usize,
    /// Size increment between consecutive payload ranks, in values.
    pub payload_step_values: usize,
    /// Flood overlay: a dedicated noisy-neighbor tenant (always tenant
    /// index 0) firing its own Poisson stream of [`flood_endpoint`]
    /// requests at this rate, on top of the blended mix. `0` disables
    /// the flood and tenant 0 becomes an ordinary Zipf head.
    ///
    /// [`flood_endpoint`]: LoadConfig::flood_endpoint
    pub flood_rps: f64,
    /// What the flooder sends; [`Endpoint::Simulate`] is the expensive
    /// choice that models a tenant monopolizing compute.
    pub flood_endpoint: Endpoint,
    /// Fraction of mix events redirected at the `/v1/tensors` store CRUD
    /// (80% GET / 20% PUT, names Zipf-picked like payloads). `0.0`
    /// (default) reproduces pre-store schedules byte-for-byte — the
    /// endpoint draw consumes the same single uniform either way.
    pub tensor_mix: f64,
    /// Injector threads firing the schedule.
    pub injectors: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            seed: 0x5134_10AD,
            offered_rps: 200.0,
            duration: Duration::from_secs(2),
            tenants: 64,
            tenant_skew: 1.1,
            payloads: 16,
            payload_skew: 1.0,
            payload_base_values: 48,
            payload_step_values: 16,
            flood_rps: 0.0,
            flood_endpoint: Endpoint::Simulate,
            tensor_mix: 0.0,
            injectors: 8,
        }
    }
}

/// One scheduled request: fire `endpoint` as `tenant` with `payload`,
/// `at_us` microseconds after the run starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Intended send time, µs from run start.
    pub at_us: u64,
    /// Tenant index (rendered as `lt-<idx>`).
    pub tenant: u32,
    /// Which endpoint to hit.
    pub endpoint: Endpoint,
    /// Which pre-built payload to send.
    pub payload: u32,
}

/// The tenant id string the harness sends for tenant index `i`.
pub fn tenant_name(i: u32) -> String {
    format!("lt-{i:04}")
}

/// Builds the deterministic request schedule for `cfg`.
///
/// # Errors
///
/// Invalid sampler parameters (non-positive rate, zero tenants).
pub fn build_schedule(cfg: &LoadConfig) -> Result<Vec<Event>, String> {
    let arrivals = Exp::new(cfg.offered_rps).map_err(|e| format!("offered_rps: {e}"))?;
    let tenant_pick =
        Zipf::new(cfg.tenants.max(1), cfg.tenant_skew).map_err(|e| format!("tenants: {e}"))?;
    let payload_pick =
        Zipf::new(cfg.payloads.max(1), cfg.payload_skew).map_err(|e| format!("payloads: {e}"))?;
    let horizon_s = cfg.duration.as_secs_f64();
    let flooding = cfg.flood_rps > 0.0;
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut t = 0.0f64;
    let mut events = Vec::new();
    loop {
        t += arrivals.sample(&mut rng);
        if t >= horizon_s {
            break;
        }
        // With a flood overlay, tenant 0 is reserved for the flooder and
        // the blended mix occupies indices 1..=tenants.
        let tenant = tenant_pick.sample_index(&mut rng) as u32 + u32::from(flooding);
        let payload = payload_pick.sample_index(&mut rng) as u32;
        // One uniform decides the endpoint whether or not a tensor slice
        // is configured: `u < tensor_mix` goes to the store (GET-heavy),
        // the remainder rescales onto the classic CDF. With
        // `tensor_mix == 0` the rescale is the identity, so historical
        // schedules reproduce bit-for-bit.
        let u = rng.gen_f64();
        let tensor_mix = cfg.tensor_mix.clamp(0.0, 0.99);
        let endpoint = if u < tensor_mix {
            if u < tensor_mix * TENSOR_GET_SHARE {
                Endpoint::TensorGet
            } else {
                Endpoint::TensorPut
            }
        } else {
            let v = (u - tensor_mix) / (1.0 - tensor_mix);
            ENDPOINTS[MIX_CDF.iter().position(|&c| v < c).unwrap_or(3)]
        };
        events.push(Event { at_us: (t * 1e6) as u64, tenant, endpoint, payload });
    }
    if flooding {
        let flood = Exp::new(cfg.flood_rps).map_err(|e| format!("flood_rps: {e}"))?;
        let mut rng = Rng::seed_from_u64(cfg.seed ^ 0xF100_D5EE_D000_0001);
        let mut t = 0.0f64;
        loop {
            t += flood.sample(&mut rng);
            if t >= horizon_s {
                break;
            }
            events.push(Event {
                at_us: (t * 1e6) as u64,
                tenant: 0,
                endpoint: cfg.flood_endpoint,
                payload: 0,
            });
        }
        events.sort_by_key(|e| e.at_us);
    }
    Ok(events)
}

/// Renders the schedule as one line per event — the byte-identical
/// artifact CI diffs across runs.
pub fn schedule_dump(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 24);
    for e in events {
        out.push_str(&format!(
            "{} {} {} {}\n",
            e.at_us,
            e.tenant,
            e.endpoint.name(),
            e.payload
        ));
    }
    out
}

/// FNV-1a digest of a schedule dump, as fixed-width hex. Uses the
/// workspace's consolidated [`spark_util::fnv`] implementation;
/// `digest_is_pinned` holds a golden value so CI's byte-reproducibility
/// contract survives refactors of the hash.
pub fn schedule_digest(dump: &str) -> String {
    format!("{:016x}", spark_util::fnv::fnv1a(dump.as_bytes()))
}

/// Pre-rendered request bodies, one set per payload index. Building them
/// up front keeps the injector hot path at "pick slice, send" — no JSON
/// rendering or encoding inside the measured window.
struct Payloads {
    /// `{"values": [...]}` bodies for encode/analyze.
    values_json: Vec<Vec<u8>>,
    /// `{"stream_hex": "..."}` bodies for decode (valid SPARK streams).
    decode_json: Vec<Vec<u8>>,
    /// `{"values": [...]}` bodies of exactly `INFER_INPUTS` values.
    infer_json: Vec<Vec<u8>>,
    /// The one `/v1/simulate` body the flooder fires.
    simulate_json: Vec<u8>,
}

impl Payloads {
    fn build(cfg: &LoadConfig) -> Result<Payloads, String> {
        let n = cfg.payloads.max(1);
        let mut values_json = Vec::with_capacity(n);
        let mut decode_json = Vec::with_capacity(n);
        let mut infer_json = Vec::with_capacity(n);
        for i in 0..n {
            let mut rng = Rng::seed_from_u64(cfg.seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
            // Popular payloads (low rank) are smaller — the common case
            // in serving is many small tensors, few large ones.
            let len = cfg.payload_base_values.max(1) + cfg.payload_step_values * (i % 12);
            let values: Vec<f32> =
                (0..len).map(|_| (rng.gen_f64() * 4.0 - 2.0) as f32).collect();
            values_json.push(render_values(&values).into_bytes());
            let codes = api::quantize_codes(&values)?;
            let encoded = spark_codec::encode_tensor(&codes.codes);
            let hex = api::stream_to_hex(&encoded.stream);
            decode_json.push(format!("{{\"stream_hex\": \"{hex}\"}}").into_bytes());
            let infer_values: Vec<f32> =
                (0..api::INFER_INPUTS).map(|_| (rng.gen_f64() * 4.0 - 2.0) as f32).collect();
            infer_json.push(render_values(&infer_values).into_bytes());
        }
        let simulate_json = b"{\"model\": \"resnet18\", \"accelerator\": \"spark\"}".to_vec();
        Ok(Payloads { values_json, decode_json, infer_json, simulate_json })
    }

    fn body(&self, endpoint: Endpoint, payload: u32) -> &[u8] {
        let list = match endpoint {
            // A tensor PUT persists the same values bodies encode sees;
            // a GET carries no body at all.
            Endpoint::Encode | Endpoint::Analyze | Endpoint::TensorPut => &self.values_json,
            Endpoint::Decode => &self.decode_json,
            Endpoint::Infer => &self.infer_json,
            Endpoint::Simulate => return &self.simulate_json,
            Endpoint::TensorGet => return b"",
        };
        let i = (payload as usize).min(list.len().saturating_sub(1));
        list.get(i).map(Vec::as_slice).unwrap_or(b"{}")
    }
}

fn render_values(values: &[f32]) -> String {
    let items: Vec<String> = values.iter().map(f32::to_string).collect();
    format!("{{\"values\": [{}]}}", items.join(", "))
}

/// Status classes the harness tallies per endpoint. The final four slots
/// split transport failures by mode — a kill-window analysis needs to
/// know *how* requests died (connect-refused means the process is gone,
/// read-timeout means it hung, short-body means it died mid-response).
const STATUS_SLOTS: usize = 11;
const STATUS_NAMES: [&str; STATUS_SLOTS] = [
    "ok_200",
    "bad_400",
    "timeout_408",
    "shed_429",
    "err_500",
    "shed_503",
    "other",
    "transport_connect",
    "transport_timeout",
    "transport_short",
    "transport_other",
];

/// First of the transport slots; slots `TRANSPORT_BASE..STATUS_SLOTS`
/// sum to the report's aggregate `transport_errors`.
const TRANSPORT_BASE: usize = 7;

fn status_slot(status: u16) -> usize {
    match status {
        200 => 0,
        400 => 1,
        408 => 2,
        429 => 3,
        500 => 4,
        503 => 5,
        _ => 6,
    }
}

fn transport_slot(e: &ClientError) -> usize {
    match e {
        ClientError::Connect(_) => TRANSPORT_BASE,
        ClientError::Timeout(_) => TRANSPORT_BASE + 1,
        ClientError::ShortBody(_) => TRANSPORT_BASE + 2,
        ClientError::Protocol(_) => TRANSPORT_BASE + 3,
    }
}

/// Per-endpoint tallies: status counts plus the success-latency
/// histogram (measured from intended send time).
struct EndpointTally {
    statuses: [AtomicU64; STATUS_SLOTS],
    ok_latency_us: Histogram,
}

impl EndpointTally {
    fn new() -> Self {
        Self {
            statuses: std::array::from_fn(|_| AtomicU64::new(0)),
            ok_latency_us: Histogram::new(),
        }
    }

    fn sent(&self) -> u64 {
        self.statuses.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }
}

/// Everything one load run measured, plus the schedule identity that
/// makes it reproducible.
pub struct LoadReport {
    /// The config the run used.
    pub config: LoadConfig,
    /// Events in the schedule (== requests fired).
    pub offered: u64,
    /// Digest of the schedule dump.
    pub digest: String,
    /// Wall-clock time from first intended send to last completion.
    pub duration_s: f64,
    /// Responses received (any status) per second of wall time.
    pub achieved_rps: f64,
    /// 200 responses per second of wall time.
    pub ok_rps: f64,
    /// 200 responses.
    pub ok: u64,
    /// 429 quota sheds.
    pub shed_429: u64,
    /// 503 queue sheds.
    pub shed_503: u64,
    /// Transport-level failures, all modes summed (the key the CI
    /// `transport_errors == 0` gate greps).
    pub transport_errors: u64,
    /// Connect-refused/unreachable failures — the process is *gone*.
    pub transport_connect: u64,
    /// Read/write timeouts — the process accepted but hung.
    pub transport_timeout: u64,
    /// Connection died mid-response (reset/EOF before the promised body).
    pub transport_short: u64,
    /// Anything else (malformed status line, protocol violations).
    pub transport_other: u64,
    /// p50 of success latency, µs from intended send.
    pub ok_p50_us: u64,
    /// p99 of success latency.
    pub ok_p99_us: u64,
    /// p999 of success latency.
    pub ok_p999_us: u64,
    /// Events addressed to the hottest tenant (Zipf rank 1).
    pub hot_offered: u64,
    /// 200s for the hottest tenant.
    pub hot_ok: u64,
    /// 429s for the hottest tenant.
    pub hot_429: u64,
    /// Events addressed to every other tenant.
    pub cold_offered: u64,
    /// 200s for the non-head tenants.
    pub cold_ok: u64,
    /// p99 success latency for the non-head tenants, µs from intended
    /// send — the number the saturation search and CI gate watch: it is
    /// the tail an innocent tenant experiences while the head floods.
    pub cold_p99_us: u64,
    /// p50 for the non-head tenants.
    pub cold_p50_us: u64,
    /// Per-endpoint tallies as JSON.
    endpoints_json: Value,
    /// Server-side counters scraped from `/metrics` after the run.
    pub server: Option<Value>,
}

impl LoadReport {
    /// Serializes the report (the `BENCH_load.json` payload).
    pub fn to_json(&self) -> Value {
        let c = &self.config;
        Value::object([
            (
                "config",
                Value::object([
                    ("seed", Value::Num(c.seed as f64)),
                    ("offered_rps", Value::Num(c.offered_rps)),
                    ("duration_s", Value::Num(c.duration.as_secs_f64())),
                    ("tenants", Value::Num(c.tenants as f64)),
                    ("tenant_skew", Value::Num(c.tenant_skew)),
                    ("payloads", Value::Num(c.payloads as f64)),
                    ("payload_skew", Value::Num(c.payload_skew)),
                    ("tensor_mix", Value::Num(c.tensor_mix)),
                    ("injectors", Value::Num(c.injectors as f64)),
                ]),
            ),
            ("schedule_digest", Value::Str(self.digest.clone())),
            ("offered", Value::Num(self.offered as f64)),
            ("duration_s", Value::Num(self.duration_s)),
            ("achieved_rps", Value::Num(self.achieved_rps)),
            ("ok_rps", Value::Num(self.ok_rps)),
            ("ok", Value::Num(self.ok as f64)),
            ("shed_429", Value::Num(self.shed_429 as f64)),
            ("shed_503", Value::Num(self.shed_503 as f64)),
            ("transport_errors", Value::Num(self.transport_errors as f64)),
            (
                "transport",
                Value::object([
                    ("connect", Value::Num(self.transport_connect as f64)),
                    ("timeout", Value::Num(self.transport_timeout as f64)),
                    ("short_body", Value::Num(self.transport_short as f64)),
                    ("other", Value::Num(self.transport_other as f64)),
                ]),
            ),
            ("ok_p50_us", Value::Num(self.ok_p50_us as f64)),
            ("ok_p99_us", Value::Num(self.ok_p99_us as f64)),
            ("ok_p999_us", Value::Num(self.ok_p999_us as f64)),
            // Flat duplicate of cold_tenants.ok_p99_us: the one key the
            // CI tail-latency gate greps, so it must be unique in the
            // document.
            ("cold_p99_us", Value::Num(self.cold_p99_us as f64)),
            (
                "hot_tenant",
                Value::object([
                    ("offered", Value::Num(self.hot_offered as f64)),
                    ("ok", Value::Num(self.hot_ok as f64)),
                    ("shed_429", Value::Num(self.hot_429 as f64)),
                ]),
            ),
            (
                "cold_tenants",
                Value::object([
                    ("offered", Value::Num(self.cold_offered as f64)),
                    ("ok", Value::Num(self.cold_ok as f64)),
                    ("ok_p50_us", Value::Num(self.cold_p50_us as f64)),
                    ("ok_p99_us", Value::Num(self.cold_p99_us as f64)),
                ]),
            ),
            ("endpoints", self.endpoints_json.clone()),
            ("server", self.server.clone().unwrap_or(Value::Null)),
        ])
    }
}

/// Fires `cfg`'s schedule at `addr` open-loop and collects the report.
/// Latency is measured from each event's *intended* send time, so
/// injector or server stalls surface in the tail instead of hiding.
///
/// # Errors
///
/// Schedule/payload construction failures. Transport errors during the
/// run are tallied, not returned.
pub fn run_load(addr: &str, cfg: &LoadConfig) -> Result<LoadReport, String> {
    let events = build_schedule(cfg)?;
    let digest = schedule_digest(&schedule_dump(&events));
    let payloads = Payloads::build(cfg)?;
    let tenant_names: Vec<String> =
        (0..cfg.tenants.max(1) as u32 + 1).map(tenant_name).collect();
    // Tensor request paths, pre-rendered like the bodies: the payload
    // rank doubles as the stored-tensor name, so Zipf-popular payloads
    // are also the hot names on the store's read path.
    let tensor_paths: Vec<String> =
        (0..cfg.payloads.max(1) as u32).map(tensor_path).collect();
    let tallies: Vec<EndpointTally> = (0..ENDPOINTS.len()).map(|_| EndpointTally::new()).collect();
    let all_ok = Histogram::new();
    // Hot = the Zipf head (tenant 0); cold = everyone else. The split is
    // what lets the saturation bench ask "what tail do innocent tenants
    // see while the head floods?".
    let cold_ok_hist = Histogram::new();
    let hot_counts: [AtomicU64; 3] = std::array::from_fn(|_| AtomicU64::new(0));
    let cold_counts: [AtomicU64; 2] = std::array::from_fn(|_| AtomicU64::new(0));
    let injectors = cfg.injectors.max(1);

    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..injectors {
            let events = &events;
            let payloads = &payloads;
            let tenant_names = &tenant_names;
            let tensor_paths = &tensor_paths;
            let tallies = &tallies;
            let all_ok = &all_ok;
            let cold_ok_hist = &cold_ok_hist;
            let hot_counts = &hot_counts;
            let cold_counts = &cold_counts;
            scope.spawn(move || {
                for e in events.iter().skip(worker).step_by(injectors) {
                    let intended = t0 + Duration::from_micros(e.at_us);
                    let now = Instant::now();
                    if intended > now {
                        std::thread::sleep(intended - now);
                    }
                    let tenant = tenant_names
                        .get(e.tenant as usize)
                        .map(String::as_str)
                        .unwrap_or("lt-0000");
                    let body = payloads.body(e.endpoint, e.payload);
                    let path = match e.endpoint {
                        Endpoint::TensorGet | Endpoint::TensorPut => tensor_paths
                            .get(e.payload as usize)
                            .map(String::as_str)
                            .unwrap_or("/v1/tensors/load-0000"),
                        ep => ep.path(),
                    };
                    let outcome = client_call(
                        addr,
                        e.endpoint.method(),
                        path,
                        "application/json",
                        &[("X-Spark-Tenant", tenant)],
                        body,
                    );
                    let latency_us =
                        (Instant::now().saturating_duration_since(intended).as_micros() as u64)
                            .max(1);
                    let tally = &tallies[e.endpoint.index()];
                    let hot = e.tenant == 0;
                    if hot {
                        hot_counts[0].fetch_add(1, Ordering::Relaxed);
                    } else {
                        cold_counts[0].fetch_add(1, Ordering::Relaxed);
                    }
                    match outcome {
                        Ok(resp) => {
                            let status = resp.status;
                            let slot = status_slot(status);
                            tally.statuses[slot].fetch_add(1, Ordering::Relaxed);
                            if status == 200 {
                                tally.ok_latency_us.record(latency_us);
                                all_ok.record(latency_us);
                                if hot {
                                    hot_counts[1].fetch_add(1, Ordering::Relaxed);
                                } else {
                                    cold_counts[1].fetch_add(1, Ordering::Relaxed);
                                    cold_ok_hist.record(latency_us);
                                }
                            } else if status == 429 && hot {
                                hot_counts[2].fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(err) => {
                            tally.statuses[transport_slot(&err)].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let duration_s = t0.elapsed().as_secs_f64().max(1e-9);

    let server = scrape_server(addr);
    let total: u64 = tallies.iter().map(EndpointTally::sent).sum();
    let ok: u64 = tallies.iter().map(|t| t.statuses[0].load(Ordering::Relaxed)).sum();
    let shed_429: u64 = tallies.iter().map(|t| t.statuses[3].load(Ordering::Relaxed)).sum();
    let shed_503: u64 = tallies.iter().map(|t| t.statuses[5].load(Ordering::Relaxed)).sum();
    let transport_by_mode: [u64; STATUS_SLOTS - TRANSPORT_BASE] = std::array::from_fn(|i| {
        tallies
            .iter()
            .map(|t| t.statuses[TRANSPORT_BASE + i].load(Ordering::Relaxed))
            .sum()
    });
    let transport: u64 = transport_by_mode.iter().sum();

    let endpoints_json = Value::object(ENDPOINTS.iter().map(|&ep| {
        let t = &tallies[ep.index()];
        let statuses = Value::object(
            STATUS_NAMES
                .iter()
                .zip(&t.statuses)
                .map(|(name, v)| (*name, Value::Num(v.load(Ordering::Relaxed) as f64))),
        );
        (
            ep.name(),
            Value::object([
                ("sent", Value::Num(t.sent() as f64)),
                ("statuses", statuses),
                ("ok_p50_us", Value::Num(t.ok_latency_us.quantile(0.50) as f64)),
                ("ok_p99_us", Value::Num(t.ok_latency_us.quantile(0.99) as f64)),
                ("ok_p999_us", Value::Num(t.ok_latency_us.quantile(0.999) as f64)),
            ]),
        )
    }));

    Ok(LoadReport {
        config: cfg.clone(),
        offered: events.len() as u64,
        digest,
        duration_s,
        achieved_rps: total as f64 / duration_s,
        ok_rps: ok as f64 / duration_s,
        ok,
        shed_429,
        shed_503,
        transport_errors: transport,
        transport_connect: transport_by_mode[0],
        transport_timeout: transport_by_mode[1],
        transport_short: transport_by_mode[2],
        transport_other: transport_by_mode[3],
        ok_p50_us: all_ok.quantile(0.50),
        ok_p99_us: all_ok.quantile(0.99),
        ok_p999_us: all_ok.quantile(0.999),
        hot_offered: hot_counts[0].load(Ordering::Relaxed),
        hot_ok: hot_counts[1].load(Ordering::Relaxed),
        hot_429: hot_counts[2].load(Ordering::Relaxed),
        cold_offered: cold_counts[0].load(Ordering::Relaxed),
        cold_ok: cold_counts[1].load(Ordering::Relaxed),
        cold_p99_us: cold_ok_hist.quantile(0.99),
        cold_p50_us: cold_ok_hist.quantile(0.50),
        endpoints_json,
        server,
    })
}

/// Best-effort scrape of the server's own counters after a run — the CI
/// `panics == 0` gate reads these.
fn scrape_server(addr: &str) -> Option<Value> {
    let (status, body) =
        client_request_with_headers(addr, "GET", "/metrics", "", &[], b"").ok()?;
    if status != 200 {
        return None;
    }
    let v = spark_util::json::parse(std::str::from_utf8(&body).ok()?).ok()?;
    let pick = |section: &str, name: &str| -> Value {
        v.get(section)
            .and_then(|s| s.get(name))
            .cloned()
            .unwrap_or(Value::Null)
    };
    Some(Value::object([
        ("panics_total", pick("resilience", "panics_total")),
        ("workers_respawned", pick("resilience", "workers_respawned")),
        ("rejected_503", pick("queue", "rejected_503")),
        ("rejected_429", pick("queue", "rejected_429")),
        ("accepted", pick("queue", "accepted")),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServeConfig, Server};

    fn quick() -> LoadConfig {
        LoadConfig {
            seed: 7,
            offered_rps: 400.0,
            duration: Duration::from_millis(500),
            tenants: 16,
            tenant_skew: 1.0,
            payloads: 8,
            payload_skew: 1.0,
            injectors: 4,
            ..LoadConfig::default()
        }
    }

    #[test]
    fn digest_is_pinned() {
        // Golden digests from the original in-module FNV-1a loop, before
        // it was consolidated into spark_util::fnv — CI's dump-diffing
        // contract must survive the refactor.
        assert_eq!(schedule_digest(""), "cbf29ce484222325");
        assert_eq!(
            schedule_digest("0 1 encode 0\n141 3 decode 2\n"),
            "0f1e7ea9b1906637"
        );
    }

    #[test]
    fn zero_tensor_mix_reproduces_historical_schedules() {
        // The tensor slice consumes the *same* uniform draw, so a zero
        // mix must leave every event of a pre-store schedule untouched —
        // not just the same distribution, the same bytes.
        let cfg = quick();
        assert_eq!(cfg.tensor_mix, 0.0);
        let events = build_schedule(&cfg).unwrap();
        assert!(events
            .iter()
            .all(|e| e.endpoint != Endpoint::TensorGet && e.endpoint != Endpoint::TensorPut));
        // And the arrival/tenant/payload stream is identical to a config
        // that never heard of the knob (field-for-field default).
        let dump = schedule_dump(&events);
        assert_eq!(schedule_digest(&dump), schedule_digest(&schedule_dump(&build_schedule(&cfg).unwrap())));
    }

    #[test]
    fn tensor_mix_draws_store_traffic_deterministically() {
        let cfg = LoadConfig { tensor_mix: 0.3, ..quick() };
        let a = build_schedule(&cfg).unwrap();
        let b = build_schedule(&cfg).unwrap();
        assert_eq!(schedule_dump(&a), schedule_dump(&b));
        let gets = a.iter().filter(|e| e.endpoint == Endpoint::TensorGet).count();
        let puts = a.iter().filter(|e| e.endpoint == Endpoint::TensorPut).count();
        assert!(gets > 0 && puts > 0, "{gets} gets / {puts} puts");
        assert!(gets > puts, "the store slice is read-mostly");
        // The non-tensor remainder still blends every classic endpoint.
        for ep in [Endpoint::Encode, Endpoint::Decode, Endpoint::Analyze, Endpoint::Infer] {
            assert!(a.iter().any(|e| e.endpoint == ep), "{} missing", ep.name());
        }
    }

    #[test]
    fn schedule_is_byte_identical_across_builds() {
        let cfg = quick();
        let a = build_schedule(&cfg).unwrap();
        let b = build_schedule(&cfg).unwrap();
        assert!(!a.is_empty());
        assert_eq!(schedule_dump(&a), schedule_dump(&b));
        assert_eq!(
            schedule_digest(&schedule_dump(&a)),
            schedule_digest(&schedule_dump(&b))
        );
        // A different seed is a different schedule.
        let c = build_schedule(&LoadConfig { seed: 8, ..cfg }).unwrap();
        assert_ne!(schedule_dump(&a), schedule_dump(&c));
    }

    #[test]
    fn schedule_matches_offered_rate_and_skew() {
        let cfg = LoadConfig {
            offered_rps: 1000.0,
            duration: Duration::from_secs(4),
            ..quick()
        };
        let events = build_schedule(&cfg).unwrap();
        // ~4000 Poisson arrivals; allow ±5 sigma (~±316).
        assert!(
            (events.len() as i64 - 4000).abs() < 320,
            "{} events for 4000 expected",
            events.len()
        );
        // Monotone non-decreasing intended times inside the horizon.
        for w in events.windows(2) {
            assert!(w[0].at_us <= w[1].at_us);
        }
        assert!(events.last().map(|e| e.at_us < 4_000_000).unwrap_or(true));
        // Zipf skew: tenant 0 strictly most popular.
        let mut counts = vec![0usize; cfg.tenants];
        for e in &events {
            counts[e.tenant as usize] += 1;
        }
        let top = counts[0];
        assert!(
            counts.iter().skip(1).all(|&c| c <= top),
            "tenant 0 must dominate, got {counts:?}"
        );
        // Every mix endpoint appears in a 4000-event blend; the
        // heavyweight simulate call only fires from a flood overlay.
        for ep in [Endpoint::Encode, Endpoint::Decode, Endpoint::Analyze, Endpoint::Infer] {
            assert!(
                events.iter().any(|e| e.endpoint == ep),
                "{} missing from mix",
                ep.name()
            );
        }
        assert!(events.iter().all(|e| e.endpoint != Endpoint::Simulate));
    }

    #[test]
    fn flood_overlay_reserves_tenant_zero_and_stays_sorted() {
        let cfg = LoadConfig {
            offered_rps: 500.0,
            duration: Duration::from_secs(2),
            flood_rps: 250.0,
            ..quick()
        };
        let events = build_schedule(&cfg).unwrap();
        for w in events.windows(2) {
            assert!(w[0].at_us <= w[1].at_us, "merged schedule must stay sorted");
        }
        let flood: Vec<_> = events.iter().filter(|e| e.tenant == 0).collect();
        assert!(
            flood.iter().all(|e| e.endpoint == Endpoint::Simulate),
            "tenant 0 is the flooder and only fires the flood endpoint"
        );
        assert!(
            events
                .iter()
                .filter(|e| e.tenant != 0)
                .all(|e| e.endpoint != Endpoint::Simulate),
            "mix tenants never draw the flood endpoint"
        );
        // ~500 flood events expected; 5 sigma ≈ 112.
        assert!(
            (flood.len() as i64 - 500).abs() < 120,
            "{} flood events for 500 expected",
            flood.len()
        );
        // Same config, same merged schedule.
        let again = build_schedule(&cfg).unwrap();
        assert_eq!(schedule_dump(&events), schedule_dump(&again));
    }

    #[test]
    fn payload_bodies_are_deterministic_and_valid() {
        let cfg = quick();
        let a = Payloads::build(&cfg).unwrap();
        let b = Payloads::build(&cfg).unwrap();
        for i in 0..cfg.payloads as u32 {
            for ep in ENDPOINTS {
                assert_eq!(a.body(ep, i), b.body(ep, i));
            }
        }
        // Decode bodies carry hex streams the server-side parser accepts.
        let text = std::str::from_utf8(a.body(Endpoint::Decode, 0)).unwrap();
        let v = spark_util::json::parse(text).unwrap();
        let hex = v.get("stream_hex").unwrap().as_str().unwrap();
        assert!(api::stream_from_hex(hex).is_ok());
    }

    #[test]
    fn loopback_run_accounts_for_every_event() {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            shards: 2,
            shard_workers: 2,
            queue_depth: 64,
            shard_queue: 32,
            batch_window: Duration::from_millis(1),
            max_batch: 8,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.addr().to_string();
        let cfg = LoadConfig {
            offered_rps: 150.0,
            duration: Duration::from_millis(600),
            ..quick()
        };
        let report = run_load(&addr, &cfg).unwrap();
        assert!(report.offered > 0);
        // Loopback with generous queues: every event got an HTTP answer.
        assert_eq!(report.transport_errors, 0);
        assert!(report.ok > 0, "no successes in {}", report.to_json().to_string_compact());
        assert!(report.ok_p99_us >= report.ok_p50_us);
        let v = report.to_json();
        let sent: f64 = ENDPOINTS
            .iter()
            .map(|ep| {
                v.get("endpoints")
                    .and_then(|e| e.get(ep.name()))
                    .and_then(|e| e.get("sent"))
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0)
            })
            .sum();
        assert_eq!(sent as u64, report.offered, "every event tallied exactly once");
        assert_eq!(
            report.hot_offered + report.cold_offered,
            report.offered,
            "hot/cold split partitions the schedule"
        );
        let server_side = report.server.as_ref().unwrap();
        assert_eq!(server_side.get("panics_total").unwrap().as_f64(), Some(0.0));
        server.shutdown();
        server.join();
    }

    #[test]
    fn dead_backend_failures_classify_as_connect_errors() {
        // Bind-then-drop a listener so the port is known-closed: every
        // request must land in the connect slot specifically, not the
        // old lumped transport counter's anonymous bucket.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        let cfg = LoadConfig {
            offered_rps: 80.0,
            duration: Duration::from_millis(300),
            injectors: 2,
            ..quick()
        };
        let report = run_load(&addr, &cfg).unwrap();
        assert!(report.offered > 0);
        assert_eq!(report.transport_connect, report.offered);
        assert_eq!(report.transport_errors, report.offered);
        assert_eq!(report.transport_timeout + report.transport_short + report.transport_other, 0);
        assert_eq!(report.ok, 0);
        // The JSON breakdown mirrors the typed fields.
        let v = report.to_json();
        let t = v.get("transport").unwrap();
        assert_eq!(t.get("connect").unwrap().as_f64(), Some(report.offered as f64));
        assert_eq!(t.get("short_body").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn loopback_quota_floods_are_shed_with_429() {
        // Tight per-tenant quota + heavy skew: the hot tenant must trip
        // its bucket while the run keeps succeeding for the long tail.
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            shards: 2,
            shard_workers: 2,
            queue_depth: 64,
            shard_queue: 32,
            quota_rps: 20.0,
            quota_burst: 5.0,
            batch_window: Duration::from_millis(1),
            max_batch: 8,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.addr().to_string();
        let cfg = LoadConfig {
            offered_rps: 300.0,
            duration: Duration::from_millis(800),
            tenants: 8,
            tenant_skew: 1.5,
            ..quick()
        };
        let report = run_load(&addr, &cfg).unwrap();
        assert!(
            report.shed_429 > 0,
            "hot tenant at ~150 rps against a 20 rps quota must shed: {}",
            report.to_json().to_string_compact()
        );
        assert!(report.ok > 0, "long-tail tenants must keep succeeding");
        let server_side = report.server.as_ref().unwrap();
        assert_eq!(
            server_side.get("rejected_429").unwrap().as_f64(),
            Some(report.shed_429 as f64),
            "client-observed and server-counted 429s must agree"
        );
        server.shutdown();
        server.join();
    }
}
