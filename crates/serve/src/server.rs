//! The serving core: acceptor, worker pool, batched endpoints, metrics,
//! graceful shutdown.
//!
//! Thread topology (all plain `std::thread`, sized at startup, no spawn
//! per request):
//!
//! ```text
//! acceptor ──try_send──▶ bounded conn queue ──recv──▶ workers (N)
//!     │ full → writes 503 itself                        │
//!     ▼                                                 ├─▶ encode batcher ─▶ encode_batch (LUT plan)
//!  503 + metrics                                        ├─▶ decode batcher ─▶ decode_batch (bulk engine)
//!                                                       └─▶ sim batcher    ─▶ run_batch
//! ```
//!
//! Backpressure is explicit: the conn queue is bounded and the acceptor
//! uses `try_send`, so overload turns into an immediate 503 with a JSON
//! body (and a `rejected_503` metric tick) rather than an unbounded
//! accept backlog or a silent drop.
//!
//! Shutdown is a cascade with no special-case signaling beyond one
//! atomic flag: `shutdown()` sets the flag and self-connects to wake
//! `accept()`; the acceptor exits, dropping the conn queue's only
//! sender; workers drain the queue and exit; [`Server::join`] then drops
//! the shared context (closing the batcher channels) and joins the
//! batcher threads, which drain their own queues first. Every request
//! accepted before the flag flipped gets a full response.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use spark_codec::{decode_batch, encode_batch, NibbleStream};
use spark_sim::{run_batch, SimConfig, WorkloadReport};
use spark_util::json::Value;

use crate::api::{self, SimJob};
use crate::batch::Batcher;
use crate::http::{self, HttpError, Request};
use crate::io::f32_from_bytes;
use crate::metrics::{EndpointStats, Metrics};

/// How long a worker waits on a batcher slot before answering 500. Far
/// above any sane batch time; only reachable if a batcher thread died.
const SLOT_TIMEOUT: Duration = Duration::from_secs(30);

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Bound of the accepted-connection queue; overflow answers 503.
    pub queue_depth: usize,
    /// Extra time a lone batched request waits for company.
    pub batch_window: Duration,
    /// Max requests coalesced into one batched library call.
    pub max_batch: usize,
    /// Request body cap in bytes.
    pub max_body_bytes: usize,
    /// Overall wall-clock budget for reading one request (slowloris
    /// shedding); the per-read [`http::IO_TIMEOUT`] still bounds idle gaps.
    pub request_deadline: Duration,
    /// Enables the `POST /__chaos/*` fault-injection endpoints (panic a
    /// handler, kill a worker). Off by default; chaos tests and
    /// `spark chaos` turn it on for loopback servers only.
    pub chaos_endpoints: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".into(),
            workers: 4,
            queue_depth: 64,
            batch_window: Duration::from_millis(2),
            max_batch: 32,
            max_body_bytes: 16 * 1024 * 1024,
            request_deadline: http::REQUEST_DEADLINE,
            chaos_endpoints: false,
        }
    }
}

/// Shared state every worker thread holds an `Arc` of.
struct Ctx {
    metrics: Arc<Metrics>,
    shutdown: AtomicBool,
    addr: SocketAddr,
    max_body: usize,
    deadline: Duration,
    chaos: bool,
    encode_batcher: Batcher<(Vec<u8>, f32), Value>,
    decode_batcher: Batcher<NibbleStream, Result<Value, String>>,
    sim_batcher: Batcher<SimJob, Value>,
    /// The `/v1/infer` model, weights resident as SPARK nibble streams.
    /// A mutex (not a batcher) because one fused forward pass is cheap
    /// and the layer cache in `Sequential` needs `&mut`.
    infer: Mutex<api::InferModel>,
}

/// What a worker does with its thread after one connection.
enum ConnOutcome {
    /// Keep serving.
    Done,
    /// Exit the worker thread (chaos-injected hard death; the supervisor
    /// respawns a replacement).
    ExitWorker,
}

/// A running server. Dropping it does NOT stop the threads — call
/// [`Server::shutdown`] + [`Server::join`] (or let `POST /shutdown` set
/// the flag and just `join`).
pub struct Server {
    addr: SocketAddr,
    ctx: Arc<Ctx>,
    metrics: Arc<Metrics>,
    acceptor: JoinHandle<()>,
    workers: Arc<Mutex<Vec<Option<JoinHandle<()>>>>>,
    supervisor: JoinHandle<()>,
    encode_batcher: Batcher<(Vec<u8>, f32), Value>,
    decode_batcher: Batcher<NibbleStream, Result<Value, String>>,
    sim_batcher: Batcher<SimJob, Value>,
}

impl Server {
    /// Binds, spawns the acceptor, workers, supervisor, and batchers, and
    /// returns.
    ///
    /// # Errors
    ///
    /// Bind or thread-spawn failures.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(Metrics::new());
        let sim_config = SimConfig::default();

        let encode_batcher = {
            let metrics = Arc::clone(&metrics);
            Batcher::spawn(
                "encode",
                config.batch_window,
                config.max_batch,
                config.queue_depth.max(config.max_batch),
                move |jobs: Vec<(Vec<u8>, f32)>| {
                    metrics.record_batch(jobs.len() as u64);
                    let refs: Vec<&[u8]> = jobs.iter().map(|(c, _)| c.as_slice()).collect();
                    let encoded = encode_batch(&refs);
                    encoded
                        .iter()
                        .zip(&jobs)
                        .map(|(e, (_, scale))| api::encode_response(e, *scale))
                        .collect()
                },
            )?
        };
        let decode_batcher = {
            let metrics = Arc::clone(&metrics);
            Batcher::spawn(
                "decode",
                config.batch_window,
                config.max_batch,
                config.queue_depth.max(config.max_batch),
                move |jobs: Vec<NibbleStream>| {
                    metrics.record_batch(jobs.len() as u64);
                    let refs: Vec<&NibbleStream> = jobs.iter().collect();
                    decode_batch(&refs)
                        .into_iter()
                        .map(|r| {
                            r.map(|codes| api::decode_codes_response(&codes))
                                .map_err(|e| e.to_string())
                        })
                        .collect()
                },
            )?
        };
        let sim_batcher = {
            let metrics = Arc::clone(&metrics);
            Batcher::spawn(
                "simulate",
                config.batch_window,
                config.max_batch,
                config.queue_depth.max(config.max_batch),
                move |jobs: Vec<SimJob>| {
                    metrics.record_batch(jobs.len() as u64);
                    let tuples: Vec<_> =
                        jobs.iter().map(|j| (j.kind, &j.workload, &j.precision)).collect();
                    let reports: Vec<WorkloadReport> = run_batch(&tuples, &sim_config);
                    reports
                        .iter()
                        .zip(&jobs)
                        .map(|(r, j)| api::simulate_response(r, &j.workload, &sim_config))
                        .collect()
                },
            )?
        };

        let infer = api::InferModel::new().map_err(std::io::Error::other)?;

        let ctx = Arc::new(Ctx {
            metrics: Arc::clone(&metrics),
            shutdown: AtomicBool::new(false),
            addr,
            max_body: config.max_body_bytes,
            deadline: config.request_deadline,
            chaos: config.chaos_endpoints,
            encode_batcher: encode_batcher.clone(),
            decode_batcher: decode_batcher.clone(),
            sim_batcher: sim_batcher.clone(),
            infer: Mutex::new(infer),
        });

        let (conn_tx, conn_rx) = spark_util::channel::<TcpStream>(config.queue_depth.max(1));

        let worker_count = config.workers.max(1);
        let workers: Arc<Mutex<Vec<Option<JoinHandle<()>>>>> = Arc::new(Mutex::new(
            (0..worker_count)
                .map(|i| spawn_worker(i, conn_rx.clone(), Arc::clone(&ctx)).map(Some))
                .collect::<std::io::Result<_>>()?,
        ));

        // The supervisor watches for worker threads that died (a panic
        // outside the catch boundary, or a chaos-injected exit) and
        // respawns replacements so the pool never shrinks. It holds a
        // Receiver clone, not a Sender, so it does not keep the conn
        // channel alive past the acceptor.
        let supervisor = {
            let ctx = Arc::clone(&ctx);
            let workers = Arc::clone(&workers);
            let rx = conn_rx.clone();
            std::thread::Builder::new()
                .name("spark-supervisor".into())
                .spawn(move || {
                    let mut next_id = worker_count;
                    while !ctx.shutdown.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(25));
                        let mut pool = workers.lock().unwrap_or_else(|e| e.into_inner());
                        for slot in pool.iter_mut() {
                            let finished =
                                slot.as_ref().is_some_and(std::thread::JoinHandle::is_finished);
                            // During shutdown workers finish normally as
                            // the conn channel drains; never respawn then.
                            if !finished || ctx.shutdown.load(Ordering::SeqCst) {
                                continue;
                            }
                            if let Some(dead) = slot.take() {
                                dead.join().ok();
                                if let Ok(h) =
                                    spawn_worker(next_id, rx.clone(), Arc::clone(&ctx))
                                {
                                    *slot = Some(h);
                                    ctx.metrics
                                        .workers_respawned
                                        .fetch_add(1, Ordering::Relaxed);
                                    next_id += 1;
                                }
                            }
                        }
                    }
                })?
        };
        drop(conn_rx);

        let acceptor = {
            let ctx = Arc::clone(&ctx);
            std::thread::Builder::new()
                .name("spark-acceptor".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if ctx.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let stream = match stream {
                            Ok(s) => s,
                            Err(_) => continue,
                        };
                        match conn_tx.try_send(stream) {
                            Ok(()) => ctx.metrics.note_accept(conn_tx.len() as u64),
                            Err(spark_util::par::TrySendError::Full(mut stream)) => {
                                ctx.metrics.rejected_503.fetch_add(1, Ordering::Relaxed);
                                let _ = stream.set_write_timeout(Some(http::IO_TIMEOUT));
                                let _ = http::write_json(
                                    &mut stream,
                                    503,
                                    "Service Unavailable",
                                    &error_body("server overloaded: connection queue full"),
                                );
                            }
                            Err(spark_util::par::TrySendError::Disconnected(_)) => break,
                        }
                    }
                    // conn_tx drops here; workers drain the queue and exit.
                })?
        };

        Ok(Server {
            addr,
            ctx,
            metrics,
            acceptor,
            workers,
            supervisor,
            encode_batcher,
            decode_batcher,
            sim_batcher,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Flips the shutdown flag and wakes the acceptor. Idempotent;
    /// returns immediately — pair with [`Server::join`] to drain.
    pub fn shutdown(&self) {
        request_shutdown(&self.ctx);
    }

    /// Waits for the full drain cascade: acceptor, then workers, then
    /// batchers. Blocks until a shutdown has been requested (via
    /// [`Server::shutdown`] or `POST /shutdown`) and every accepted
    /// request has been answered.
    pub fn join(self) {
        let Server {
            ctx,
            acceptor,
            workers,
            supervisor,
            encode_batcher,
            decode_batcher,
            sim_batcher,
            ..
        } = self;
        acceptor.join().ok();
        // The acceptor only exits with the shutdown flag set, so the
        // supervisor's next poll tick sees it and returns (releasing its
        // Ctx Arc — required before the batcher channels can close).
        supervisor.join().ok();
        let pool = std::mem::take(&mut *workers.lock().unwrap_or_else(|e| e.into_inner()));
        for w in pool.into_iter().flatten() {
            w.join().ok();
        }
        // Workers are gone; this Arc and the batcher handles inside it
        // are the last senders keeping the batcher channels open.
        drop(ctx);
        encode_batcher.join();
        decode_batcher.join();
        sim_batcher.join();
    }
}

/// Spawns one pool worker. The `catch_unwind` boundary is the server's
/// panic-isolation contract: a panicking handler costs its own request a
/// 500 (plus a `panics_total` tick), never the process or the pool — the
/// stream stays owned out here so the error response is still writable
/// after the unwind.
fn spawn_worker(
    id: usize,
    rx: spark_util::par::Receiver<TcpStream>,
    ctx: Arc<Ctx>,
) -> std::io::Result<JoinHandle<()>> {
    std::thread::Builder::new().name(format!("spark-worker-{id}")).spawn(move || {
        while let Some(mut stream) = rx.recv() {
            ctx.metrics.note_dequeue(rx.len() as u64);
            match catch_unwind(AssertUnwindSafe(|| handle_connection(&ctx, &mut stream))) {
                Ok(ConnOutcome::Done) => {}
                Ok(ConnOutcome::ExitWorker) => return,
                Err(_) => {
                    ctx.metrics.panics_total.fetch_add(1, Ordering::Relaxed);
                    let _ = http::write_json(
                        &mut stream,
                        500,
                        "Internal Server Error",
                        &error_body("handler panicked; worker recovered"),
                    );
                }
            }
        }
    })
}

fn request_shutdown(ctx: &Ctx) {
    ctx.shutdown.store(true, Ordering::SeqCst);
    // accept() has no timeout; a throwaway local connection wakes it so
    // it can observe the flag. Errors are fine — if the listener is
    // already gone there is nothing to wake.
    let _ = TcpStream::connect(ctx.addr);
}

fn error_body(message: &str) -> Value {
    Value::object([("error", Value::Str(message.into()))])
}

/// Outcome of routing: status triple plus which endpoint counter it hits.
struct Routed<'a> {
    status: u16,
    reason: &'static str,
    body: Value,
    stats: &'a EndpointStats,
}

fn handle_connection(ctx: &Ctx, stream: &mut TcpStream) -> ConnOutcome {
    let started = Instant::now();
    let mut outcome = ConnOutcome::Done;
    match http::read_request(stream, ctx.max_body, ctx.deadline) {
        Ok(req) => {
            // Chaos-injected hard worker death: answer first, then tell
            // the worker loop to exit its thread (the supervisor will
            // respawn). Handled here, not in route(), because it changes
            // the worker's control flow, not just the response.
            if ctx.chaos && req.method == "POST" && req.path == "/__chaos/exit-worker" {
                ctx.metrics.control.hit();
                let _ = http::write_json(
                    stream,
                    200,
                    "OK",
                    &Value::object([("status", Value::Str("worker exiting".into()))]),
                );
                outcome = ConnOutcome::ExitWorker;
            } else {
                let routed = route(ctx, &req);
                routed.stats.hit();
                if routed.status >= 400 {
                    routed.stats.error();
                }
                let _ = http::write_json(stream, routed.status, routed.reason, &routed.body);
            }
        }
        Err(HttpError::Io(_)) => {
            // Peer vanished or stalled out; nothing to write, count it
            // against the unrouted bucket so it is not silent.
            ctx.metrics.unrouted.hit();
            ctx.metrics.unrouted.error();
        }
        Err(e) => {
            if matches!(e, HttpError::Deadline(_)) {
                ctx.metrics.deadline_408.fetch_add(1, Ordering::Relaxed);
            }
            ctx.metrics.unrouted.hit();
            ctx.metrics.unrouted.error();
            let (status, reason, message) = e.status();
            let _ = http::write_json(stream, status, reason, &error_body(&message));
        }
    }
    ctx.metrics.latency_us.record((started.elapsed().as_micros() as u64).max(1));
    outcome
}

fn route<'a>(ctx: &'a Ctx, req: &Request) -> Routed<'a> {
    let m = &ctx.metrics;
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            // Still serving, but be honest about scars: a caught panic or
            // a respawned worker downgrades the status.
            let status = if m.degraded() { "degraded" } else { "ok" };
            ok(&m.control, Value::object([("status", Value::Str(status.into()))]))
        }
        ("GET", "/metrics") => ok(&m.control, m.to_json()),
        ("POST", "/__chaos/panic") if ctx.chaos => {
            // Deliberate unwind through the handler stack; the worker's
            // catch boundary turns this into a 500 + panics_total tick.
            // (panic_any, not the panic! macro, so the message reads as
            // injected rather than as a code defect.)
            std::panic::panic_any("chaos: injected handler panic")
        }
        ("POST", "/shutdown") => {
            request_shutdown(ctx);
            ok(&m.control, Value::object([("status", Value::Str("shutting down".into()))]))
        }
        ("POST", "/v1/encode") => match parse_values(req) {
            Ok(values) => encode_endpoint(ctx, &values),
            Err(msg) => bad_request(&m.encode, &msg),
        },
        ("POST", "/v1/analyze") => match parse_values(req) {
            Ok(values) => match api::analyze_response(&values) {
                Ok(body) => ok(&m.analyze, body),
                Err(msg) => bad_request(&m.analyze, &msg),
            },
            Err(msg) => bad_request(&m.analyze, &msg),
        },
        ("POST", "/v1/decode") => match decode_input(req) {
            Ok(hex) => decode_endpoint(ctx, &hex),
            Err(msg) => bad_request(&m.decode, &msg),
        },
        ("POST", "/v1/simulate") => simulate_endpoint(ctx, req),
        ("POST", "/v1/infer") => match parse_values(req) {
            Ok(values) => infer_endpoint(ctx, &values),
            Err(msg) => bad_request(&m.infer, &msg),
        },
        (_, "/healthz" | "/metrics" | "/shutdown" | "/v1/encode" | "/v1/analyze"
            | "/v1/decode" | "/v1/simulate" | "/v1/infer") => Routed {
            status: 405,
            reason: "Method Not Allowed",
            body: error_body(&format!("method {} not allowed on {}", req.method, req.path)),
            stats: &m.unrouted,
        },
        _ => Routed {
            status: 404,
            reason: "Not Found",
            body: error_body(&format!("no such endpoint {}", req.path)),
            stats: &m.unrouted,
        },
    }
}

fn ok(stats: &EndpointStats, body: Value) -> Routed<'_> {
    Routed { status: 200, reason: "OK", body, stats }
}

fn bad_request<'a>(stats: &'a EndpointStats, message: &str) -> Routed<'a> {
    Routed { status: 400, reason: "Bad Request", body: error_body(message), stats }
}

fn batcher_gone(stats: &EndpointStats) -> Routed<'_> {
    Routed {
        status: 500,
        reason: "Internal Server Error",
        body: error_body("batch pipeline unavailable"),
        stats,
    }
}

/// Pulls f32 values out of either a raw octet-stream body or a JSON
/// `{"values": [...]}` body, by Content-Type.
fn parse_values(req: &Request) -> Result<Vec<f32>, String> {
    if req.content_type().starts_with("application/octet-stream") {
        return f32_from_bytes(&req.body).map_err(|e| e.to_string());
    }
    let text = std::str::from_utf8(&req.body).map_err(|_| "body is not UTF-8".to_string())?;
    let body = spark_util::json::parse(text).map_err(|e| e.to_string())?;
    api::values_from_json(&body)
}

/// `/v1/decode` accepts `{"stream_hex": "..."}` or a raw text/plain hex
/// body.
fn decode_input(req: &Request) -> Result<String, String> {
    let text = std::str::from_utf8(&req.body).map_err(|_| "body is not UTF-8".to_string())?;
    if req.content_type().starts_with("application/json") {
        let body = spark_util::json::parse(text).map_err(|e| e.to_string())?;
        return body
            .get("stream_hex")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| "body must be {\"stream_hex\": \"...\"}".to_string());
    }
    Ok(text.trim().to_string())
}

fn encode_endpoint<'a>(ctx: &'a Ctx, values: &[f32]) -> Routed<'a> {
    let stats = &ctx.metrics.encode;
    let codes = match api::quantize_codes(values) {
        Ok(c) => c,
        Err(msg) => return bad_request(stats, &msg),
    };
    let scale = codes.scale;
    let Some(slot) = ctx.encode_batcher.submit((codes.codes, scale)) else {
        return batcher_gone(stats);
    };
    match slot.wait_timeout(SLOT_TIMEOUT) {
        Some(body) => ok(stats, body),
        None => batcher_gone(stats),
    }
}

/// `/v1/decode` split along the batching seam like encode: hex parsing
/// happens per-request (cheap, per-connection), the stream decode itself
/// is coalesced through the decode batcher into one
/// [`spark_codec::decode_batch`] call over the bulk engine. A malformed
/// stream (truncated long code) comes back as this request's own 400
/// without affecting batchmates.
fn decode_endpoint<'a>(ctx: &'a Ctx, hex: &str) -> Routed<'a> {
    let stats = &ctx.metrics.decode;
    let stream = match api::stream_from_hex(hex) {
        Ok(s) => s,
        Err(msg) => return bad_request(stats, &msg),
    };
    let Some(slot) = ctx.decode_batcher.submit(stream) else {
        return batcher_gone(stats);
    };
    match slot.wait_timeout(SLOT_TIMEOUT) {
        Some(Ok(body)) => ok(stats, body),
        Some(Err(msg)) => bad_request(stats, &msg),
        None => batcher_gone(stats),
    }
}

fn infer_endpoint<'a>(ctx: &'a Ctx, values: &[f32]) -> Routed<'a> {
    let stats = &ctx.metrics.infer;
    // A poisoned lock only means another request panicked mid-forward;
    // the model itself is stateless between requests (the layer caches
    // are overwritten by every forward), so serving on is sound.
    let mut model = ctx.infer.lock().unwrap_or_else(|e| e.into_inner());
    match model.infer(values) {
        Ok(body) => ok(stats, body),
        Err(msg) => bad_request(stats, &msg),
    }
}

fn simulate_endpoint<'a>(ctx: &'a Ctx, req: &Request) -> Routed<'a> {
    let stats = &ctx.metrics.simulate;
    let parsed = std::str::from_utf8(&req.body)
        .map_err(|_| "body is not UTF-8".to_string())
        .and_then(|text| spark_util::json::parse(text).map_err(|e| e.to_string()));
    let body = match parsed {
        Ok(b) => b,
        Err(msg) => return bad_request(stats, &msg),
    };
    let Some(model) = body.get("model").and_then(Value::as_str) else {
        return bad_request(stats, "body must be {\"model\": \"...\", \"accelerator\"?: \"...\"}");
    };
    let accelerator = body.get("accelerator").and_then(Value::as_str).unwrap_or("spark");
    let job = match api::resolve_sim_job(model, accelerator) {
        Ok(j) => j,
        Err(msg) => return bad_request(stats, &msg),
    };
    let Some(slot) = ctx.sim_batcher.submit(job) else {
        return batcher_gone(stats);
    };
    match slot.wait_timeout(SLOT_TIMEOUT) {
        Some(body) => ok(stats, body),
        None => batcher_gone(stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::client_request;

    fn start_test_server() -> Server {
        Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_depth: 16,
            batch_window: Duration::from_millis(1),
            max_batch: 8,
            ..ServeConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn healthz_and_metrics_respond() {
        let server = start_test_server();
        let addr = server.addr().to_string();
        let (status, body) = client_request(&addr, "GET", "/healthz", "", b"").unwrap();
        assert_eq!(status, 200);
        assert!(String::from_utf8(body).unwrap().contains("ok"));
        let (status, body) = client_request(&addr, "GET", "/metrics", "", b"").unwrap();
        assert_eq!(status, 200);
        let v = spark_util::json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        assert!(v.get("endpoints").is_some());
        server.shutdown();
        server.join();
    }

    #[test]
    fn unknown_paths_and_methods_get_404_405() {
        let server = start_test_server();
        let addr = server.addr().to_string();
        let (status, _) = client_request(&addr, "GET", "/nope", "", b"").unwrap();
        assert_eq!(status, 404);
        let (status, _) = client_request(&addr, "DELETE", "/healthz", "", b"").unwrap();
        assert_eq!(status, 405);
        server.shutdown();
        server.join();
    }

    #[test]
    fn shutdown_endpoint_stops_the_server() {
        let server = start_test_server();
        let addr = server.addr().to_string();
        let (status, _) = client_request(&addr, "POST", "/shutdown", "", b"").unwrap();
        assert_eq!(status, 200);
        // join() must return now that the flag is set — no explicit
        // shutdown() call from this side.
        server.join();
    }

    #[test]
    fn infer_loopback_is_bit_identical_to_local_model() {
        let server = start_test_server();
        let addr = server.addr().to_string();
        let values: Vec<f32> =
            (0..api::INFER_INPUTS).map(|i| ((i as f32) * 0.37).cos() * 2.0).collect();
        let body = format!(
            "{{\"values\": [{}]}}",
            values.iter().map(f32::to_string).collect::<Vec<_>>().join(", ")
        );
        let (status, reply) =
            client_request(&addr, "POST", "/v1/infer", "application/json", body.as_bytes())
                .unwrap();
        assert_eq!(status, 200, "{:?}", String::from_utf8_lossy(&reply));
        // The seed is public: building the same model locally and running
        // the same fused forward must serialize to the very same bytes —
        // outputs, argmax, and footprint accounting included.
        let local = api::InferModel::new().unwrap().infer(&values).unwrap();
        assert_eq!(String::from_utf8(reply).unwrap(), local.to_string_compact());
        server.shutdown();
        server.join();
    }

    #[test]
    fn infer_rejects_wrong_width_and_non_finite() {
        let server = start_test_server();
        let addr = server.addr().to_string();
        for body in [&b"{\"values\": [1.0, 2.0]}"[..], &b"{\"values\": []}"[..]] {
            let (status, _) =
                client_request(&addr, "POST", "/v1/infer", "application/json", body).unwrap();
            assert_eq!(status, 400);
        }
        server.shutdown();
        server.join();
    }

    #[test]
    fn bad_bodies_are_400_not_disconnects() {
        let server = start_test_server();
        let addr = server.addr().to_string();
        for (path, ct, body) in [
            ("/v1/encode", "application/json", &b"{\"values\": }"[..]),
            ("/v1/encode", "application/octet-stream", &b"abc"[..]),
            ("/v1/analyze", "application/json", &b"{}"[..]),
            ("/v1/decode", "application/json", &b"{\"stream_hex\": \"xyz\"}"[..]),
            ("/v1/simulate", "application/json", &b"{\"model\": \"NoSuchNet\"}"[..]),
        ] {
            let (status, reply) = client_request(&addr, "POST", path, ct, body).unwrap();
            assert_eq!(status, 400, "{path} {body:?} -> {reply:?}");
            let v = spark_util::json::parse(std::str::from_utf8(&reply).unwrap()).unwrap();
            assert!(v.get("error").is_some());
        }
        server.shutdown();
        server.join();
    }
}
