//! The serving core: acceptor, router pool, sharded worker pools,
//! batched endpoints, metrics, graceful shutdown.
//!
//! Thread topology (all plain `std::thread`, sized at startup, no spawn
//! per request):
//!
//! ```text
//! acceptor ──try_send──▶ conn queue ──recv──▶ routers (config.workers)
//!     │ full → 503                              │ read + parse request
//!                                               │ control endpoints inline
//!                                               │ tenant → token bucket → 429
//!                                               │ ring.shard_for(tenant)
//!                                               ├─try_send─▶ shard 0 queue ─▶ shard workers ─▶ batchers
//!                                               ├─try_send─▶ shard 1 queue ─▶ shard workers ─▶ batchers
//!                                               │ full → 503 + per-shard metric
//! ```
//!
//! Requests are assigned to a *tenant* (the `X-Spark-Tenant` header, or
//! `"default"`) and consistent-hashed onto one of `config.shards`
//! independent shard pools, each with its own bounded queue, workers,
//! micro-batchers, and metrics. Isolation is the point: a tenant that
//! floods its shard's queue gets that shard's 503s (and, with quotas on,
//! its own 429s before even reaching the queue) while tenants hashed to
//! other shards keep their latency.
//!
//! Backpressure is explicit at both tiers: the conn queue and every
//! shard queue are bounded with `try_send`, so overload turns into an
//! immediate typed 503/429 rather than an unbounded backlog. Control
//! endpoints (`/healthz`, `/metrics`, `/shutdown`) are answered by the
//! routers themselves — observability stays responsive however deep the
//! shard queues are.
//!
//! Shutdown is a cascade with no special-case signaling beyond one
//! atomic flag: `shutdown()` sets the flag and self-connects to wake
//! `accept()`; the acceptor exits, dropping the conn queue's only
//! sender; routers drain the conn queue and exit, dropping the shard
//! queue senders; shard workers drain their queues and exit;
//! [`Server::join`] then drops the shared context (closing the batcher
//! channels) and joins the batcher threads. Every request accepted
//! before the flag flipped gets a full response.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use spark_codec::{decode_batch, encode_batch, NibbleStream};
use spark_sim::{run_batch, SimConfig, WorkloadReport};
use spark_store::{BlockStore, StoreError};
use spark_util::json::Value;
use spark_util::par::{Receiver, Sender, TrySendError};

use crate::api::{self, SimJob};
use crate::batch::Batcher;
use crate::http::{self, HttpError, Request};
use crate::io::f32_from_bytes;
use crate::metrics::{EndpointStats, Metrics};
use crate::shard::{validate_tenant, TenantState, Tenants, DEFAULT_TENANT};

/// How long a worker waits on a batcher slot before answering 500. Far
/// above any sane batch time; only reachable if a batcher thread died.
const SLOT_TIMEOUT: Duration = Duration::from_secs(30);

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Router threads reading and dispatching connections.
    pub workers: usize,
    /// Bound of the accepted-connection queue; overflow answers 503.
    pub queue_depth: usize,
    /// Number of independent shard worker pools tenants hash onto.
    pub shards: usize,
    /// Worker threads per shard pool.
    pub shard_workers: usize,
    /// Bound of each shard's job queue; overflow answers 503.
    pub shard_queue: usize,
    /// Per-tenant sustained admission rate in cost units/second (a cheap
    /// request charges 1 unit; see [`endpoint_cost`]); `0` disables
    /// quotas entirely.
    pub quota_rps: f64,
    /// Per-tenant banked cost units on top of `quota_rps`.
    pub quota_burst: f64,
    /// Extra time a lone batched request waits for company.
    pub batch_window: Duration,
    /// Max requests coalesced into one batched library call.
    pub max_batch: usize,
    /// Request body cap in bytes.
    pub max_body_bytes: usize,
    /// Overall wall-clock budget for reading one request (slowloris
    /// shedding); the per-read [`http::IO_TIMEOUT`] still bounds idle gaps.
    pub request_deadline: Duration,
    /// Enables the `POST /__chaos/*` fault-injection endpoints (panic a
    /// handler, kill a shard worker). Off by default; chaos tests and
    /// `spark chaos` turn it on for loopback servers only.
    pub chaos_endpoints: bool,
    /// Directory of a persistent [`BlockStore`]. When set, the server
    /// recovers the store at startup, exposes the `/v1/tensors` CRUD
    /// plane over it, and cold-loads the `/v1/infer` model from the
    /// reserved keys ([`api::STORE_MODEL_KEYS`]) when all are present.
    pub store_dir: Option<std::path::PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".into(),
            workers: 4,
            queue_depth: 64,
            shards: 1,
            shard_workers: 4,
            shard_queue: 32,
            quota_rps: 0.0,
            quota_burst: 16.0,
            batch_window: Duration::from_millis(2),
            max_batch: 32,
            max_body_bytes: 16 * 1024 * 1024,
            request_deadline: http::REQUEST_DEADLINE,
            chaos_endpoints: false,
            store_dir: None,
        }
    }
}

/// One shard pool's private machinery: its batchers and its infer model.
/// Shards share nothing here — a wedged batcher or poisoned model mutex
/// stays that shard's problem.
struct ShardCtx {
    encode_batcher: Batcher<(Vec<u8>, f32), Value>,
    decode_batcher: Batcher<NibbleStream, Result<Value, String>>,
    sim_batcher: Batcher<SimJob, Value>,
    /// The `/v1/infer` model, weights resident as SPARK nibble streams.
    /// A mutex (not a batcher) because one fused forward pass is cheap
    /// and the layer cache in `Sequential` needs `&mut`. Seeded
    /// identically in every shard, so responses are shard-independent.
    infer: Mutex<api::InferModel>,
}

/// Shared state every router and shard worker holds an `Arc` of.
struct Ctx {
    metrics: Arc<Metrics>,
    tenants: Tenants,
    shutdown: AtomicBool,
    addr: SocketAddr,
    max_body: usize,
    deadline: Duration,
    chaos: bool,
    shards: Vec<ShardCtx>,
    /// The persistent tensor store behind `/v1/tensors`, when attached.
    /// All shards share it — the store does its own locking and group
    /// commit, so CRUD traffic from any shard interleaves safely.
    store: Option<Arc<BlockStore>>,
}

/// A parsed request in flight from a router to a shard worker.
struct ShardJob {
    stream: TcpStream,
    req: Request,
    tenant: Arc<TenantState>,
    /// When the router started reading the request — latency is
    /// end-to-end from here, queueing included.
    started: Instant,
}

/// What a shard worker does with its thread after one job.
enum JobOutcome {
    /// Keep serving.
    Done,
    /// Exit the worker thread (chaos-injected hard death; the supervisor
    /// respawns a replacement).
    ExitWorker,
}

/// A running server. Dropping it does NOT stop the threads — call
/// [`Server::shutdown`] + [`Server::join`] (or let `POST /shutdown` set
/// the flag and just `join`).
pub struct Server {
    addr: SocketAddr,
    ctx: Arc<Ctx>,
    metrics: Arc<Metrics>,
    acceptor: JoinHandle<()>,
    routers: Arc<Mutex<Vec<Option<JoinHandle<()>>>>>,
    shard_pools: Arc<Mutex<Vec<Vec<Option<JoinHandle<()>>>>>>,
    supervisor: JoinHandle<()>,
    /// Clones kept solely so `join()` can reap the batcher threads after
    /// the last in-`Ctx` handles drop.
    batcher_handles: Vec<(
        Batcher<(Vec<u8>, f32), Value>,
        Batcher<NibbleStream, Result<Value, String>>,
        Batcher<SimJob, Value>,
    )>,
}

impl Server {
    /// Binds, spawns the acceptor, routers, shard pools, supervisor, and
    /// batchers, and returns.
    ///
    /// # Errors
    ///
    /// Bind or thread-spawn failures.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shard_count = config.shards.max(1);
        let metrics = Arc::new(Metrics::with_shards(shard_count));
        let sim_config = SimConfig::default();

        // Optional persistent tensor store: recovered before any shard
        // spins up so the cold-start model load (below) and the first
        // `/v1/tensors` request both see a consistent directory.
        let store = match &config.store_dir {
            Some(dir) => {
                Some(Arc::new(BlockStore::open(dir).map_err(std::io::Error::other)?))
            }
            None => None,
        };
        // Cold start: when the store holds the complete serving model
        // under the reserved keys, every shard loads those exact nibble
        // streams instead of re-encoding from the seed. A partial model
        // is refused outright — serving half-stale weights silently would
        // break the bit-identity contract.
        let stored_model = match &store {
            Some(s) => {
                let present =
                    api::STORE_MODEL_KEYS.iter().filter(|k| s.kind_of(k).is_some()).count();
                if present == api::STORE_MODEL_KEYS.len() {
                    let mats = api::STORE_MODEL_KEYS
                        .iter()
                        .map(|k| s.get_matrix(k))
                        .collect::<Result<Vec<_>, _>>()
                        .map_err(std::io::Error::other)?;
                    Some(mats)
                } else if present > 0 {
                    return Err(std::io::Error::other(format!(
                        "store holds a partial serving model ({present} of {} reserved keys)",
                        api::STORE_MODEL_KEYS.len()
                    )));
                } else {
                    None
                }
            }
            None => None,
        };

        let mut shards = Vec::with_capacity(shard_count);
        let mut batcher_handles = Vec::with_capacity(shard_count);
        for id in 0..shard_count {
            let batch_queue = config.shard_queue.max(config.max_batch).max(1);
            let encode_batcher = {
                let metrics = Arc::clone(&metrics);
                Batcher::spawn(
                    &format!("encode-{id}"),
                    config.batch_window,
                    config.max_batch,
                    batch_queue,
                    move |jobs: Vec<(Vec<u8>, f32)>| {
                        metrics.record_batch(jobs.len() as u64);
                        let refs: Vec<&[u8]> = jobs.iter().map(|(c, _)| c.as_slice()).collect();
                        let encoded = encode_batch(&refs);
                        encoded
                            .iter()
                            .zip(&jobs)
                            .map(|(e, (_, scale))| api::encode_response(e, *scale))
                            .collect()
                    },
                )?
            };
            let decode_batcher = {
                let metrics = Arc::clone(&metrics);
                Batcher::spawn(
                    &format!("decode-{id}"),
                    config.batch_window,
                    config.max_batch,
                    batch_queue,
                    move |jobs: Vec<NibbleStream>| {
                        metrics.record_batch(jobs.len() as u64);
                        let refs: Vec<&NibbleStream> = jobs.iter().collect();
                        decode_batch(&refs)
                            .into_iter()
                            .map(|r| {
                                r.map(|codes| api::decode_codes_response(&codes))
                                    .map_err(|e| e.to_string())
                            })
                            .collect()
                    },
                )?
            };
            let sim_batcher = {
                let metrics = Arc::clone(&metrics);
                let sim_config = sim_config.clone();
                Batcher::spawn(
                    &format!("simulate-{id}"),
                    config.batch_window,
                    config.max_batch,
                    batch_queue,
                    move |jobs: Vec<SimJob>| {
                        metrics.record_batch(jobs.len() as u64);
                        let tuples: Vec<_> =
                            jobs.iter().map(|j| (j.kind, &j.workload, &j.precision)).collect();
                        let reports: Vec<WorkloadReport> = run_batch(&tuples, &sim_config);
                        reports
                            .iter()
                            .zip(&jobs)
                            .map(|(r, j)| api::simulate_response(r, &j.workload, &sim_config))
                            .collect()
                    },
                )?
            };
            let infer = match &stored_model {
                Some(mats) => api::InferModel::from_matrices(mats.iter().cloned()),
                None => api::InferModel::new(),
            }
            .map_err(std::io::Error::other)?;
            batcher_handles.push((
                encode_batcher.clone(),
                decode_batcher.clone(),
                sim_batcher.clone(),
            ));
            shards.push(ShardCtx {
                encode_batcher,
                decode_batcher,
                sim_batcher,
                infer: Mutex::new(infer),
            });
        }

        let ctx = Arc::new(Ctx {
            metrics: Arc::clone(&metrics),
            tenants: Tenants::new(shard_count, config.quota_rps, config.quota_burst),
            shutdown: AtomicBool::new(false),
            addr,
            max_body: config.max_body_bytes,
            deadline: config.request_deadline,
            chaos: config.chaos_endpoints,
            shards,
            store,
        });

        let (conn_tx, conn_rx) = spark_util::channel::<TcpStream>(config.queue_depth.max(1));

        // Shard job channels. Senders live with the routers (and the
        // supervisor, for respawns) — NOT in Ctx, so shard workers never
        // hold a sender to their own queue and the drain cascade can
        // close the channels.
        let mut shard_txs = Vec::with_capacity(shard_count);
        let mut shard_rxs = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let (tx, rx) = spark_util::channel::<ShardJob>(config.shard_queue.max(1));
            shard_txs.push(tx);
            shard_rxs.push(rx);
        }
        let shard_txs: Arc<Vec<Sender<ShardJob>>> = Arc::new(shard_txs);

        let shard_pools: Arc<Mutex<Vec<Vec<Option<JoinHandle<()>>>>>> = Arc::new(Mutex::new(
            shard_rxs
                .iter()
                .enumerate()
                .map(|(sid, rx)| {
                    (0..config.shard_workers.max(1))
                        .map(|w| {
                            spawn_shard_worker(sid, w, rx.clone(), Arc::clone(&ctx)).map(Some)
                        })
                        .collect::<std::io::Result<Vec<_>>>()
                })
                .collect::<std::io::Result<Vec<_>>>()?,
        ));

        let router_count = config.workers.max(1);
        let routers: Arc<Mutex<Vec<Option<JoinHandle<()>>>>> = Arc::new(Mutex::new(
            (0..router_count)
                .map(|i| {
                    spawn_router(i, conn_rx.clone(), Arc::clone(&shard_txs), Arc::clone(&ctx))
                        .map(Some)
                })
                .collect::<std::io::Result<_>>()?,
        ));

        // The supervisor watches both tiers for threads that died (a
        // panic outside the catch boundary, or a chaos-injected exit) and
        // respawns replacements so no pool ever shrinks. It holds
        // receiver clones plus the shard sender set (needed to re-arm
        // routers); its own exit on the shutdown flag releases them
        // before `join()` waits on the shard workers.
        let supervisor = {
            let ctx = Arc::clone(&ctx);
            let routers = Arc::clone(&routers);
            let shard_pools = Arc::clone(&shard_pools);
            let conn_rx = conn_rx.clone();
            let shard_txs = Arc::clone(&shard_txs);
            let shard_rxs = shard_rxs.clone();
            std::thread::Builder::new()
                .name("spark-supervisor".into())
                .spawn(move || {
                    let mut next_id = router_count + ctx.shards.len();
                    while !ctx.shutdown.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(25));
                        if ctx.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        {
                            let mut pool = routers.lock().unwrap_or_else(|e| e.into_inner());
                            for slot in pool.iter_mut() {
                                if !slot
                                    .as_ref()
                                    .is_some_and(std::thread::JoinHandle::is_finished)
                                    || ctx.shutdown.load(Ordering::SeqCst)
                                {
                                    continue;
                                }
                                if let Some(dead) = slot.take() {
                                    dead.join().ok();
                                    if let Ok(h) = spawn_router(
                                        next_id,
                                        conn_rx.clone(),
                                        Arc::clone(&shard_txs),
                                        Arc::clone(&ctx),
                                    ) {
                                        *slot = Some(h);
                                        ctx.metrics
                                            .workers_respawned
                                            .fetch_add(1, Ordering::Relaxed);
                                        ctx.metrics.note_incident();
                                        next_id += 1;
                                    }
                                }
                            }
                        }
                        let mut pools = shard_pools.lock().unwrap_or_else(|e| e.into_inner());
                        for (sid, pool) in pools.iter_mut().enumerate() {
                            for slot in pool.iter_mut() {
                                // During shutdown workers finish normally
                                // as the queues drain; never respawn then.
                                if !slot
                                    .as_ref()
                                    .is_some_and(std::thread::JoinHandle::is_finished)
                                    || ctx.shutdown.load(Ordering::SeqCst)
                                {
                                    continue;
                                }
                                if let Some(dead) = slot.take() {
                                    dead.join().ok();
                                    let rx = match shard_rxs.get(sid) {
                                        Some(rx) => rx.clone(),
                                        None => continue,
                                    };
                                    if let Ok(h) =
                                        spawn_shard_worker(sid, next_id, rx, Arc::clone(&ctx))
                                    {
                                        *slot = Some(h);
                                        ctx.metrics
                                            .workers_respawned
                                            .fetch_add(1, Ordering::Relaxed);
                                        ctx.metrics.note_incident();
                                        if let Some(s) = ctx.metrics.shards.get(sid) {
                                            s.workers_respawned
                                                .fetch_add(1, Ordering::Relaxed);
                                        }
                                        next_id += 1;
                                    }
                                }
                            }
                        }
                    }
                })?
        };
        drop(conn_rx);
        drop(shard_rxs);
        drop(shard_txs);

        let acceptor = {
            let ctx = Arc::clone(&ctx);
            std::thread::Builder::new()
                .name("spark-acceptor".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if ctx.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let stream = match stream {
                            Ok(s) => s,
                            Err(_) => continue,
                        };
                        match conn_tx.try_send(stream) {
                            Ok(()) => ctx.metrics.note_accept(conn_tx.len() as u64),
                            Err(TrySendError::Full(mut stream)) => {
                                ctx.metrics.rejected_503.fetch_add(1, Ordering::Relaxed);
                                let _ = stream.set_write_timeout(Some(http::IO_TIMEOUT));
                                let _ = http::write_json(
                                    &mut stream,
                                    503,
                                    "Service Unavailable",
                                    &error_body("server overloaded: connection queue full"),
                                );
                            }
                            Err(TrySendError::Disconnected(_)) => break,
                        }
                    }
                    // conn_tx drops here; routers drain the queue and exit.
                })?
        };

        Ok(Server {
            addr,
            ctx,
            metrics,
            acceptor,
            routers,
            shard_pools,
            supervisor,
            batcher_handles,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Flips the shutdown flag and wakes the acceptor. Idempotent;
    /// returns immediately — pair with [`Server::join`] to drain.
    pub fn shutdown(&self) {
        request_shutdown(&self.ctx);
    }

    /// Waits for the full drain cascade: acceptor, then routers, then
    /// shard workers, then batchers. Blocks until a shutdown has been
    /// requested (via [`Server::shutdown`] or `POST /shutdown`) and every
    /// accepted request has been answered.
    pub fn join(self) {
        let Server {
            ctx,
            acceptor,
            routers,
            shard_pools,
            supervisor,
            batcher_handles,
            ..
        } = self;
        acceptor.join().ok();
        // The acceptor only exits with the shutdown flag set, so the
        // supervisor's next poll tick sees it and returns — releasing its
        // conn receiver and shard senders, which the cascade below needs.
        supervisor.join().ok();
        let pool = std::mem::take(&mut *routers.lock().unwrap_or_else(|e| e.into_inner()));
        for r in pool.into_iter().flatten() {
            r.join().ok();
        }
        // Routers and supervisor are gone: every shard sender has
        // dropped, so shard workers drain their queues and exit.
        let pools =
            std::mem::take(&mut *shard_pools.lock().unwrap_or_else(|e| e.into_inner()));
        for w in pools.into_iter().flatten().flatten() {
            w.join().ok();
        }
        // Shard workers are gone; this Arc (holding every ShardCtx) and
        // the handles below are the last senders keeping the batcher
        // channels open.
        drop(ctx);
        for (e, d, s) in batcher_handles {
            e.join();
            d.join();
            s.join();
        }
    }
}

fn request_shutdown(ctx: &Ctx) {
    ctx.shutdown.store(true, Ordering::SeqCst);
    // accept() has no timeout; a throwaway local connection wakes it so
    // it can observe the flag. Errors are fine — if the listener is
    // already gone there is nothing to wake.
    let _ = TcpStream::connect(ctx.addr);
}

fn error_body(message: &str) -> Value {
    Value::object([("error", Value::Str(message.into()))])
}

/// Spawns one router. The `catch_unwind` boundary is the server's
/// panic-isolation contract: a panicking parse or dispatch costs its own
/// request a 500 (plus a `panics_total` tick), never the process or the
/// pool — the stream stays owned out here so the error response is still
/// writable after the unwind.
fn spawn_router(
    id: usize,
    rx: Receiver<TcpStream>,
    shard_txs: Arc<Vec<Sender<ShardJob>>>,
    ctx: Arc<Ctx>,
) -> std::io::Result<JoinHandle<()>> {
    std::thread::Builder::new().name(format!("spark-router-{id}")).spawn(move || {
        while let Some(mut stream) = rx.recv() {
            ctx.metrics.note_dequeue(rx.len() as u64);
            match catch_unwind(AssertUnwindSafe(|| {
                route_connection(&ctx, &shard_txs, &mut stream)
            })) {
                Ok(()) => {}
                Err(_) => {
                    ctx.metrics.panics_total.fetch_add(1, Ordering::Relaxed);
                    ctx.metrics.note_incident();
                    let _ = http::write_json(
                        &mut stream,
                        500,
                        "Internal Server Error",
                        &error_body("handler panicked; worker recovered"),
                    );
                }
            }
        }
    })
}

/// The router phase of one connection: read + parse, answer control
/// endpoints and every rejection (400/408/429/503) inline, hand real
/// work to the owning shard. Requests the router terminates get their
/// latency recorded here; forwarded ones are recorded by the shard
/// worker that writes the response.
fn route_connection(ctx: &Ctx, shard_txs: &[Sender<ShardJob>], stream: &mut TcpStream) {
    let started = Instant::now();
    let req = match http::read_request(stream, ctx.max_body, ctx.deadline) {
        Ok(req) => req,
        Err(HttpError::Io(_)) => {
            // Peer vanished or stalled out; nothing to write, count it
            // against the unrouted bucket so it is not silent.
            ctx.metrics.unrouted.hit();
            ctx.metrics.unrouted.error();
            ctx.metrics.latency_us.record(elapsed_us(started));
            return;
        }
        Err(e) => {
            if matches!(e, HttpError::Deadline(_)) {
                ctx.metrics.deadline_408.fetch_add(1, Ordering::Relaxed);
            }
            ctx.metrics.unrouted.hit();
            ctx.metrics.unrouted.error();
            let (status, reason, message) = e.status();
            let _ = http::write_json(stream, status, reason, &error_body(&message));
            ctx.metrics.latency_us.record(elapsed_us(started));
            return;
        }
    };

    // Control endpoints answer from the router so observability and
    // shutdown stay responsive no matter how deep the shard queues are.
    if let Some(routed) = control_route(ctx, &req) {
        finish(ctx, stream, started, &routed);
        return;
    }

    // Tenant extraction + admission. The quota is charged before the
    // shard queue: a flooding tenant burns router time only.
    let tenant_id = req.header("x-spark-tenant").unwrap_or(DEFAULT_TENANT);
    if let Err(msg) = validate_tenant(tenant_id) {
        let routed = Routed {
            status: 400,
            reason: "Bad Request",
            body: error_body(&format!("bad X-Spark-Tenant: {msg}")),
            stats: &ctx.metrics.unrouted,
            raw: None,
        };
        finish(ctx, stream, started, &routed);
        return;
    }
    let tenant = ctx.tenants.get(tenant_id);
    if let Err(retry_after_ms) = tenant.bucket.try_take(Instant::now(), endpoint_cost(&req.path))
    {
        tenant.rejected_429.fetch_add(1, Ordering::Relaxed);
        ctx.metrics.rejected_429.fetch_add(1, Ordering::Relaxed);
        // The hint rides both channels: `retry_after_ms` in the body for
        // our own JSON clients, and a real `Retry-After` header (whole
        // seconds, rounded up, never 0) for standard HTTP clients and the
        // fleet router's backoff.
        let retry_after_s = retry_after_ms.div_ceil(1000).max(1);
        let stats = endpoint_stats(&ctx.metrics, &req.path);
        stats.hit();
        stats.error();
        let body = Value::object([
            ("error", Value::Str("tenant quota exceeded".into())),
            ("tenant", Value::Str(tenant.id.clone())),
            ("retry_after_ms", Value::Num(retry_after_ms as f64)),
        ]);
        let _ = http::write_json_with_headers(
            stream,
            429,
            "Too Many Requests",
            &[("Retry-After", retry_after_s.to_string())],
            &body,
        );
        ctx.metrics.latency_us.record(elapsed_us(started));
        return;
    }
    tenant.hits.fetch_add(1, Ordering::Relaxed);

    let shard = tenant.shard.min(shard_txs.len().saturating_sub(1));
    let Some(tx) = shard_txs.get(shard) else {
        return;
    };
    // `stream` is owned by this function's caller as a `&mut`; the job
    // needs ownership, so swap in a cheap placeholder is not possible —
    // instead clone the handle. `try_clone` shares the underlying socket.
    let Ok(owned) = stream.try_clone() else {
        let routed = Routed {
            status: 500,
            reason: "Internal Server Error",
            body: error_body("connection handle unavailable"),
            stats: endpoint_stats(&ctx.metrics, &req.path),
            raw: None,
        };
        finish(ctx, stream, started, &routed);
        return;
    };
    let job = ShardJob { stream: owned, req, tenant, started };
    match tx.try_send(job) {
        Ok(()) => {
            if let Some(s) = ctx.metrics.shards.get(shard) {
                s.note_queue(tx.len() as u64);
            }
        }
        Err(TrySendError::Full(job)) | Err(TrySendError::Disconnected(job)) => {
            ctx.metrics.rejected_503.fetch_add(1, Ordering::Relaxed);
            if let Some(s) = ctx.metrics.shards.get(shard) {
                s.rejected_503.fetch_add(1, Ordering::Relaxed);
            }
            let routed = Routed {
                status: 503,
                reason: "Service Unavailable",
                body: Value::object([
                    ("error", Value::Str(format!("shard {shard} overloaded: queue full"))),
                    ("shard", Value::Num(shard as f64)),
                ]),
                stats: endpoint_stats(&ctx.metrics, &job.req.path),
                raw: None,
            };
            finish(ctx, stream, started, &routed);
        }
    }
}

/// Writes a router-terminated response and records its metrics.
fn finish(ctx: &Ctx, stream: &mut TcpStream, started: Instant, routed: &Routed<'_>) {
    routed.stats.hit();
    if routed.status >= 400 {
        routed.stats.error();
    }
    let _ = http::write_json(stream, routed.status, routed.reason, &routed.body);
    ctx.metrics.latency_us.record(elapsed_us(started));
}

fn elapsed_us(started: Instant) -> u64 {
    (started.elapsed().as_micros() as u64).max(1)
}

/// Admission cost of one request, in quota tokens. Cheap pipeline calls
/// charge 1; the cycle-accurate simulator charges its measured CPU
/// multiple, so a tenant's quota tracks the *work* it demands rather
/// than its request count — a low-rate flood of expensive requests
/// drains its bucket as fast as a high-rate flood of cheap ones.
pub fn endpoint_cost(path: &str) -> f64 {
    match path {
        "/v1/simulate" => 16.0,
        "/v1/infer" => 2.0,
        // Tensor CRUD hits the durable store (encode + fsync on PUT).
        p if p.starts_with("/v1/tensors") => 2.0,
        _ => 1.0,
    }
}

/// The endpoint counter a rejection on `path` is charged to.
fn endpoint_stats<'a>(m: &'a Metrics, path: &str) -> &'a EndpointStats {
    match path {
        "/v1/encode" => &m.encode,
        "/v1/decode" => &m.decode,
        "/v1/analyze" => &m.analyze,
        "/v1/simulate" => &m.simulate,
        "/v1/infer" => &m.infer,
        p if p.starts_with("/v1/tensors") => &m.tensors,
        _ => &m.unrouted,
    }
}

/// Routes the three control endpoints inline at the router; `None` means
/// the request belongs to a shard.
fn control_route<'a>(ctx: &'a Ctx, req: &Request) -> Option<Routed<'a>> {
    let m = &ctx.metrics;
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            // Still serving, but be honest about scars: a caught panic or
            // a respawned worker downgrades the status.
            let status = if m.degraded() { "degraded" } else { "ok" };
            Some(ok(
                &m.control,
                Value::object([
                    ("status", Value::Str(status.into())),
                    ("shards", Value::Num(ctx.shards.len() as f64)),
                ]),
            ))
        }
        ("GET", "/metrics") => {
            let mut snapshot = m.to_json();
            if let Value::Object(members) = &mut snapshot {
                members.push(("tenants".into(), ctx.tenants.to_json(16)));
            }
            Some(ok(&m.control, snapshot))
        }
        ("POST", "/shutdown") => {
            request_shutdown(ctx);
            Some(ok(&m.control, Value::object([("status", Value::Str("shutting down".into()))])))
        }
        _ => None,
    }
}

/// Spawns one shard worker. Same panic-isolation contract as the router:
/// a panicking handler costs its own request a 500, never the pool — the
/// supervisor additionally replaces workers that exit outright.
fn spawn_shard_worker(
    shard_id: usize,
    worker_id: usize,
    rx: Receiver<ShardJob>,
    ctx: Arc<Ctx>,
) -> std::io::Result<JoinHandle<()>> {
    std::thread::Builder::new()
        .name(format!("spark-shard-{shard_id}-{worker_id}"))
        .spawn(move || {
            while let Some(job) = rx.recv() {
                if let Some(s) = ctx.metrics.shards.get(shard_id) {
                    s.note_queue(rx.len() as u64);
                }
                if let JobOutcome::ExitWorker = handle_job(&ctx, shard_id, job) {
                    return;
                }
            }
        })
}

fn handle_job(ctx: &Ctx, shard_id: usize, job: ShardJob) -> JobOutcome {
    let ShardJob { mut stream, req, tenant: _tenant, started } = job;
    let mut outcome = JobOutcome::Done;

    // Chaos-injected hard worker death: answer first, then tell the
    // worker loop to exit its thread (the supervisor will respawn).
    // Handled here, not in route(), because it changes the worker's
    // control flow, not just the response.
    if ctx.chaos && req.method == "POST" && req.path == "/__chaos/exit-worker" {
        ctx.metrics.control.hit();
        let _ = http::write_json(
            &mut stream,
            200,
            "OK",
            &Value::object([
                ("status", Value::Str("worker exiting".into())),
                ("shard", Value::Num(shard_id as f64)),
            ]),
        );
        outcome = JobOutcome::ExitWorker;
    } else {
        match catch_unwind(AssertUnwindSafe(|| route(ctx, shard_id, &req))) {
            Ok(routed) => {
                routed.stats.hit();
                if routed.status >= 400 {
                    routed.stats.error();
                    if let Some(s) = ctx.metrics.shards.get(shard_id) {
                        s.errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
                // Raw payloads (stored container images) go out verbatim
                // as octet-stream; everything else is JSON.
                let _ = match &routed.raw {
                    Some(bytes) => http::write_response(
                        &mut stream,
                        routed.status,
                        routed.reason,
                        "application/octet-stream",
                        bytes,
                    ),
                    None => {
                        http::write_json(&mut stream, routed.status, routed.reason, &routed.body)
                    }
                };
            }
            Err(_) => {
                ctx.metrics.panics_total.fetch_add(1, Ordering::Relaxed);
                ctx.metrics.note_incident();
                if let Some(s) = ctx.metrics.shards.get(shard_id) {
                    s.errors.fetch_add(1, Ordering::Relaxed);
                }
                let _ = http::write_json(
                    &mut stream,
                    500,
                    "Internal Server Error",
                    &error_body("handler panicked; worker recovered"),
                );
            }
        }
    }

    let us = elapsed_us(started);
    ctx.metrics.latency_us.record(us);
    if let Some(s) = ctx.metrics.shards.get(shard_id) {
        s.hits.fetch_add(1, Ordering::Relaxed);
        s.latency_us.record(us);
    }
    outcome
}

/// Outcome of routing: status triple plus which endpoint counter it hits.
struct Routed<'a> {
    status: u16,
    reason: &'static str,
    body: Value,
    stats: &'a EndpointStats,
    /// When set, the response is this exact byte payload served as
    /// `application/octet-stream` and `body` is ignored — how `GET
    /// /v1/tensors/<name>` streams a stored container image verbatim.
    raw: Option<Vec<u8>>,
}

fn route<'a>(ctx: &'a Ctx, shard_id: usize, req: &Request) -> Routed<'a> {
    let m = &ctx.metrics;
    let Some(shard) = ctx.shards.get(shard_id) else {
        return Routed {
            status: 500,
            reason: "Internal Server Error",
            body: error_body("shard context missing"),
            stats: &m.unrouted,
            raw: None,
        };
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/__chaos/panic") if ctx.chaos => {
            // Deliberate unwind through the handler stack; the worker's
            // catch boundary turns this into a 500 + panics_total tick.
            // (panic_any, not the panic! macro, so the message reads as
            // injected rather than as a code defect.)
            std::panic::panic_any("chaos: injected handler panic")
        }
        ("POST", "/v1/encode") => match parse_values(req) {
            Ok(values) => encode_endpoint(ctx, shard, &values),
            Err(msg) => bad_request(&m.encode, &msg),
        },
        ("POST", "/v1/analyze") => match parse_values(req) {
            Ok(values) => match api::analyze_response(&values) {
                Ok(body) => ok(&m.analyze, body),
                Err(msg) => bad_request(&m.analyze, &msg),
            },
            Err(msg) => bad_request(&m.analyze, &msg),
        },
        ("POST", "/v1/decode") => match decode_input(req) {
            Ok(hex) => decode_endpoint(ctx, shard, &hex),
            Err(msg) => bad_request(&m.decode, &msg),
        },
        ("POST", "/v1/simulate") => simulate_endpoint(ctx, shard, req),
        ("POST", "/v1/infer") => match parse_values(req) {
            Ok(values) => infer_endpoint(ctx, shard, &values),
            Err(msg) => bad_request(&m.infer, &msg),
        },
        ("GET", "/v1/tensors") => tensors_list(ctx),
        (_, p) if p.starts_with("/v1/tensors/") => tensors_endpoint(ctx, req),
        (_, "/healthz" | "/metrics" | "/shutdown" | "/v1/encode" | "/v1/analyze"
            | "/v1/decode" | "/v1/simulate" | "/v1/infer" | "/v1/tensors") => Routed {
            status: 405,
            reason: "Method Not Allowed",
            body: error_body(&format!("method {} not allowed on {}", req.method, req.path)),
            stats: &m.unrouted,
            raw: None,
        },
        _ => Routed {
            status: 404,
            reason: "Not Found",
            body: error_body(&format!("no such endpoint {}", req.path)),
            stats: &m.unrouted,
            raw: None,
        },
    }
}

fn ok(stats: &EndpointStats, body: Value) -> Routed<'_> {
    Routed { status: 200, reason: "OK", body, stats, raw: None }
}

fn bad_request<'a>(stats: &'a EndpointStats, message: &str) -> Routed<'a> {
    Routed { status: 400, reason: "Bad Request", body: error_body(message), stats, raw: None }
}

/// 404 for any `/v1/tensors` request on a server with no store attached.
fn no_store(stats: &EndpointStats) -> Routed<'_> {
    Routed {
        status: 404,
        reason: "Not Found",
        body: error_body("no tensor store attached (start the server with --store <dir>)"),
        stats,
        raw: None,
    }
}

/// Maps a typed store error onto the HTTP status it deserves: missing
/// names are 404, caller mistakes (bad name, malformed image, kind
/// mismatch) are 400, and anything touching disk integrity is 500.
fn store_error<'a>(stats: &'a EndpointStats, e: &StoreError) -> Routed<'a> {
    let (status, reason) = match e {
        StoreError::NotFound(_) => (404, "Not Found"),
        StoreError::InvalidName(_)
        | StoreError::Container(_)
        | StoreError::Encoded(_)
        | StoreError::WrongKind { .. } => (400, "Bad Request"),
        StoreError::Io(_) | StoreError::Corrupt(_) => (500, "Internal Server Error"),
    };
    Routed { status, reason, body: error_body(&e.to_string()), stats, raw: None }
}

/// `GET /v1/tensors` — the store's live directory plus durability stats.
fn tensors_list(ctx: &Ctx) -> Routed<'_> {
    let m = &ctx.metrics;
    let Some(store) = &ctx.store else {
        return no_store(&m.tensors);
    };
    let entries: Vec<Value> = store
        .list()
        .into_iter()
        .map(|e| {
            Value::object([
                ("name", Value::Str(e.name)),
                ("kind", Value::Str(e.kind.name().into())),
                ("bytes", Value::Num(e.len as f64)),
            ])
        })
        .collect();
    let stats = store.stats();
    ok(
        &m.tensors,
        Value::object([
            ("tensors", Value::Array(entries)),
            ("generation", Value::Num(stats.generation as f64)),
            ("wal_bytes", Value::Num(stats.wal_bytes as f64)),
        ]),
    )
}

/// `PUT`/`GET`/`DELETE /v1/tensors/<name>` — CRUD over the blockstore.
///
/// PUT accepts either a JSON `{"values": [...]}` body (quantized and
/// SPARK-encoded on the way in, like `/v1/encode`) or a raw container-v2
/// image as octet-stream (validated structurally before a byte lands in
/// the WAL). GET streams the stored image back verbatim; DELETE appends a
/// tombstone. All three are durable (group-committed) before the 200.
fn tensors_endpoint<'a>(ctx: &'a Ctx, req: &Request) -> Routed<'a> {
    let m = &ctx.metrics;
    let name = &req.path["/v1/tensors/".len()..];
    let Some(store) = &ctx.store else {
        return no_store(&m.tensors);
    };
    match req.method.as_str() {
        "PUT" => {
            if req.content_type().starts_with("application/octet-stream") {
                match store.put_container(name, &req.body) {
                    Ok(elements) => ok(
                        &m.tensors,
                        Value::object([
                            ("name", Value::Str(name.into())),
                            ("kind", Value::Str("tensor".into())),
                            ("elements", Value::Num(elements as f64)),
                            ("bytes", Value::Num(req.body.len() as f64)),
                        ]),
                    ),
                    Err(e) => store_error(&m.tensors, &e),
                }
            } else {
                let values = match parse_values(req) {
                    Ok(v) => v,
                    Err(msg) => return bad_request(&m.tensors, &msg),
                };
                let codes = match api::quantize_codes(&values) {
                    Ok(c) => c,
                    Err(msg) => return bad_request(&m.tensors, &msg),
                };
                let encoded = spark_codec::encode_tensor(&codes.codes);
                match store.put_tensor(name, &encoded) {
                    Ok(()) => ok(
                        &m.tensors,
                        Value::object([
                            ("name", Value::Str(name.into())),
                            ("kind", Value::Str("tensor".into())),
                            ("elements", Value::Num(encoded.elements as f64)),
                            ("scale", Value::Num(f64::from(codes.scale))),
                            ("nibbles", Value::Num(encoded.stream.len() as f64)),
                        ]),
                    ),
                    Err(e) => store_error(&m.tensors, &e),
                }
            }
        }
        "GET" => match store.get_raw(name) {
            Ok((_, bytes)) => {
                Routed { status: 200, reason: "OK", body: Value::Null, stats: &m.tensors, raw: Some(bytes) }
            }
            Err(e) => store_error(&m.tensors, &e),
        },
        "DELETE" => match store.delete(name) {
            Ok(()) => ok(&m.tensors, Value::object([("deleted", Value::Str(name.into()))])),
            Err(e) => store_error(&m.tensors, &e),
        },
        _ => Routed {
            status: 405,
            reason: "Method Not Allowed",
            body: error_body(&format!("method {} not allowed on {}", req.method, req.path)),
            stats: &m.tensors,
            raw: None,
        },
    }
}

fn batcher_gone(stats: &EndpointStats) -> Routed<'_> {
    Routed {
        status: 500,
        reason: "Internal Server Error",
        body: error_body("batch pipeline unavailable"),
        stats,
        raw: None,
    }
}

/// Pulls f32 values out of either a raw octet-stream body or a JSON
/// `{"values": [...]}` body, by Content-Type.
fn parse_values(req: &Request) -> Result<Vec<f32>, String> {
    if req.content_type().starts_with("application/octet-stream") {
        return f32_from_bytes(&req.body).map_err(|e| e.to_string());
    }
    let text = std::str::from_utf8(&req.body).map_err(|_| "body is not UTF-8".to_string())?;
    let body = spark_util::json::parse(text).map_err(|e| e.to_string())?;
    api::values_from_json(&body)
}

/// `/v1/decode` accepts `{"stream_hex": "..."}` or a raw text/plain hex
/// body.
fn decode_input(req: &Request) -> Result<String, String> {
    let text = std::str::from_utf8(&req.body).map_err(|_| "body is not UTF-8".to_string())?;
    if req.content_type().starts_with("application/json") {
        let body = spark_util::json::parse(text).map_err(|e| e.to_string())?;
        return body
            .get("stream_hex")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| "body must be {\"stream_hex\": \"...\"}".to_string());
    }
    Ok(text.trim().to_string())
}

fn encode_endpoint<'a>(ctx: &'a Ctx, shard: &ShardCtx, values: &[f32]) -> Routed<'a> {
    let stats = &ctx.metrics.encode;
    let codes = match api::quantize_codes(values) {
        Ok(c) => c,
        Err(msg) => return bad_request(stats, &msg),
    };
    let scale = codes.scale;
    let Some(slot) = shard.encode_batcher.submit((codes.codes, scale)) else {
        return batcher_gone(stats);
    };
    match slot.wait_timeout(SLOT_TIMEOUT) {
        Some(body) => ok(stats, body),
        None => batcher_gone(stats),
    }
}

/// `/v1/decode` split along the batching seam like encode: hex parsing
/// happens per-request (cheap, per-connection), the stream decode itself
/// is coalesced through the shard's decode batcher into one
/// [`spark_codec::decode_batch`] call over the bulk engine. A malformed
/// stream (truncated long code) comes back as this request's own 400
/// without affecting batchmates.
fn decode_endpoint<'a>(ctx: &'a Ctx, shard: &ShardCtx, hex: &str) -> Routed<'a> {
    let stats = &ctx.metrics.decode;
    let stream = match api::stream_from_hex(hex) {
        Ok(s) => s,
        Err(msg) => return bad_request(stats, &msg),
    };
    let Some(slot) = shard.decode_batcher.submit(stream) else {
        return batcher_gone(stats);
    };
    match slot.wait_timeout(SLOT_TIMEOUT) {
        Some(Ok(body)) => ok(stats, body),
        Some(Err(msg)) => bad_request(stats, &msg),
        None => batcher_gone(stats),
    }
}

fn infer_endpoint<'a>(ctx: &'a Ctx, shard: &ShardCtx, values: &[f32]) -> Routed<'a> {
    let stats = &ctx.metrics.infer;
    // A poisoned lock only means another request panicked mid-forward;
    // the model itself is stateless between requests (the layer caches
    // are overwritten by every forward), so serving on is sound.
    let mut model = shard.infer.lock().unwrap_or_else(|e| e.into_inner());
    match model.infer(values) {
        Ok(body) => ok(stats, body),
        Err(msg) => bad_request(stats, &msg),
    }
}

fn simulate_endpoint<'a>(ctx: &'a Ctx, shard: &ShardCtx, req: &Request) -> Routed<'a> {
    let stats = &ctx.metrics.simulate;
    let parsed = std::str::from_utf8(&req.body)
        .map_err(|_| "body is not UTF-8".to_string())
        .and_then(|text| spark_util::json::parse(text).map_err(|e| e.to_string()));
    let body = match parsed {
        Ok(b) => b,
        Err(msg) => return bad_request(stats, &msg),
    };
    let Some(model) = body.get("model").and_then(Value::as_str) else {
        return bad_request(stats, "body must be {\"model\": \"...\", \"accelerator\"?: \"...\"}");
    };
    let accelerator = body.get("accelerator").and_then(Value::as_str).unwrap_or("spark");
    let job = match api::resolve_sim_job(model, accelerator) {
        Ok(j) => j,
        Err(msg) => return bad_request(stats, &msg),
    };
    let Some(slot) = shard.sim_batcher.submit(job) else {
        return batcher_gone(stats);
    };
    match slot.wait_timeout(SLOT_TIMEOUT) {
        Some(body) => ok(stats, body),
        None => batcher_gone(stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{client_request, client_request_with_headers};
    use crate::shard::HashRing;

    fn start_test_server() -> Server {
        Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_depth: 16,
            batch_window: Duration::from_millis(1),
            max_batch: 8,
            ..ServeConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn healthz_and_metrics_respond() {
        let server = start_test_server();
        let addr = server.addr().to_string();
        let (status, body) = client_request(&addr, "GET", "/healthz", "", b"").unwrap();
        assert_eq!(status, 200);
        assert!(String::from_utf8(body).unwrap().contains("ok"));
        let (status, body) = client_request(&addr, "GET", "/metrics", "", b"").unwrap();
        assert_eq!(status, 200);
        let v = spark_util::json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        assert!(v.get("endpoints").is_some());
        assert!(v.get("shards").is_some());
        assert!(v.get("tenants").is_some());
        server.shutdown();
        server.join();
    }

    #[test]
    fn unknown_paths_and_methods_get_404_405() {
        let server = start_test_server();
        let addr = server.addr().to_string();
        let (status, _) = client_request(&addr, "GET", "/nope", "", b"").unwrap();
        assert_eq!(status, 404);
        let (status, _) = client_request(&addr, "DELETE", "/healthz", "", b"").unwrap();
        assert_eq!(status, 405);
        server.shutdown();
        server.join();
    }

    #[test]
    fn shutdown_endpoint_stops_the_server() {
        let server = start_test_server();
        let addr = server.addr().to_string();
        let (status, _) = client_request(&addr, "POST", "/shutdown", "", b"").unwrap();
        assert_eq!(status, 200);
        // join() must return now that the flag is set — no explicit
        // shutdown() call from this side.
        server.join();
    }

    #[test]
    fn infer_loopback_is_bit_identical_to_local_model() {
        let server = start_test_server();
        let addr = server.addr().to_string();
        let values: Vec<f32> =
            (0..api::INFER_INPUTS).map(|i| ((i as f32) * 0.37).cos() * 2.0).collect();
        let body = format!(
            "{{\"values\": [{}]}}",
            values.iter().map(f32::to_string).collect::<Vec<_>>().join(", ")
        );
        let (status, reply) =
            client_request(&addr, "POST", "/v1/infer", "application/json", body.as_bytes())
                .unwrap();
        assert_eq!(status, 200, "{:?}", String::from_utf8_lossy(&reply));
        // The seed is public: building the same model locally and running
        // the same fused forward must serialize to the very same bytes —
        // outputs, argmax, and footprint accounting included.
        let local = api::InferModel::new().unwrap().infer(&values).unwrap();
        assert_eq!(String::from_utf8(reply).unwrap(), local.to_string_compact());
        server.shutdown();
        server.join();
    }

    fn store_test_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::AtomicU64;
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("spark-serve-{tag}-{}-{n}", std::process::id()))
    }

    #[test]
    fn cold_loaded_store_model_serves_bit_identical_infer() {
        // Ingest the frozen model's matrices into a fresh store, exactly
        // as `spark store put --infer-model` does...
        let dir = store_test_dir("coldload");
        {
            let store = BlockStore::open(&dir).unwrap();
            let model = api::InferModel::new().unwrap();
            for (key, m) in api::STORE_MODEL_KEYS.iter().zip(model.export_matrices()) {
                store.put_matrix(key, &m).unwrap();
            }
        }
        // ...then cold-start a server on the store and compare /v1/infer
        // byte-for-byte against the in-memory frozen model.
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            batch_window: Duration::from_millis(1),
            store_dir: Some(dir.clone()),
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.addr().to_string();
        let values: Vec<f32> =
            (0..api::INFER_INPUTS).map(|i| ((i as f32) * 0.53).sin() * 1.5).collect();
        let body = format!(
            "{{\"values\": [{}]}}",
            values.iter().map(f32::to_string).collect::<Vec<_>>().join(", ")
        );
        let (status, reply) =
            client_request(&addr, "POST", "/v1/infer", "application/json", body.as_bytes())
                .unwrap();
        assert_eq!(status, 200, "{:?}", String::from_utf8_lossy(&reply));
        let local = api::InferModel::new().unwrap().infer(&values).unwrap();
        assert_eq!(String::from_utf8(reply).unwrap(), local.to_string_compact());
        server.shutdown();
        server.join();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tensors_crud_round_trips_through_the_store() {
        let dir = store_test_dir("crud");
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            batch_window: Duration::from_millis(1),
            store_dir: Some(dir.clone()),
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.addr().to_string();

        // PUT a JSON-valued tensor, read it back as a container image, and
        // check it is byte-identical to encoding the same values locally
        // (the codec is precision-aware, so compare encoded-to-encoded,
        // not decoded-to-quantized).
        let values: Vec<f32> = (0..100).map(|i| ((i as f32) * 0.31).cos()).collect();
        let body = format!(
            "{{\"values\": [{}]}}",
            values.iter().map(f32::to_string).collect::<Vec<_>>().join(", ")
        );
        let (status, reply) = client_request(
            &addr,
            "PUT",
            "/v1/tensors/t0",
            "application/json",
            body.as_bytes(),
        )
        .unwrap();
        assert_eq!(status, 200, "{:?}", String::from_utf8_lossy(&reply));
        let (status, image) = client_request(&addr, "GET", "/v1/tensors/t0", "", b"").unwrap();
        assert_eq!(status, 200);
        let codes = api::quantize_codes(&values).unwrap();
        let mut local_image = Vec::new();
        spark_codec::write_container(&spark_codec::encode_tensor(&codes.codes), &mut local_image)
            .unwrap();
        assert_eq!(image, local_image);

        // PUT the image under a second name as raw octets: byte-identical
        // round trip.
        let (status, _) = client_request(
            &addr,
            "PUT",
            "/v1/tensors/t1",
            "application/octet-stream",
            &image,
        )
        .unwrap();
        assert_eq!(status, 200);
        let (status, image2) = client_request(&addr, "GET", "/v1/tensors/t1", "", b"").unwrap();
        assert_eq!(status, 200);
        assert_eq!(image2, image);

        // The listing sees both; DELETE removes one; a deleted or absent
        // name is 404; bad method is 405; corrupt octets are 400.
        let (status, listing) = client_request(&addr, "GET", "/v1/tensors", "", b"").unwrap();
        assert_eq!(status, 200);
        let v = spark_util::json::parse(std::str::from_utf8(&listing).unwrap()).unwrap();
        assert_eq!(v.get("tensors").unwrap().as_array().unwrap().len(), 2);
        let (status, _) = client_request(&addr, "DELETE", "/v1/tensors/t0", "", b"").unwrap();
        assert_eq!(status, 200);
        let (status, _) = client_request(&addr, "GET", "/v1/tensors/t0", "", b"").unwrap();
        assert_eq!(status, 404);
        let (status, _) = client_request(&addr, "POST", "/v1/tensors/t1", "", b"").unwrap();
        assert_eq!(status, 405);
        let (status, _) = client_request(
            &addr,
            "PUT",
            "/v1/tensors/bad",
            "application/octet-stream",
            b"not a container",
        )
        .unwrap();
        assert_eq!(status, 400);

        server.shutdown();
        server.join();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tensors_without_a_store_is_a_404() {
        let server = start_test_server();
        let addr = server.addr().to_string();
        let (status, body) = client_request(&addr, "GET", "/v1/tensors/x", "", b"").unwrap();
        assert_eq!(status, 404);
        assert!(String::from_utf8_lossy(&body).contains("no tensor store"));
        server.shutdown();
        server.join();
    }

    #[test]
    fn infer_rejects_wrong_width_and_non_finite() {
        let server = start_test_server();
        let addr = server.addr().to_string();
        for body in [&b"{\"values\": [1.0, 2.0]}"[..], &b"{\"values\": []}"[..]] {
            let (status, _) =
                client_request(&addr, "POST", "/v1/infer", "application/json", body).unwrap();
            assert_eq!(status, 400);
        }
        server.shutdown();
        server.join();
    }

    #[test]
    fn bad_bodies_are_400_not_disconnects() {
        let server = start_test_server();
        let addr = server.addr().to_string();
        for (path, ct, body) in [
            ("/v1/encode", "application/json", &b"{\"values\": }"[..]),
            ("/v1/encode", "application/octet-stream", &b"abc"[..]),
            ("/v1/analyze", "application/json", &b"{}"[..]),
            ("/v1/decode", "application/json", &b"{\"stream_hex\": \"xyz\"}"[..]),
            ("/v1/simulate", "application/json", &b"{\"model\": \"NoSuchNet\"}"[..]),
        ] {
            let (status, reply) = client_request(&addr, "POST", path, ct, body).unwrap();
            assert_eq!(status, 400, "{path} {body:?} -> {reply:?}");
            let v = spark_util::json::parse(std::str::from_utf8(&reply).unwrap()).unwrap();
            assert!(v.get("error").is_some());
        }
        server.shutdown();
        server.join();
    }

    #[test]
    fn tenants_route_to_their_ring_shard_and_are_tracked() {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            shards: 3,
            shard_workers: 1,
            queue_depth: 16,
            batch_window: Duration::from_millis(1),
            max_batch: 8,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.addr().to_string();
        let ring = HashRing::new(3);

        // Fire a few tenants; each request must land on the shard the
        // ring predicts, visible through per-shard hit counters.
        let tenants = ["acme", "globex", "initech", "umbrella"];
        for t in &tenants {
            let (status, _) = client_request_with_headers(
                &addr,
                "POST",
                "/v1/analyze",
                "application/json",
                &[("X-Spark-Tenant", t)],
                b"{\"values\": [0.5, -0.25, 0.125]}",
            )
            .unwrap();
            assert_eq!(status, 200, "tenant {t}");
        }
        let (_, body) = client_request(&addr, "GET", "/metrics", "", b"").unwrap();
        let v = spark_util::json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        let shards = v.get("shards").unwrap().as_array().unwrap();
        let mut expected = vec![0u64; 3];
        for t in &tenants {
            expected[ring.shard_for(t)] += 1;
        }
        for (i, want) in expected.iter().enumerate() {
            let got = shards[i].get("hits").unwrap().as_f64().unwrap() as u64;
            assert_eq!(got, *want, "shard {i} hits");
        }
        let tenant_section = v.get("tenants").unwrap();
        assert_eq!(tenant_section.get("tracked").unwrap().as_f64(), Some(4.0));

        // A hostile tenant id is a 400, not a route.
        let (status, _) = client_request_with_headers(
            &addr,
            "POST",
            "/v1/analyze",
            "application/json",
            &[("X-Spark-Tenant", "bad tenant id")],
            b"{\"values\": [0.5]}",
        )
        .unwrap();
        assert_eq!(status, 400);

        server.shutdown();
        server.join();
    }

    #[test]
    fn tenant_quota_sheds_429_and_isolates_the_neighbor() {
        // 2 rps sustained, burst of 3: the 4th+ back-to-back request from
        // one tenant must shed with a typed 429 while a different tenant
        // still gets 200s — admission is per tenant, not global.
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            shards: 2,
            shard_workers: 1,
            queue_depth: 16,
            quota_rps: 2.0,
            quota_burst: 3.0,
            batch_window: Duration::from_millis(1),
            max_batch: 8,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.addr().to_string();

        let mut ok_count = 0;
        let mut shed = Vec::new();
        for _ in 0..8 {
            let resp = crate::http::client_call(
                &addr,
                "POST",
                "/v1/analyze",
                "application/json",
                &[("X-Spark-Tenant", "flooder")],
                b"{\"values\": [0.5, -0.25]}",
            )
            .unwrap();
            match resp.status {
                200 => ok_count += 1,
                429 => shed.push(resp),
                other => panic!("unexpected status {other}"),
            }
        }
        assert!(ok_count >= 3, "burst of 3 must be admitted, got {ok_count}");
        assert!(!shed.is_empty(), "8 back-to-back requests must exceed a 3-token burst");
        let v = spark_util::json::parse(std::str::from_utf8(&shed[0].body).unwrap()).unwrap();
        assert_eq!(v.get("tenant").unwrap().as_str(), Some("flooder"));
        let retry_ms = v.get("retry_after_ms").unwrap().as_f64().unwrap();
        assert!(retry_ms > 0.0);
        // The hint also rides a real Retry-After header: whole seconds,
        // rounded up from the body's millisecond figure, never 0.
        for resp in &shed {
            let header: u64 = resp
                .header("retry-after")
                .expect("429 must carry a Retry-After header")
                .parse()
                .expect("Retry-After must be integral seconds");
            let body = spark_util::json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
            let ms = body.get("retry_after_ms").unwrap().as_f64().unwrap() as u64;
            assert_eq!(header, ms.div_ceil(1000).max(1), "header disagrees with body hint");
        }

        // The well-behaved neighbor is untouched by the flooder's quota.
        let (status, _) = client_request_with_headers(
            &addr,
            "POST",
            "/v1/analyze",
            "application/json",
            &[("X-Spark-Tenant", "polite")],
            b"{\"values\": [0.5]}",
        )
        .unwrap();
        assert_eq!(status, 200);

        let (_, body) = client_request(&addr, "GET", "/metrics", "", b"").unwrap();
        let v = spark_util::json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        let rejected =
            v.get("queue").unwrap().get("rejected_429").unwrap().as_f64().unwrap();
        assert_eq!(rejected as usize, shed.len());

        server.shutdown();
        server.join();
    }

    #[test]
    fn sharded_server_answers_on_every_shard() {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            shards: 4,
            shard_workers: 1,
            queue_depth: 32,
            batch_window: Duration::from_millis(1),
            max_batch: 8,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.addr().to_string();
        let ring = HashRing::new(4);
        // Find one tenant per shard so every pool provably serves.
        let mut per_shard: Vec<Option<String>> = vec![None; 4];
        for i in 0.. {
            let t = format!("probe-{i}");
            let s = ring.shard_for(&t);
            if per_shard[s].is_none() {
                per_shard[s] = Some(t);
                if per_shard.iter().all(Option::is_some) {
                    break;
                }
            }
        }
        for t in per_shard.iter().flatten() {
            let (status, _) = client_request_with_headers(
                &addr,
                "POST",
                "/v1/encode",
                "application/json",
                &[("X-Spark-Tenant", t)],
                b"{\"values\": [0.1, 0.2, 0.3]}",
            )
            .unwrap();
            assert_eq!(status, 200, "tenant {t}");
        }
        let (_, body) = client_request(&addr, "GET", "/metrics", "", b"").unwrap();
        let v = spark_util::json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        for (i, s) in v.get("shards").unwrap().as_array().unwrap().iter().enumerate() {
            assert!(
                s.get("hits").unwrap().as_f64().unwrap() >= 1.0,
                "shard {i} never served"
            );
        }
        server.shutdown();
        server.join();
    }
}
