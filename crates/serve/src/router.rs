//! Fleet router: a standalone process that fronts N independent
//! `spark serve --store` backends and keeps answering while any one of
//! them dies.
//!
//! The router is deliberately *thin* — it parses one request, picks an
//! admitted backend, forwards, and relays the answer. All the machinery
//! is about what happens when a backend stops answering:
//!
//! - **Circuit breaker per backend** (Closed → Open → HalfOpen →
//!   Closed): `breaker_failures` consecutive transport failures eject a
//!   backend in O(failures); after `breaker_cooldown` the prober moves
//!   it to HalfOpen and sends real `/healthz` probes — only a probe that
//!   comes back `200 {"status":"ok"}` re-admits it. Traffic never races
//!   the probe: HalfOpen backends receive probes, not requests.
//! - **Retry budget**: a global token bucket ([`shard::TokenBucket`])
//!   caps the *fleet-wide* retry rate. A degraded fleet under open-loop
//!   load would otherwise see every failure fan out into `max_attempts`
//!   more requests — the classic retry storm that turns one dead
//!   backend into three. When the budget is dry, the client gets its
//!   503 immediately instead of amplifying.
//! - **Capped exponential backoff with seeded jitter**: retries wait
//!   `backoff_base · 2^attempt` (capped at `backoff_cap`) plus a jitter
//!   drawn from a per-worker PRNG seeded from [`RouterConfig::seed`], so
//!   retry timing is reproducible under a fixed seed and synchronized
//!   retry herds cannot form.
//! - **Active + passive health accounting**: the prober probes *every*
//!   backend each tick (active), and the forwarding path feeds
//!   successes/failures into the same counters (passive) — a backend
//!   can be ejected by failing traffic before the prober ever notices.
//!
//! The forwarding path is on the no-unwrap/no-panic contract: every
//! lock uses the poison-recovering idiom and every I/O error is typed
//! or relayed, never unwrapped.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use spark_util::json::Value;
use spark_util::par::{channel, Receiver, TrySendError};
use spark_util::Rng;

use crate::http::{self, ClientError, ClientResponse};
use crate::shard::TokenBucket;

/// Knobs for one router process.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Listen address (`127.0.0.1:0` for an ephemeral port).
    pub addr: String,
    /// Backend addresses (`host:port`), the replica set.
    pub backends: Vec<String>,
    /// Forwarding worker threads.
    pub workers: usize,
    /// Prober cadence; each backend is probed once per tick.
    pub probe_interval: Duration,
    /// Overall per-request deadline across all retry attempts.
    pub request_deadline: Duration,
    /// Maximum forward attempts per request (1 = no retries).
    pub max_attempts: usize,
    /// Retry budget refill rate, retries/second, fleet-wide.
    pub retry_budget_rps: f64,
    /// Retry budget burst capacity.
    pub retry_budget_burst: f64,
    /// Consecutive transport failures that open a backend's breaker.
    pub breaker_failures: u32,
    /// How long an open breaker waits before allowing a half-open probe.
    pub breaker_cooldown: Duration,
    /// First retry backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Request body cap relayed to clients as 413.
    pub max_body_bytes: usize,
    /// Seed for retry jitter and probe scheduling.
    pub seed: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            backends: Vec::new(),
            workers: 4,
            probe_interval: Duration::from_millis(200),
            request_deadline: Duration::from_secs(10),
            max_attempts: 3,
            retry_budget_rps: 50.0,
            retry_budget_burst: 25.0,
            breaker_failures: 3,
            breaker_cooldown: Duration::from_millis(500),
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(100),
            max_body_bytes: 8 * 1024 * 1024,
            seed: 0x51AB_0007,
        }
    }
}

/// Breaker states. Traffic flows only to `Closed` backends; `HalfOpen`
/// backends receive health probes until one passes or fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Breaker {
    /// Healthy: receives traffic.
    Closed,
    /// Ejected: no traffic, no probes until the cooldown elapses.
    Open,
    /// Cooldown elapsed: probing; one good probe re-admits.
    HalfOpen,
}

impl Breaker {
    fn name(self) -> &'static str {
        match self {
            Breaker::Closed => "closed",
            Breaker::Open => "open",
            Breaker::HalfOpen => "half_open",
        }
    }
}

/// One backend's registry entry: address, breaker, and counters.
struct Backend {
    addr: String,
    /// `(state, open_until)` — `open_until` is meaningful in `Open`.
    state: Mutex<(Breaker, Instant)>,
    consecutive_failures: AtomicU32,
    forwarded: AtomicU64,
    errors: AtomicU64,
    ejections: AtomicU64,
    readmissions: AtomicU64,
}

impl Backend {
    fn new(addr: String, now: Instant) -> Self {
        Self {
            addr,
            state: Mutex::new((Breaker::Closed, now)),
            consecutive_failures: AtomicU32::new(0),
            forwarded: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            ejections: AtomicU64::new(0),
            readmissions: AtomicU64::new(0),
        }
    }

    fn breaker(&self) -> Breaker {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).0
    }

    fn admitted(&self) -> bool {
        self.breaker() == Breaker::Closed
    }

    /// Traffic or probe success: failures reset; a half-open backend is
    /// re-admitted.
    fn note_success(&self) {
        self.consecutive_failures.store(0, Ordering::Relaxed);
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.0 == Breaker::HalfOpen {
            s.0 = Breaker::Closed;
            self.readmissions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Traffic or probe transport failure: counts toward ejection; a
    /// half-open backend goes straight back to Open.
    fn note_failure(&self, threshold: u32, cooldown: Duration) {
        self.errors.fetch_add(1, Ordering::Relaxed);
        let fails = self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        match s.0 {
            Breaker::Closed if fails >= threshold => {
                s.0 = Breaker::Open;
                s.1 = Instant::now() + cooldown;
                self.ejections.fetch_add(1, Ordering::Relaxed);
            }
            Breaker::HalfOpen => {
                s.0 = Breaker::Open;
                s.1 = Instant::now() + cooldown;
            }
            _ => {}
        }
    }

    /// Prober tick: move an expired Open to HalfOpen. Returns whether
    /// this backend wants a probe this tick.
    fn tick(&self, now: Instant) -> bool {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        match s.0 {
            Breaker::Open if now >= s.1 => {
                s.0 = Breaker::HalfOpen;
                true
            }
            Breaker::Open => false,
            // Closed and HalfOpen are both actively probed.
            _ => true,
        }
    }
}

/// Shared router state.
struct RouterCtx {
    cfg: RouterConfig,
    addr: SocketAddr,
    backends: Vec<Backend>,
    shutdown: AtomicBool,
    next_rr: AtomicU64,
    retry_budget: TokenBucket,
    forwarded_total: AtomicU64,
    retries_total: AtomicU64,
    retry_budget_denied: AtomicU64,
    no_backend_503: AtomicU64,
    panics_total: AtomicU64,
}

impl RouterCtx {
    /// Round-robin pick over currently admitted backends.
    fn pick(&self) -> Option<&Backend> {
        let admitted: Vec<&Backend> =
            self.backends.iter().filter(|b| b.admitted()).collect();
        if admitted.is_empty() {
            return None;
        }
        let n = self.next_rr.fetch_add(1, Ordering::Relaxed) as usize;
        admitted.get(n % admitted.len()).copied()
    }
}

/// A running router; mirrors [`crate::Server`]'s lifecycle.
pub struct Router {
    addr: SocketAddr,
    ctx: Arc<RouterCtx>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    prober: JoinHandle<()>,
}

impl Router {
    /// Binds and starts accepting. Backends are assumed healthy until
    /// probes or traffic prove otherwise.
    ///
    /// # Errors
    ///
    /// Bind/spawn failures, or an empty backend list.
    pub fn start(cfg: RouterConfig) -> std::io::Result<Router> {
        if cfg.backends.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "router needs at least one backend",
            ));
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let now = Instant::now();
        let backends: Vec<Backend> =
            cfg.backends.iter().map(|a| Backend::new(a.clone(), now)).collect();
        let retry_budget = TokenBucket::new(cfg.retry_budget_rps, cfg.retry_budget_burst, now);
        let ctx = Arc::new(RouterCtx {
            addr,
            backends,
            shutdown: AtomicBool::new(false),
            next_rr: AtomicU64::new(0),
            retry_budget,
            forwarded_total: AtomicU64::new(0),
            retries_total: AtomicU64::new(0),
            retry_budget_denied: AtomicU64::new(0),
            no_backend_503: AtomicU64::new(0),
            panics_total: AtomicU64::new(0),
            cfg,
        });

        let (conn_tx, conn_rx) = channel::<TcpStream>(64);
        let workers = (0..ctx.cfg.workers.max(1))
            .map(|id| {
                let rx = conn_rx.clone();
                let ctx = Arc::clone(&ctx);
                std::thread::Builder::new()
                    .name(format!("spark-router-fwd-{id}"))
                    .spawn(move || worker_loop(id, rx, ctx))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        drop(conn_rx);

        let prober = {
            let ctx = Arc::clone(&ctx);
            std::thread::Builder::new()
                .name("spark-router-prober".into())
                .spawn(move || prober_loop(ctx))?
        };

        let acceptor = {
            let ctx = Arc::clone(&ctx);
            std::thread::Builder::new()
                .name("spark-router-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if ctx.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let stream = match stream {
                            Ok(s) => s,
                            Err(_) => continue,
                        };
                        match conn_tx.try_send(stream) {
                            Ok(()) => {}
                            Err(TrySendError::Full(mut stream)) => {
                                let _ = stream.set_write_timeout(Some(http::IO_TIMEOUT));
                                let _ = http::write_json(
                                    &mut stream,
                                    503,
                                    "Service Unavailable",
                                    &error_body("router overloaded: connection queue full"),
                                );
                            }
                            Err(TrySendError::Disconnected(_)) => break,
                        }
                    }
                })?
        };

        Ok(Router { addr, ctx, acceptor, workers, prober })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Flips the shutdown flag and wakes the acceptor. Idempotent.
    pub fn shutdown(&self) {
        self.ctx.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.ctx.addr);
    }

    /// Drains: acceptor, then workers, then the prober.
    pub fn join(self) {
        let Router { ctx, acceptor, workers, prober, .. } = self;
        acceptor.join().ok();
        for w in workers {
            w.join().ok();
        }
        drop(ctx);
        prober.join().ok();
    }
}

fn error_body(message: &str) -> Value {
    Value::object([("error", Value::Str(message.into()))])
}

/// Canonical reason phrases for relayed statuses; anything unlisted
/// relays with a neutral phrase (clients key on the code).
fn reason_for(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

fn worker_loop(id: usize, rx: Receiver<TcpStream>, ctx: Arc<RouterCtx>) {
    // Per-worker jitter PRNG: reproducible under a fixed seed, but
    // decorrelated across workers so retry herds cannot synchronize.
    let mut rng = Rng::seed_from_u64(ctx.cfg.seed ^ (id as u64).wrapping_mul(0x9E37_79B9));
    while let Some(mut stream) = rx.recv() {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_connection(&mut stream, &ctx, &mut rng);
        }));
        if outcome.is_err() {
            ctx.panics_total.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_json(
                &mut stream,
                500,
                "Internal Server Error",
                &error_body("router worker panicked; request aborted"),
            );
        }
    }
}

fn handle_connection(stream: &mut TcpStream, ctx: &RouterCtx, rng: &mut Rng) {
    let req = match http::read_request(stream, ctx.cfg.max_body_bytes, http::REQUEST_DEADLINE) {
        Ok(r) => r,
        Err(http::HttpError::Io(_)) => return,
        Err(e) => {
            let (status, reason, message) = e.status();
            let _ = http::write_json(stream, status, reason, &error_body(&message));
            return;
        }
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let admitted = ctx.backends.iter().filter(|b| b.admitted()).count();
            let status = if admitted == ctx.backends.len() {
                "ok"
            } else if admitted > 0 {
                "degraded"
            } else {
                "unavailable"
            };
            let body = Value::object([
                ("status", Value::Str(status.into())),
                ("backends", Value::Num(ctx.backends.len() as f64)),
                ("admitted", Value::Num(admitted as f64)),
            ]);
            let _ = http::write_json(stream, 200, "OK", &body);
        }
        ("GET", "/metrics") => {
            let _ = http::write_json(stream, 200, "OK", &metrics_body(ctx));
        }
        ("POST", "/shutdown") => {
            let _ = http::write_json(
                stream,
                200,
                "OK",
                &Value::object([("status", Value::Str("shutting down".into()))]),
            );
            ctx.shutdown.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(ctx.addr);
        }
        _ => forward(stream, &req, ctx, rng),
    }
}

fn metrics_body(ctx: &RouterCtx) -> Value {
    let backends = Value::object(ctx.backends.iter().map(|b| {
        (
            b.addr.as_str(),
            Value::object([
                ("state", Value::Str(b.breaker().name().into())),
                ("forwarded", Value::Num(b.forwarded.load(Ordering::Relaxed) as f64)),
                ("errors", Value::Num(b.errors.load(Ordering::Relaxed) as f64)),
                ("ejections", Value::Num(b.ejections.load(Ordering::Relaxed) as f64)),
                (
                    "readmissions",
                    Value::Num(b.readmissions.load(Ordering::Relaxed) as f64),
                ),
            ]),
        )
    }));
    Value::object([
        (
            "router",
            Value::object([
                ("forwarded", Value::Num(ctx.forwarded_total.load(Ordering::Relaxed) as f64)),
                ("retries", Value::Num(ctx.retries_total.load(Ordering::Relaxed) as f64)),
                (
                    "retry_budget_denied",
                    Value::Num(ctx.retry_budget_denied.load(Ordering::Relaxed) as f64),
                ),
                (
                    "no_backend_503",
                    Value::Num(ctx.no_backend_503.load(Ordering::Relaxed) as f64),
                ),
                ("panics_total", Value::Num(ctx.panics_total.load(Ordering::Relaxed) as f64)),
            ]),
        ),
        ("backends", backends),
    ])
}

/// The forwarding path: pick → forward → relay, with bounded retries on
/// transport failure only. HTTP-level errors (4xx/5xx) from a backend
/// are *relayed*, never retried: the backend answered, and replaying a
/// non-idempotent request against a second replica is how you get
/// duplicate effects.
fn forward(stream: &mut TcpStream, req: &http::Request, ctx: &RouterCtx, rng: &mut Rng) {
    let started = Instant::now();
    let target = if req.query.is_empty() {
        req.path.clone()
    } else {
        format!("{}?{}", req.path, req.query)
    };
    // Forward tenant identity and content type; everything else is
    // hop-local (Content-Length is recomputed, Connection is close).
    let mut fwd_headers: Vec<(&str, &str)> = Vec::new();
    if let Some(tenant) = req.header("x-spark-tenant") {
        fwd_headers.push(("X-Spark-Tenant", tenant));
    }
    let mut attempt = 0usize;
    loop {
        let Some(backend) = ctx.pick() else {
            ctx.no_backend_503.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_json(
                stream,
                503,
                "Service Unavailable",
                &error_body("no admitted backends"),
            );
            return;
        };
        match http::client_call(
            &backend.addr,
            &req.method,
            &target,
            req.content_type(),
            &fwd_headers,
            &req.body,
        ) {
            Ok(resp) => {
                backend.note_success();
                backend.forwarded.fetch_add(1, Ordering::Relaxed);
                ctx.forwarded_total.fetch_add(1, Ordering::Relaxed);
                relay(stream, &resp);
                return;
            }
            Err(err) => {
                backend.note_failure(ctx.cfg.breaker_failures, ctx.cfg.breaker_cooldown);
                attempt += 1;
                let out_of_time = started.elapsed() >= ctx.cfg.request_deadline;
                if attempt >= ctx.cfg.max_attempts.max(1) || out_of_time {
                    let _ = http::write_json(
                        stream,
                        503,
                        "Service Unavailable",
                        &error_body(&format!(
                            "backend unavailable after {attempt} attempt(s): {err}"
                        )),
                    );
                    return;
                }
                // A retry is *extra* load on a degraded fleet; it must
                // fit the global budget or the client eats the 503 now.
                if ctx.retry_budget.try_take(Instant::now(), 1.0).is_err() {
                    ctx.retry_budget_denied.fetch_add(1, Ordering::Relaxed);
                    let _ = http::write_json(
                        stream,
                        503,
                        "Service Unavailable",
                        &error_body(&format!("retry budget exhausted after: {err}")),
                    );
                    return;
                }
                ctx.retries_total.fetch_add(1, Ordering::Relaxed);
                let shift = (attempt - 1).min(16) as u32;
                let backoff = ctx
                    .cfg
                    .backoff_base
                    .saturating_mul(1u32 << shift)
                    .min(ctx.cfg.backoff_cap);
                let jitter_us = if ctx.cfg.backoff_base.as_micros() > 0 {
                    rng.gen_below(ctx.cfg.backoff_base.as_micros() as u64)
                } else {
                    0
                };
                let wait = backoff + Duration::from_micros(jitter_us);
                let remaining = ctx.cfg.request_deadline.saturating_sub(started.elapsed());
                std::thread::sleep(wait.min(remaining));
            }
        }
    }
}

/// Relays a backend response verbatim: status, content type, the
/// `Retry-After` hint when present, and the body bytes untouched —
/// byte-transparency is what makes the cross-replica differential
/// oracle (identical bodies from identical replicas) meaningful.
fn relay(stream: &mut TcpStream, resp: &ClientResponse) {
    let content_type = resp.header("content-type").unwrap_or("application/json");
    let mut extra: Vec<(&str, String)> = Vec::new();
    if let Some(ra) = resp.header("retry-after") {
        extra.push(("Retry-After", ra.to_string()));
    }
    let _ = http::write_response_with_headers(
        stream,
        resp.status,
        reason_for(resp.status),
        content_type,
        &extra,
        &resp.body,
    );
}

/// The prober: every tick, each backend that wants a probe gets a real
/// `GET /healthz`; a half-open backend that answers `200 {"status":"ok"}`
/// is re-admitted, any probe transport failure counts toward (or
/// renews) ejection. A backend that answers but reports `degraded` is
/// left as-is: it is alive (keep traffic if Closed) but not proven
/// healed (no half-open re-admission).
fn prober_loop(ctx: Arc<RouterCtx>) {
    let mut rng = Rng::seed_from_u64(ctx.cfg.seed ^ 0x9120_BE57);
    while !ctx.shutdown.load(Ordering::SeqCst) {
        // Jittered tick so N routers probing one fleet cannot phase-lock.
        let base = ctx.cfg.probe_interval.as_micros() as u64;
        let tick = base + rng.gen_below(base.max(1) / 4 + 1);
        std::thread::sleep(Duration::from_micros(tick));
        let now = Instant::now();
        for b in &ctx.backends {
            if !b.tick(now) {
                continue;
            }
            match http::client_call(&b.addr, "GET", "/healthz", "", &[], b"") {
                Ok(resp) if resp.status == 200 => {
                    let healthy = std::str::from_utf8(&resp.body)
                        .ok()
                        .and_then(|t| spark_util::json::parse(t).ok())
                        .and_then(|v| {
                            v.get("status").and_then(|s| s.as_str().map(String::from))
                        })
                        .map(|s| s == "ok")
                        .unwrap_or(false);
                    if healthy {
                        b.note_success();
                    }
                    // Alive but degraded: leave the breaker where it is.
                }
                Ok(_) => {
                    // An HTTP error from /healthz is a sick backend.
                    b.note_failure(ctx.cfg.breaker_failures, ctx.cfg.breaker_cooldown);
                }
                Err(ClientError::Connect(_))
                | Err(ClientError::Timeout(_))
                | Err(ClientError::ShortBody(_))
                | Err(ClientError::Protocol(_)) => {
                    b.note_failure(ctx.cfg.breaker_failures, ctx.cfg.breaker_cooldown);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServeConfig, Server};

    fn backend() -> Server {
        Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            shards: 1,
            shard_workers: 2,
            queue_depth: 64,
            shard_queue: 32,
            batch_window: Duration::from_millis(1),
            max_batch: 8,
            ..ServeConfig::default()
        })
        .unwrap()
    }

    fn quick_router(backends: Vec<String>) -> Router {
        Router::start(RouterConfig {
            backends,
            probe_interval: Duration::from_millis(30),
            breaker_cooldown: Duration::from_millis(120),
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(5),
            ..RouterConfig::default()
        })
        .unwrap()
    }

    fn get(addr: &str, path: &str) -> (u16, Value) {
        let resp = http::client_call(addr, "GET", path, "", &[], b"").unwrap();
        let v = spark_util::json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        (resp.status, v)
    }

    #[test]
    fn router_forwards_and_reports_fleet_health() {
        let b1 = backend();
        let b2 = backend();
        let router =
            quick_router(vec![b1.addr().to_string(), b2.addr().to_string()]);
        let addr = router.addr().to_string();

        let (status, health) = get(&addr, "/healthz");
        assert_eq!(status, 200);
        assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(health.get("admitted").unwrap().as_f64(), Some(2.0));

        // Real work forwards: encode via the router, round-robin spreads.
        let raw: Vec<u8> = (0..512u32).flat_map(|i| (i as f32 * 0.1).to_le_bytes()).collect();
        for _ in 0..6 {
            let resp = http::client_call(
                &addr,
                "POST",
                "/v1/encode",
                "application/octet-stream",
                &[],
                &raw,
            )
            .unwrap();
            assert_eq!(resp.status, 200);
            let v =
                spark_util::json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
            assert_eq!(v.get("elements").unwrap().as_f64(), Some(512.0));
        }
        let (_, m) = get(&addr, "/metrics");
        assert_eq!(
            m.get("router").unwrap().get("forwarded").unwrap().as_f64(),
            Some(6.0)
        );
        let backends = m.get("backends").unwrap();
        for b in [&b1, &b2] {
            let fwd = backends
                .get(&b.addr().to_string())
                .unwrap()
                .get("forwarded")
                .unwrap()
                .as_f64()
                .unwrap();
            assert!(fwd >= 2.0, "round robin must spread, got {fwd}");
        }

        router.shutdown();
        router.join();
        b1.shutdown();
        b1.join();
        b2.shutdown();
        b2.join();
    }

    #[test]
    fn dead_backend_is_ejected_and_traffic_keeps_flowing() {
        let b1 = backend();
        let b2 = backend();
        let dead_addr = b2.addr().to_string();
        let router =
            quick_router(vec![b1.addr().to_string(), dead_addr.clone()]);
        let addr = router.addr().to_string();
        // Kill b2 before any traffic: half the picks hit a corpse.
        b2.shutdown();
        b2.join();

        for _ in 0..12 {
            let resp = http::client_call(&addr, "GET", "/v1/tensors/none", "", &[], b"");
            // Every request must get an HTTP answer (404 from the live
            // backend's store, or a 503 only if retries were exhausted —
            // never a transport error surfaced to the client).
            let resp = resp.expect("router must always answer");
            assert!(resp.status == 404 || resp.status == 503, "status {}", resp.status);
        }
        // The breaker must have ejected the dead backend by now.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let (_, m) = get(&addr, "/metrics");
            let state = m
                .get("backends")
                .unwrap()
                .get(&dead_addr)
                .unwrap()
                .get("state")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string();
            if state != "closed" {
                break;
            }
            assert!(Instant::now() < deadline, "breaker never opened");
            std::thread::sleep(Duration::from_millis(20));
        }
        // With the corpse ejected, requests are clean first-try 404s.
        let resp = http::client_call(&addr, "GET", "/v1/tensors/none", "", &[], b"").unwrap();
        assert_eq!(resp.status, 404);

        router.shutdown();
        router.join();
        b1.shutdown();
        b1.join();
    }

    #[test]
    fn restarted_backend_is_readmitted_via_half_open_probes() {
        let b1 = backend();
        let b2 = backend();
        let port = b2.addr().port();
        let dead_addr = b2.addr().to_string();
        let router =
            quick_router(vec![b1.addr().to_string(), dead_addr.clone()]);
        let addr = router.addr().to_string();
        b2.shutdown();
        b2.join();

        // Let the prober eject the corpse.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let (_, m) = get(&addr, "/metrics");
            let ejections = m
                .get("backends")
                .unwrap()
                .get(&dead_addr)
                .unwrap()
                .get("ejections")
                .unwrap()
                .as_f64()
                .unwrap();
            if ejections >= 1.0 {
                break;
            }
            assert!(Instant::now() < deadline, "prober never ejected the corpse");
            std::thread::sleep(Duration::from_millis(20));
        }

        // Resurrect a backend on the same port; half-open probes must
        // re-admit it without any traffic help.
        let revived = Server::start(ServeConfig {
            addr: format!("127.0.0.1:{port}"),
            workers: 2,
            shards: 1,
            shard_workers: 2,
            queue_depth: 64,
            shard_queue: 32,
            batch_window: Duration::from_millis(1),
            max_batch: 8,
            ..ServeConfig::default()
        })
        .unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let (_, m) = get(&addr, "/metrics");
            let entry = m.get("backends").unwrap().get(&dead_addr).unwrap().clone();
            let state = entry.get("state").unwrap().as_str().unwrap().to_string();
            let readmissions = entry.get("readmissions").unwrap().as_f64().unwrap();
            if state == "closed" && readmissions >= 1.0 {
                break;
            }
            assert!(Instant::now() < deadline, "healed backend never re-admitted");
            std::thread::sleep(Duration::from_millis(30));
        }
        let (_, health) = get(&addr, "/healthz");
        assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));

        router.shutdown();
        router.join();
        b1.shutdown();
        b1.join();
        revived.shutdown();
        revived.join();
    }

    #[test]
    fn retry_budget_bounds_the_retry_storm() {
        // Every backend is a corpse; with a zero-refill, tiny-burst
        // budget, total retries across many failing requests must not
        // exceed the burst — the storm is capped, clients fail fast.
        let doomed = TcpListener::bind("127.0.0.1:0").unwrap();
        let dead = doomed.local_addr().unwrap().to_string();
        drop(doomed);
        let router = Router::start(RouterConfig {
            backends: vec![dead],
            retry_budget_rps: 0.0001, // effectively no refill over the test
            retry_budget_burst: 3.0,
            breaker_failures: 1_000_000, // keep the corpse admitted
            probe_interval: Duration::from_secs(30),
            backoff_base: Duration::from_micros(100),
            backoff_cap: Duration::from_millis(1),
            ..RouterConfig::default()
        })
        .unwrap();
        let addr = router.addr().to_string();
        for _ in 0..20 {
            let resp = http::client_call(&addr, "GET", "/v1/tensors/x", "", &[], b"").unwrap();
            assert_eq!(resp.status, 503);
        }
        let (_, m) = get(&addr, "/metrics");
        let retries = m.get("router").unwrap().get("retries").unwrap().as_f64().unwrap();
        let denied =
            m.get("router").unwrap().get("retry_budget_denied").unwrap().as_f64().unwrap();
        assert!(retries <= 3.0, "budget burst of 3 but {retries} retries happened");
        assert!(denied >= 10.0, "most requests must be denied retries, got {denied}");
        router.shutdown();
        router.join();
    }
}
