//! In-process metrics registry for the server.
//!
//! Everything is lock-free (`AtomicU64` counters plus the log-bucketed
//! [`Histogram`]) so the hot request path never serializes on a metrics
//! mutex. `/metrics` snapshots the registry with relaxed loads — values
//! are individually accurate but not captured at a single instant, which
//! is the usual contract for scrape-style endpoints.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use spark_util::json::Value;
use spark_util::Histogram;

/// How long `/healthz` keeps reporting `"degraded"` after the most
/// recent resilience incident (caught panic or worker respawn). Long
/// enough that the chaos planes — which check health within a couple of
/// seconds of an incident — still observe the degradation, short enough
/// that a healed server returns to `"ok"` and a fleet router's
/// re-admission probes can trust the status again.
pub const DEGRADED_WINDOW: Duration = Duration::from_secs(30);

/// Hit/error counters for one endpoint.
#[derive(Default)]
pub struct EndpointStats {
    hits: AtomicU64,
    errors: AtomicU64,
}

impl EndpointStats {
    /// Counts one request routed to this endpoint.
    pub fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request that produced a non-2xx response.
    pub fn error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Total requests routed here.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that produced a non-2xx response.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    fn to_json(&self) -> Value {
        Value::object([
            ("hits", Value::Num(self.hits() as f64)),
            ("errors", Value::Num(self.errors() as f64)),
        ])
    }
}

/// Counters one shard worker pool records into: its own traffic, its own
/// queue, its own tail. `/metrics` exposes the vector so a hot or dying
/// shard is visible individually instead of averaged away.
pub struct ShardStats {
    /// Requests completed by this shard's workers.
    pub hits: AtomicU64,
    /// Of those, non-2xx responses.
    pub errors: AtomicU64,
    /// Requests shed with 503 because this shard's queue was full.
    pub rejected_503: AtomicU64,
    /// Shard workers respawned by the supervisor after dying.
    pub workers_respawned: AtomicU64,
    queue_depth: AtomicU64,
    queue_peak: AtomicU64,
    /// End-to-end latency of requests completed by this shard.
    pub latency_us: Histogram,
}

impl ShardStats {
    fn new() -> Self {
        Self {
            hits: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            rejected_503: AtomicU64::new(0),
            workers_respawned: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_peak: AtomicU64::new(0),
            latency_us: Histogram::new(),
        }
    }

    /// Refreshes the shard queue gauge from the channel's own length.
    pub fn note_queue(&self, depth: u64) {
        self.queue_depth.store(depth, Ordering::Relaxed);
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    fn to_json(&self, id: usize) -> Value {
        Value::object([
            ("shard", Value::Num(id as f64)),
            ("hits", Value::Num(self.hits.load(Ordering::Relaxed) as f64)),
            ("errors", Value::Num(self.errors.load(Ordering::Relaxed) as f64)),
            (
                "rejected_503",
                Value::Num(self.rejected_503.load(Ordering::Relaxed) as f64),
            ),
            (
                "workers_respawned",
                Value::Num(self.workers_respawned.load(Ordering::Relaxed) as f64),
            ),
            ("queue_depth", Value::Num(self.queue_depth.load(Ordering::Relaxed) as f64)),
            ("queue_peak", Value::Num(self.queue_peak.load(Ordering::Relaxed) as f64)),
            ("latency_us", self.latency_us.to_json()),
        ])
    }
}

/// The server-wide registry. One instance lives in the shared server
/// context; every worker and batcher thread records into it directly.
pub struct Metrics {
    /// `POST /v1/encode`.
    pub encode: EndpointStats,
    /// `POST /v1/decode`.
    pub decode: EndpointStats,
    /// `POST /v1/analyze`.
    pub analyze: EndpointStats,
    /// `POST /v1/simulate`.
    pub simulate: EndpointStats,
    /// `POST /v1/infer`.
    pub infer: EndpointStats,
    /// `PUT`/`GET`/`DELETE /v1/tensors/...` (the blockstore CRUD plane).
    pub tensors: EndpointStats,
    /// `GET /healthz`, `GET /metrics`, `POST /shutdown`.
    pub control: EndpointStats,
    /// Requests that matched no route (404/405).
    pub unrouted: EndpointStats,
    /// Connections refused with 503 because a queue (conn or shard) was
    /// full.
    pub rejected_503: AtomicU64,
    /// Requests shed with 429 by a tenant's token-bucket quota.
    pub rejected_429: AtomicU64,
    /// Connections accepted into the queue.
    pub accepted: AtomicU64,
    /// Current number of accepted-but-unclaimed connections.
    queue_depth: AtomicU64,
    /// High-water mark of `queue_depth`.
    queue_peak: AtomicU64,
    /// Batched library calls issued (each covers ≥1 request).
    pub batches: AtomicU64,
    /// Distribution of jobs per batched call.
    pub batch_size: Histogram,
    /// End-to-end request latency in microseconds (parse → response
    /// written), recorded by workers.
    pub latency_us: Histogram,
    /// Handler panics caught by the per-connection isolation boundary.
    pub panics_total: AtomicU64,
    /// Worker threads respawned by the supervisor after dying.
    pub workers_respawned: AtomicU64,
    /// Requests shed with 408 because the overall read deadline elapsed.
    pub deadline_408: AtomicU64,
    /// Per-shard counters, indexed by shard id.
    pub shards: Vec<ShardStats>,
    /// Registry creation time — the origin the incident stamp counts from.
    started: Instant,
    /// Microseconds-since-`started` of the latest resilience incident,
    /// offset by +1 so `0` means "never". Written by [`Metrics::note_incident`],
    /// read by [`Metrics::degraded_at`].
    last_incident_us: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::with_shards(1)
    }
}

impl Metrics {
    /// Creates an empty registry with a single shard.
    pub fn new() -> Self {
        Self::with_shards(1)
    }

    /// Creates an empty registry tracking `shards` shard pools (clamped
    /// to at least 1).
    pub fn with_shards(shards: usize) -> Self {
        Self {
            encode: EndpointStats::default(),
            decode: EndpointStats::default(),
            analyze: EndpointStats::default(),
            simulate: EndpointStats::default(),
            infer: EndpointStats::default(),
            tensors: EndpointStats::default(),
            control: EndpointStats::default(),
            unrouted: EndpointStats::default(),
            rejected_503: AtomicU64::new(0),
            rejected_429: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_peak: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batch_size: Histogram::new(),
            latency_us: Histogram::new(),
            panics_total: AtomicU64::new(0),
            workers_respawned: AtomicU64::new(0),
            deadline_408: AtomicU64::new(0),
            shards: (0..shards.max(1)).map(|_| ShardStats::new()).collect(),
            started: Instant::now(),
            last_incident_us: AtomicU64::new(0),
        }
    }

    /// Marks one connection entering the job queue. `depth` is the queue
    /// length sampled from the channel itself — the channel is the source
    /// of truth, so accept/dequeue ordering races cannot wrap the gauge.
    pub fn note_accept(&self, depth: u64) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        self.queue_depth.store(depth, Ordering::Relaxed);
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Refreshes the depth gauge as a worker takes a connection.
    pub fn note_dequeue(&self, depth: u64) {
        self.queue_depth.store(depth, Ordering::Relaxed);
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// High-water mark of the queue depth.
    pub fn queue_peak(&self) -> u64 {
        self.queue_peak.load(Ordering::Relaxed)
    }

    /// Records one batched library call over `jobs` requests.
    pub fn record_batch(&self, jobs: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_size.record(jobs);
    }

    /// Snapshots the registry as the `/metrics` response body.
    pub fn to_json(&self) -> Value {
        Value::object([
            (
                "endpoints",
                Value::object([
                    ("encode", self.encode.to_json()),
                    ("decode", self.decode.to_json()),
                    ("analyze", self.analyze.to_json()),
                    ("simulate", self.simulate.to_json()),
                    ("infer", self.infer.to_json()),
                    ("tensors", self.tensors.to_json()),
                    ("control", self.control.to_json()),
                    ("unrouted", self.unrouted.to_json()),
                ]),
            ),
            (
                "queue",
                Value::object([
                    ("accepted", Value::Num(self.accepted.load(Ordering::Relaxed) as f64)),
                    (
                        "rejected_503",
                        Value::Num(self.rejected_503.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "rejected_429",
                        Value::Num(self.rejected_429.load(Ordering::Relaxed) as f64),
                    ),
                    ("depth", Value::Num(self.queue_depth() as f64)),
                    ("peak_depth", Value::Num(self.queue_peak() as f64)),
                ]),
            ),
            (
                "shards",
                Value::Array(
                    self.shards.iter().enumerate().map(|(i, s)| s.to_json(i)).collect(),
                ),
            ),
            (
                "batching",
                Value::object([
                    ("batches", Value::Num(self.batches.load(Ordering::Relaxed) as f64)),
                    ("batch_size", self.batch_size.to_json()),
                ]),
            ),
            ("latency_us", self.latency_us.to_json()),
            (
                "resilience",
                Value::object([
                    (
                        "panics_total",
                        Value::Num(self.panics_total.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "workers_respawned",
                        Value::Num(self.workers_respawned.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "deadline_408",
                        Value::Num(self.deadline_408.load(Ordering::Relaxed) as f64),
                    ),
                ]),
            ),
        ])
    }

    /// Stamps "a resilience incident happened now" (caught panic, worker
    /// respawn). Call sites increment their counter *and* stamp, so the
    /// cumulative totals keep flowing into `/metrics` while `/healthz`
    /// judges only recency.
    pub fn note_incident(&self) {
        let us = Instant::now().saturating_duration_since(self.started).as_micros() as u64;
        self.last_incident_us.store(us.saturating_add(1), Ordering::Relaxed);
    }

    /// True when a resilience incident (caught panic or worker respawn)
    /// happened within the last [`DEGRADED_WINDOW`] — surfaced by
    /// `/healthz` as `"degraded"`. Unlike the cumulative counters, this
    /// un-latches: a server that healed and ran clean reports `"ok"`
    /// again, which is what fleet routers key re-admission on.
    pub fn degraded(&self) -> bool {
        self.degraded_at(Instant::now())
    }

    /// [`Metrics::degraded`] with an injectable clock, for tests.
    pub fn degraded_at(&self, now: Instant) -> bool {
        let stamp = self.last_incident_us.load(Ordering::Relaxed);
        if stamp == 0 {
            return false;
        }
        let now_us = now.saturating_duration_since(self.started).as_micros() as u64;
        now_us.saturating_sub(stamp - 1) < DEGRADED_WINDOW.as_micros() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_depth_tracks_peak() {
        let m = Metrics::new();
        m.note_accept(1);
        m.note_accept(2);
        m.note_accept(3);
        m.note_dequeue(2);
        assert_eq!(m.queue_depth(), 2);
        assert_eq!(m.queue_peak(), 3);
        assert_eq!(m.accepted.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn snapshot_is_valid_json_with_expected_fields() {
        let m = Metrics::new();
        m.encode.hit();
        m.encode.hit();
        m.decode.hit();
        m.decode.error();
        m.record_batch(4);
        m.latency_us.record(120);
        let text = m.to_json().to_string_compact();
        let v = spark_util::json::parse(&text).unwrap();
        let encode = v.get("endpoints").unwrap().get("encode").unwrap();
        assert_eq!(encode.get("hits").unwrap().as_f64(), Some(2.0));
        let decode = v.get("endpoints").unwrap().get("decode").unwrap();
        assert_eq!(decode.get("errors").unwrap().as_f64(), Some(1.0));
        let batching = v.get("batching").unwrap();
        assert_eq!(batching.get("batches").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            batching.get("batch_size").unwrap().get("count").unwrap().as_f64(),
            Some(1.0)
        );
        assert!(v.get("latency_us").unwrap().get("p99").unwrap().as_f64().unwrap() >= 120.0);
    }

    #[test]
    fn resilience_counters_flow_into_snapshot_and_degraded() {
        let m = Metrics::new();
        assert!(!m.degraded());
        m.deadline_408.fetch_add(1, Ordering::Relaxed);
        assert!(!m.degraded(), "shed requests alone are not degradation");
        m.panics_total.fetch_add(1, Ordering::Relaxed);
        m.workers_respawned.fetch_add(2, Ordering::Relaxed);
        m.note_incident();
        assert!(m.degraded());
        let text = m.to_json().to_string_compact();
        let v = spark_util::json::parse(&text).unwrap();
        let r = v.get("resilience").unwrap();
        assert_eq!(r.get("panics_total").unwrap().as_f64(), Some(1.0));
        assert_eq!(r.get("workers_respawned").unwrap().as_f64(), Some(2.0));
        assert_eq!(r.get("deadline_408").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn degraded_unlatches_once_the_incident_window_passes() {
        let m = Metrics::new();
        m.panics_total.fetch_add(1, Ordering::Relaxed);
        m.note_incident();
        let now = Instant::now();
        assert!(m.degraded_at(now), "fresh incident must degrade health");
        assert!(
            m.degraded_at(now + DEGRADED_WINDOW - Duration::from_secs(1)),
            "still inside the window"
        );
        assert!(
            !m.degraded_at(now + DEGRADED_WINDOW + Duration::from_secs(1)),
            "a healed server must report ok again"
        );
        // A new incident re-arms the window.
        m.note_incident();
        assert!(m.degraded_at(Instant::now()));
        // Counters never reset — only the health judgment un-latches.
        assert_eq!(m.panics_total.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn per_shard_stats_appear_in_the_snapshot() {
        let m = Metrics::with_shards(3);
        assert_eq!(m.shards.len(), 3);
        m.shards[1].hits.fetch_add(7, Ordering::Relaxed);
        m.shards[1].rejected_503.fetch_add(2, Ordering::Relaxed);
        m.shards[1].note_queue(5);
        m.shards[1].note_queue(1);
        m.rejected_429.fetch_add(4, Ordering::Relaxed);
        let v = spark_util::json::parse(&m.to_json().to_string_compact()).unwrap();
        let shards = v.get("shards").unwrap().as_array().unwrap();
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[1].get("hits").unwrap().as_f64(), Some(7.0));
        assert_eq!(shards[1].get("rejected_503").unwrap().as_f64(), Some(2.0));
        assert_eq!(shards[1].get("queue_peak").unwrap().as_f64(), Some(5.0));
        assert_eq!(shards[1].get("queue_depth").unwrap().as_f64(), Some(1.0));
        assert_eq!(shards[0].get("hits").unwrap().as_f64(), Some(0.0));
        assert_eq!(v.get("queue").unwrap().get("rejected_429").unwrap().as_f64(), Some(4.0));
        // Degenerate shard count clamps instead of vanishing.
        assert_eq!(Metrics::with_shards(0).shards.len(), 1);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let m = std::sync::Arc::new(Metrics::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        m.encode.hit();
                        m.latency_us.record(i + 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(m.encode.hits(), 4000);
        assert_eq!(m.latency_us.count(), 4000);
    }
}
