//! Tenant sharding: consistent hashing, admission control, and the
//! per-tenant registry.
//!
//! The serving plane assigns every request to a *tenant* (the
//! `X-Spark-Tenant` header, or `"default"` when absent) and routes the
//! tenant onto one of N independent shard worker pools through a
//! consistent-hash ring. Three properties make the ring the right
//! structure, and all three are pinned by tests:
//!
//! 1. **Stability** — a tenant always lands on the same shard, so one
//!    noisy tenant's queueing delay never leaks onto tenants hashed
//!    elsewhere.
//! 2. **Uniformity** — with `VNODES` virtual points per shard the load
//!    across 10k tenants balances to within a few percent.
//! 3. **Minimal disruption** — removing a shard remaps only the tenants
//!    that shard owned; everyone else keeps their assignment (the
//!    property plain `hash % n` does not have).
//!
//! Admission is a per-tenant token bucket: `quota_rps` sustained, up to
//! `quota_burst` tokens banked. A tenant over its quota gets an immediate
//! typed 429 — shedding *before* the shard queue, so a flooding tenant
//! burns almost no shard capacity.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use spark_util::fnv::fnv1a;
use spark_util::json::Value;
use spark_util::rng::splitmix64;

/// Virtual ring points per shard. 128 keeps the 10k-tenant spread within
/// ~±10% of uniform (pinned by `ring_balances_tenants`).
pub const VNODES: usize = 128;

/// Cap on distinct tenants tracked individually. Beyond this, new tenant
/// names share one overflow entry so an adversary minting unique names
/// cannot grow the registry without bound.
pub const MAX_TRACKED_TENANTS: usize = 8192;

/// Tenant used when the request carries no `X-Spark-Tenant` header.
pub const DEFAULT_TENANT: &str = "default";

/// Longest accepted tenant id (header value).
pub const MAX_TENANT_LEN: usize = 64;

// Tenant placement hashes with `spark_util::fnv::fnv1a` (imported above)
// — the same hash the container checksums use, stable across platforms
// and releases (a tenant's shard must never depend on compiler or stdlib
// hash seeds). `tenant_hash_is_pinned` holds golden digests so
// consolidating the implementation could not silently remap every tenant.

/// Validates a tenant id: 1..=[`MAX_TENANT_LEN`] visible ASCII characters
/// (no spaces or control bytes, so ids embed cleanly in JSON and logs).
///
/// # Errors
///
/// A description of the violated constraint.
pub fn validate_tenant(id: &str) -> Result<(), String> {
    if id.is_empty() {
        return Err("tenant id must not be empty".into());
    }
    if id.len() > MAX_TENANT_LEN {
        return Err(format!("tenant id longer than {MAX_TENANT_LEN} bytes"));
    }
    if !id.bytes().all(|b| (0x21..=0x7E).contains(&b)) {
        return Err("tenant id must be visible ASCII".into());
    }
    Ok(())
}

/// A consistent-hash ring mapping tenant ids onto `shards` pools.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, shard)` sorted by point; binary search finds the
    /// clockwise successor of a tenant's hash.
    points: Vec<(u64, u32)>,
    shards: usize,
}

impl HashRing {
    /// Builds the ring for shard ids `0..shards` with [`VNODES`] virtual
    /// points each. `shards` is clamped to at least 1.
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        Self { points: Self::points_for(&(0..shards as u32).collect::<Vec<_>>()), shards }
    }

    /// The ring with one shard removed — the disruption-minimality test
    /// compares assignments against this.
    pub fn without(&self, shard: u32) -> Self {
        let keep: Vec<u32> =
            (0..self.shards as u32).filter(|&s| s != shard).collect();
        Self { points: Self::points_for(&keep), shards: self.shards }
    }

    fn points_for(shards: &[u32]) -> Vec<(u64, u32)> {
        let mut points = Vec::with_capacity(shards.len() * VNODES);
        for &s in shards {
            // Each virtual point is a splitmix64 hash of (shard, replica):
            // deterministic, well spread, and independent of shard count.
            let mut state = 0x5A4D_0000u64 ^ (u64::from(s) << 32);
            for _ in 0..VNODES {
                points.push((splitmix64(&mut state), s));
            }
        }
        points.sort_unstable();
        points
    }

    /// Number of shards the ring was built over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `tenant`: the first ring point at or after the
    /// tenant's hash, wrapping at the top.
    pub fn shard_for(&self, tenant: &str) -> usize {
        let h = fnv1a(tenant.as_bytes());
        let i = self.points.partition_point(|&(p, _)| p < h);
        let (_, shard) = self.points[i % self.points.len()];
        shard as usize
    }
}

/// A token bucket: `rate` tokens/second sustained, at most `burst`
/// banked. `rate == 0` disables admission (always admits).
#[derive(Debug)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    /// `(tokens, last_refill)` — a tiny mutex; contention is per tenant,
    /// never global.
    state: Mutex<(f64, Instant)>,
}

impl TokenBucket {
    /// Creates a bucket starting full.
    pub fn new(rate: f64, burst: f64, now: Instant) -> Self {
        Self { rate: rate.max(0.0), burst: burst.max(1.0), state: Mutex::new((burst.max(1.0), now)) }
    }

    /// Takes `cost` tokens (a cheap request charges 1.0; heavyweight
    /// endpoints charge more, so admission tracks *work*, not request
    /// count). On refusal, returns the milliseconds until `cost` tokens
    /// will be available (the `retry_after_ms` the 429 carries).
    pub fn try_take(&self, now: Instant, cost: f64) -> Result<(), u64> {
        if self.rate <= 0.0 {
            return Ok(());
        }
        let cost = cost.max(0.0).min(self.burst);
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let (ref mut tokens, ref mut last) = *s;
        let dt = now.saturating_duration_since(*last).as_secs_f64();
        *tokens = (*tokens + dt * self.rate).min(self.burst);
        *last = now;
        if *tokens >= cost {
            *tokens -= cost;
            Ok(())
        } else {
            let wait_s = (cost - *tokens) / self.rate;
            Err((wait_s * 1000.0).ceil() as u64)
        }
    }
}

/// Everything the server tracks about one tenant.
#[derive(Debug)]
pub struct TenantState {
    /// The id (owned; also the registry key).
    pub id: String,
    /// Shard the ring assigned.
    pub shard: usize,
    /// Requests routed (admitted past the quota).
    pub hits: AtomicU64,
    /// Requests shed with 429 by the quota.
    pub rejected_429: AtomicU64,
    /// The admission bucket.
    pub bucket: TokenBucket,
}

impl TenantState {
    fn to_json(&self) -> Value {
        Value::object([
            ("tenant", Value::Str(self.id.clone())),
            ("shard", Value::Num(self.shard as f64)),
            ("hits", Value::Num(self.hits.load(Ordering::Relaxed) as f64)),
            (
                "rejected_429",
                Value::Num(self.rejected_429.load(Ordering::Relaxed) as f64),
            ),
        ])
    }
}

/// The bounded tenant registry: ring + per-tenant state + quota config.
pub struct Tenants {
    ring: HashRing,
    quota_rps: f64,
    quota_burst: f64,
    started: Instant,
    map: Mutex<HashMap<String, Arc<TenantState>>>,
    /// Shared state for tenants past [`MAX_TRACKED_TENANTS`]; keeps
    /// memory bounded under adversarial name minting. The overflow
    /// bucket is shared, so overflow tenants also share a quota —
    /// documented behavior, and itself a (coarse) protection.
    overflow: Arc<TenantState>,
}

impl Tenants {
    /// Creates the registry. `quota_rps == 0` disables admission control.
    pub fn new(shards: usize, quota_rps: f64, quota_burst: f64) -> Self {
        let started = Instant::now();
        let ring = HashRing::new(shards);
        let overflow = Arc::new(TenantState {
            id: "(overflow)".into(),
            shard: ring.shard_for("(overflow)"),
            hits: AtomicU64::new(0),
            rejected_429: AtomicU64::new(0),
            bucket: TokenBucket::new(quota_rps, quota_burst, started),
        });
        Self { ring, quota_rps, quota_burst, started, map: Mutex::new(HashMap::new()), overflow }
    }

    /// The ring (for assignment-invariant tests and the router).
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Time origin for the token buckets.
    pub fn started(&self) -> Instant {
        self.started
    }

    /// Looks up (or creates) the state for `tenant`.
    pub fn get(&self, tenant: &str) -> Arc<TenantState> {
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(state) = map.get(tenant) {
            return Arc::clone(state);
        }
        if map.len() >= MAX_TRACKED_TENANTS {
            return Arc::clone(&self.overflow);
        }
        let state = Arc::new(TenantState {
            id: tenant.to_string(),
            shard: self.ring.shard_for(tenant),
            hits: AtomicU64::new(0),
            rejected_429: AtomicU64::new(0),
            bucket: TokenBucket::new(self.quota_rps, self.quota_burst, Instant::now()),
        });
        map.insert(tenant.to_string(), Arc::clone(&state));
        state
    }

    /// Number of individually tracked tenants.
    pub fn tracked(&self) -> usize {
        self.map.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Total 429s across every tenant (including overflow).
    pub fn total_rejected_429(&self) -> u64 {
        let map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        map.values()
            .map(|t| t.rejected_429.load(Ordering::Relaxed))
            .sum::<u64>()
            + self.overflow.rejected_429.load(Ordering::Relaxed)
    }

    /// Snapshot for `/metrics`: tenant count, total 429s, and the top
    /// `top_n` tenants by hits (name-sorted on ties, so the dump is
    /// deterministic for a settled server).
    pub fn to_json(&self, top_n: usize) -> Value {
        let map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        let mut entries: Vec<&Arc<TenantState>> = map.values().collect();
        entries.sort_by(|a, b| {
            b.hits
                .load(Ordering::Relaxed)
                .cmp(&a.hits.load(Ordering::Relaxed))
                .then_with(|| a.id.cmp(&b.id))
        });
        let top: Vec<Value> = entries.iter().take(top_n).map(|t| t.to_json()).collect();
        let total_429 = entries
            .iter()
            .map(|t| t.rejected_429.load(Ordering::Relaxed))
            .sum::<u64>()
            + self.overflow.rejected_429.load(Ordering::Relaxed);
        Value::object([
            ("tracked", Value::Num(map.len() as f64)),
            ("rejected_429", Value::Num(total_429 as f64)),
            (
                "overflow_hits",
                Value::Num(self.overflow.hits.load(Ordering::Relaxed) as f64),
            ),
            ("top", Value::Array(top)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn tenant_hash_is_pinned() {
        // Golden digests from the original in-module FNV-1a loop, before
        // it was consolidated into spark_util::fnv. A drift here would
        // silently remap every tenant onto a different shard.
        assert_eq!(fnv1a(b"default"), 0xEBAD_A516_8620_C5FE);
        assert_eq!(fnv1a(b"tenant-0"), 0xC2EF_B028_E3EB_EED8);
        assert_eq!(fnv1a(b"acme"), 0x0724_D383_F4F6_DE0F);
    }

    #[test]
    fn same_tenant_always_lands_on_the_same_shard() {
        let ring = HashRing::new(4);
        for t in 0..1000 {
            let name = format!("tenant-{t}");
            let first = ring.shard_for(&name);
            for _ in 0..10 {
                assert_eq!(ring.shard_for(&name), first, "{name} moved");
            }
            // A freshly built identical ring agrees (no hidden state).
            assert_eq!(HashRing::new(4).shard_for(&name), first);
        }
    }

    #[test]
    fn ring_balances_tenants() {
        // 10k synthetic tenants over 4 shards: every shard within ±10%
        // of the uniform share.
        let shards = 4;
        let ring = HashRing::new(shards);
        let mut counts = vec![0usize; shards];
        for t in 0..10_000 {
            counts[ring.shard_for(&format!("tenant-{t:05}"))] += 1;
        }
        let share = 10_000.0 / shards as f64;
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > share * 0.9 && (c as f64) < share * 1.1,
                "shard {s} holds {c} of 10000 (uniform share {share})"
            );
        }
    }

    #[test]
    fn removing_a_shard_remaps_only_its_own_tenants() {
        let shards = 5;
        let ring = HashRing::new(shards);
        let removed = 2u32;
        let smaller = ring.without(removed);
        let mut remapped = 0usize;
        for t in 0..10_000 {
            let name = format!("tenant-{t:05}");
            let before = ring.shard_for(&name);
            let after = smaller.shard_for(&name);
            if before == removed as usize {
                assert_ne!(after, removed as usize, "{name} still on the removed shard");
                remapped += 1;
            } else {
                assert_eq!(before, after, "{name} moved although its shard survived");
            }
        }
        // The removed shard's tenants (~1/5 of them) all went somewhere.
        assert!(remapped > 1500, "only {remapped} tenants lived on the removed shard");
    }

    #[test]
    fn single_shard_ring_maps_everything_to_zero() {
        let ring = HashRing::new(1);
        for t in 0..100 {
            assert_eq!(ring.shard_for(&format!("t{t}")), 0);
        }
        // Degenerate input clamps rather than panics.
        assert_eq!(HashRing::new(0).shards(), 1);
    }

    #[test]
    fn token_bucket_admits_burst_then_refuses_then_refills() {
        let t0 = Instant::now();
        let b = TokenBucket::new(10.0, 5.0, t0);
        for i in 0..5 {
            assert!(b.try_take(t0, 1.0).is_ok(), "burst token {i}");
        }
        let retry = b.try_take(t0, 1.0).unwrap_err();
        assert!(retry >= 1 && retry <= 200, "retry_after {retry} ms at 10 rps");
        // 300 ms later: 3 tokens accrued.
        let t1 = t0 + Duration::from_millis(300);
        assert!(b.try_take(t1, 1.0).is_ok());
        assert!(b.try_take(t1, 1.0).is_ok());
        assert!(b.try_take(t1, 1.0).is_ok());
        assert!(b.try_take(t1, 1.0).is_err());
    }

    #[test]
    fn weighted_costs_drain_the_bucket_faster() {
        let t0 = Instant::now();
        let b = TokenBucket::new(10.0, 20.0, t0);
        // One 16-unit heavyweight call eats most of the burst...
        assert!(b.try_take(t0, 16.0).is_ok());
        // ...four cheap calls drain the rest...
        for _ in 0..4 {
            assert!(b.try_take(t0, 1.0).is_ok());
        }
        // ...and the next heavyweight call must wait for 16 tokens.
        let retry = b.try_take(t0, 16.0).unwrap_err();
        assert!(retry >= 1000, "16 tokens at 10/s is >= 1.6 s, got {retry} ms");
        // A cost above the burst clamps instead of wedging forever.
        let greedy = TokenBucket::new(10.0, 4.0, t0);
        assert!(greedy.try_take(t0, 1e9).is_ok());
    }

    #[test]
    fn zero_rate_bucket_always_admits() {
        let t0 = Instant::now();
        let b = TokenBucket::new(0.0, 0.0, t0);
        for _ in 0..1000 {
            assert!(b.try_take(t0, 1.0).is_ok());
        }
    }

    #[test]
    fn tenant_registry_is_bounded_and_stable() {
        let tenants = Tenants::new(4, 0.0, 0.0);
        let a1 = tenants.get("alpha");
        let a2 = tenants.get("alpha");
        assert!(Arc::ptr_eq(&a1, &a2), "same tenant must share state");
        assert_eq!(a1.shard, tenants.ring().shard_for("alpha"));
        for t in 0..MAX_TRACKED_TENANTS + 100 {
            tenants.get(&format!("mint-{t}"));
        }
        assert!(tenants.tracked() <= MAX_TRACKED_TENANTS);
        // Past the cap, new names share the overflow entry.
        let o1 = tenants.get("definitely-not-tracked-1");
        let o2 = tenants.get("definitely-not-tracked-2");
        assert!(Arc::ptr_eq(&o1, &o2));
    }

    #[test]
    fn tenant_snapshot_is_deterministic_and_ranked() {
        let tenants = Tenants::new(2, 0.0, 0.0);
        tenants.get("busy").hits.store(100, Ordering::Relaxed);
        tenants.get("quiet").hits.store(1, Ordering::Relaxed);
        tenants.get("medium").hits.store(50, Ordering::Relaxed);
        let v = tenants.to_json(2);
        assert_eq!(v.get("tracked").unwrap().as_f64(), Some(3.0));
        let top = v.get("top").unwrap().as_array().unwrap();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].get("tenant").unwrap().as_str(), Some("busy"));
        assert_eq!(top[1].get("tenant").unwrap().as_str(), Some("medium"));
    }

    #[test]
    fn tenant_validation_rejects_hostile_ids() {
        assert!(validate_tenant("ok-tenant_42.A").is_ok());
        assert!(validate_tenant("").is_err());
        assert!(validate_tenant(&"x".repeat(MAX_TENANT_LEN + 1)).is_err());
        assert!(validate_tenant("has space").is_err());
        assert!(validate_tenant("ctl\u{7}").is_err());
        assert!(validate_tenant("uni\u{e9}").is_err());
    }
}
