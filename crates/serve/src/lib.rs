//! spark-serve — a hermetic, batched request-serving subsystem over the
//! SPARK codec, quantizer, and accelerator simulator.
//!
//! Everything is std-only: the HTTP/1.1 front end is hand-rolled on
//! `std::net::TcpListener`, JSON goes through `spark_util::json`, and
//! concurrency uses the in-tree bounded channel and histogram. The crate
//! exists so the encode/analyze/simulate pipelines can be driven as a
//! long-lived service with *batching* — concurrent requests coalesce
//! into single `encode_batch` / `run_batch` library calls, which is
//! where the throughput win over one-request-per-call comes from.
//!
//! Layout:
//!
//! - [`http`] — request parsing, response writing, a tiny test client.
//! - [`io`] — streaming raw-f32 input shared with the CLI.
//! - [`api`] — JSON schemas shared with the CLI's `--json` mode.
//! - [`batch`] — the generic adaptive micro-batcher.
//! - [`load`] — the deterministic open-loop load harness.
//! - [`metrics`] — lock-free counters and latency/batch histograms.
//! - [`shard`] — consistent-hash tenant routing and token-bucket quotas.
//! - [`server`] — acceptor, shard worker pools, routing, graceful shutdown.
//! - [`router`] — the fleet front: circuit breakers, retry budget, and
//!   health probing over N independent backend processes.
//!
//! ```no_run
//! let server = spark_serve::Server::start(spark_serve::ServeConfig::default()).unwrap();
//! println!("listening on {}", server.addr());
//! server.join(); // returns after POST /shutdown
//! ```

pub mod api;
pub mod batch;
pub mod http;
pub mod io;
pub mod load;
pub mod metrics;
pub mod router;
pub mod server;
pub mod shard;

pub use batch::Batcher;
pub use metrics::Metrics;
pub use router::{Router, RouterConfig};
pub use server::{ServeConfig, Server};

use spark_util::json::parse;

fn expect_200(
    addr: &str,
    method: &str,
    path: &str,
    content_type: &str,
    body: &[u8],
) -> Result<spark_util::Value, String> {
    let (status, reply) = http::client_request(addr, method, path, content_type, body)?;
    let text = String::from_utf8(reply).map_err(|e| format!("{method} {path}: {e}"))?;
    if status != 200 {
        return Err(format!("{method} {path}: status {status}: {text}"));
    }
    parse(&text).map_err(|e| format!("{method} {path}: bad JSON: {e}"))
}

/// One-shot self-test used by `spark serve --smoke` and the CI smoke
/// stage: boots an ephemeral server, exercises every endpoint once,
/// checks the metrics add up, and shuts down cleanly.
///
/// # Errors
///
/// A description of the first check that failed.
pub fn smoke() -> Result<(), String> {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_depth: 16,
        batch_window: std::time::Duration::from_millis(1),
        max_batch: 8,
        ..ServeConfig::default()
    })
    .map_err(|e| format!("start: {e}"))?;
    let addr = server.addr().to_string();

    let health = expect_200(&addr, "GET", "/healthz", "", b"")?;
    if health.get("status").and_then(|v| v.as_str()) != Some("ok") {
        return Err(format!("healthz: unexpected body {health:?}"));
    }

    let values: Vec<f32> = (0..4096).map(|i| ((i * 37) % 100) as f32 / 100.0 - 0.5).collect();
    let raw: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
    let encoded = expect_200(&addr, "POST", "/v1/encode", "application/octet-stream", &raw)?;
    if encoded.get("elements").and_then(|v| v.as_f64()) != Some(values.len() as f64) {
        return Err(format!("encode: wrong element count in {encoded:?}"));
    }
    let hex = encoded
        .get("stream_hex")
        .and_then(|v| v.as_str())
        .ok_or("encode: missing stream_hex")?
        .to_string();

    let decode_body = format!("{{\"stream_hex\": \"{hex}\"}}");
    let decoded =
        expect_200(&addr, "POST", "/v1/decode", "application/json", decode_body.as_bytes())?;
    if decoded.get("elements").and_then(|v| v.as_f64()) != Some(values.len() as f64) {
        return Err(format!("decode: wrong element count in {decoded:?}"));
    }

    let analyzed = expect_200(&addr, "POST", "/v1/analyze", "application/octet-stream", &raw)?;
    if analyzed.get("spark_bits").and_then(|v| v.as_f64()).unwrap_or(0.0) < 4.0 {
        return Err(format!("analyze: implausible spark_bits in {analyzed:?}"));
    }

    let simulated = expect_200(
        &addr,
        "POST",
        "/v1/simulate",
        "application/json",
        b"{\"model\": \"resnet18\", \"accelerator\": \"spark\"}",
    )?;
    if simulated.get("total_cycles").and_then(|v| v.as_f64()).unwrap_or(0.0) <= 0.0 {
        return Err(format!("simulate: implausible cycles in {simulated:?}"));
    }

    let infer_values: Vec<f32> =
        (0..api::INFER_INPUTS).map(|i| (i as f32 * 0.11).sin()).collect();
    let infer_body = format!(
        "{{\"values\": [{}]}}",
        infer_values.iter().map(f32::to_string).collect::<Vec<_>>().join(", ")
    );
    let inferred =
        expect_200(&addr, "POST", "/v1/infer", "application/json", infer_body.as_bytes())?;
    let outputs = inferred.get("outputs").and_then(|v| v.as_array()).map_or(0, |a| a.len());
    if outputs != api::INFER_OUTPUTS {
        return Err(format!("infer: expected {} outputs in {inferred:?}", api::INFER_OUTPUTS));
    }
    let ratio = inferred.get("weight_bytes_ratio").and_then(|v| v.as_f64()).unwrap_or(1.0);
    if ratio >= 0.55 {
        return Err(format!("infer: encoded weights not resident (ratio {ratio})"));
    }

    let metrics = expect_200(&addr, "GET", "/metrics", "", b"")?;
    let hits = |endpoint: &str| {
        metrics
            .get("endpoints")
            .and_then(|v| v.get(endpoint))
            .and_then(|v| v.get("hits"))
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0)
    };
    for endpoint in ["encode", "decode", "analyze", "simulate", "infer"] {
        if hits(endpoint) < 1.0 {
            return Err(format!("metrics: no hits recorded for {endpoint}: {metrics:?}"));
        }
    }

    let bye = expect_200(&addr, "POST", "/shutdown", "", b"")?;
    if bye.get("status").and_then(|v| v.as_str()) != Some("shutting down") {
        return Err(format!("shutdown: unexpected body {bye:?}"));
    }
    server.join();
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke_passes_end_to_end() {
        super::smoke().unwrap();
    }
}
