//! Raw little-endian `f32` input, shared by the CLI file commands and the
//! server's `application/octet-stream` bodies.
//!
//! The reader streams through a fixed 64 KiB buffer — it never calls
//! `read_to_end` into an unbounded intermediate `Vec<u8>`, so peak memory
//! is the output vector plus one buffer regardless of input size — and
//! rejects empty input explicitly instead of producing a zero-length
//! tensor that downstream quantization would silently accept.

use std::fs::File;
use std::io::{BufReader, Read};

/// Fixed chunk size the reader streams through.
const CHUNK: usize = 64 * 1024;

/// Why an f32 payload could not be read.
#[derive(Debug)]
pub enum F32ReadError {
    /// The input held zero bytes.
    Empty,
    /// The byte count is not a multiple of 4.
    Misaligned(/** Total bytes seen. */ usize),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for F32ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            F32ReadError::Empty => write!(f, "empty input: expected raw little-endian f32 data"),
            F32ReadError::Misaligned(n) => {
                write!(f, "length {n} is not a multiple of 4 (raw little-endian f32 expected)")
            }
            F32ReadError::Io(e) => write!(f, "read failed: {e}"),
        }
    }
}

impl std::error::Error for F32ReadError {}

impl From<std::io::Error> for F32ReadError {
    fn from(e: std::io::Error) -> Self {
        F32ReadError::Io(e)
    }
}

/// Streams raw little-endian `f32` values from `r` through a fixed-size
/// buffer.
///
/// # Errors
///
/// [`F32ReadError::Empty`] for zero bytes, [`F32ReadError::Misaligned`]
/// when the total length is not a multiple of 4, [`F32ReadError::Io`] on
/// read failure.
pub fn read_f32_stream(mut r: impl Read) -> Result<Vec<f32>, F32ReadError> {
    let mut out = Vec::new();
    let mut buf = [0u8; CHUNK];
    let mut pending = [0u8; 4];
    let mut pending_len = 0usize;
    let mut total = 0usize;
    loop {
        let n = r.read(&mut buf)?;
        if n == 0 {
            break;
        }
        total += n;
        let mut chunk = &buf[..n];
        // Complete a value split across chunk boundaries.
        if pending_len > 0 {
            let take = (4 - pending_len).min(chunk.len());
            pending[pending_len..pending_len + take].copy_from_slice(&chunk[..take]);
            pending_len += take;
            chunk = &chunk[take..];
            if pending_len == 4 {
                out.push(f32::from_le_bytes(pending));
                pending_len = 0;
            }
        }
        let whole = chunk.len() / 4 * 4;
        out.extend(
            chunk[..whole]
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])),
        );
        let rest = &chunk[whole..];
        if !rest.is_empty() {
            // `pending` is necessarily empty here: a non-empty remainder
            // means the chunk survived the carry-completion step above.
            pending[..rest.len()].copy_from_slice(rest);
            pending_len = rest.len();
        }
    }
    if total == 0 {
        return Err(F32ReadError::Empty);
    }
    if pending_len != 0 {
        return Err(F32ReadError::Misaligned(total));
    }
    Ok(out)
}

/// Parses an in-memory raw-f32 body (the server's octet-stream payloads).
///
/// # Errors
///
/// Same contract as [`read_f32_stream`].
pub fn f32_from_bytes(bytes: &[u8]) -> Result<Vec<f32>, F32ReadError> {
    read_f32_stream(bytes)
}

/// Opens and streams a raw-f32 file.
///
/// # Errors
///
/// Same contract as [`read_f32_stream`]; open failures surface as
/// [`F32ReadError::Io`].
pub fn read_f32_file(path: &str) -> Result<Vec<f32>, F32ReadError> {
    read_f32_stream(BufReader::new(File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let values = [1.5f32, -2.25, 0.0, 1e-3, f32::MIN, f32::MAX];
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        assert_eq!(f32_from_bytes(&bytes).unwrap(), values);
    }

    #[test]
    fn empty_input_is_an_explicit_error() {
        assert!(matches!(f32_from_bytes(&[]), Err(F32ReadError::Empty)));
    }

    #[test]
    fn misaligned_input_errors_with_length() {
        assert!(matches!(
            f32_from_bytes(&[1, 2, 3]),
            Err(F32ReadError::Misaligned(3))
        ));
        assert!(matches!(
            f32_from_bytes(&[0; 9]),
            Err(F32ReadError::Misaligned(9))
        ));
    }

    /// A reader that feeds one byte at a time — the worst possible chunking
    /// for the boundary-straddling logic.
    struct Dribble<'a>(&'a [u8]);

    impl Read for Dribble<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            match self.0.split_first() {
                Some((&b, rest)) => {
                    buf[0] = b;
                    self.0 = rest;
                    Ok(1)
                }
                None => Ok(0),
            }
        }
    }

    #[test]
    fn survives_arbitrary_chunk_boundaries() {
        let values: Vec<f32> = (0..100).map(|i| i as f32 * 0.5 - 10.0).collect();
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        assert_eq!(read_f32_stream(Dribble(&bytes)).unwrap(), values);
    }

    #[test]
    fn file_reader_streams_large_inputs() {
        let path = std::env::temp_dir().join("spark_serve_io_large.f32");
        // Larger than one 64 KiB chunk to exercise the loop.
        let values: Vec<f32> = (0..40_000).map(|i| (i % 997) as f32).collect();
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        std::fs::write(&path, &bytes).unwrap();
        let got = read_f32_file(path.to_str().unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(got, values);
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            read_f32_file("/nonexistent/spark.f32"),
            Err(F32ReadError::Io(_))
        ));
    }
}
