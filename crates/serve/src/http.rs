//! Hand-rolled HTTP/1.1 on `std::net::TcpStream` — just enough protocol
//! for the serving API, with hard limits everywhere a hostile peer could
//! make us allocate or wait unboundedly.
//!
//! Scope: one request per connection (`Connection: close` on every
//! response), `Content-Length` bodies only (no chunked transfer), header
//! block capped at [`MAX_HEADER_BYTES`], body capped by the server config.
//! Anything outside that scope maps to a 4xx, never a hang or a panic.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Largest accepted request-line + header block.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Per-connection socket read/write timeout: a stalled or malicious peer
/// ties up a worker for at most this long *per read*.
pub const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Default overall deadline for reading one complete request. The per-read
/// [`IO_TIMEOUT`] only bounds *idle* gaps — a slowloris client dripping one
/// byte every few seconds resets it forever. The deadline bounds the whole
/// parse, drip-fed or not.
pub const REQUEST_DEADLINE: Duration = Duration::from_secs(30);

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, … (uppercased by the peer per spec; not normalized).
    pub method: String,
    /// Path component only — query strings are split off into `query`.
    pub path: String,
    /// Raw query string after `?` (empty when absent).
    pub query: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body, fully read (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The request `Content-Type`, defaulting to empty.
    pub fn content_type(&self) -> &str {
        self.header("content-type").unwrap_or("")
    }
}

/// Why a request could not be read; each maps to one response status.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or length field → 400.
    BadRequest(String),
    /// Header block exceeded [`MAX_HEADER_BYTES`] → 431.
    HeadersTooLarge,
    /// Declared body exceeds the configured cap → 413.
    BodyTooLarge { /// What the peer declared.
        declared: usize, /// The configured cap.
        limit: usize },
    /// `Transfer-Encoding` (chunked bodies are out of scope) → 411.
    LengthRequired,
    /// The overall request deadline elapsed before the request finished
    /// arriving (slowloris or a very slow link) → 408.
    Deadline(Duration),
    /// Socket error or timeout mid-request (no response possible).
    Io(std::io::Error),
}

impl HttpError {
    /// `(status, reason, message)` for the error response.
    pub fn status(&self) -> (u16, &'static str, String) {
        match self {
            HttpError::BadRequest(m) => (400, "Bad Request", m.clone()),
            HttpError::HeadersTooLarge => (
                431,
                "Request Header Fields Too Large",
                format!("header block exceeds {MAX_HEADER_BYTES} bytes"),
            ),
            HttpError::BodyTooLarge { declared, limit } => (
                413,
                "Payload Too Large",
                format!("declared body of {declared} bytes exceeds the {limit}-byte limit"),
            ),
            HttpError::LengthRequired => (
                411,
                "Length Required",
                "a Content-Length body is required (chunked encoding unsupported)".to_string(),
            ),
            HttpError::Deadline(limit) => (
                408,
                "Request Timeout",
                format!("request not complete within the {} ms deadline", limit.as_millis()),
            ),
            HttpError::Io(e) => (400, "Bad Request", format!("i/o error: {e}")),
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// One socket read bounded by both the per-read [`IO_TIMEOUT`] (idle peer)
/// and the request-wide deadline (drip-feeding peer). A timeout past the
/// deadline is a typed [`HttpError::Deadline`]; an idle timeout inside the
/// deadline stays an [`HttpError::Io`], preserving the old semantics.
fn read_bounded(
    stream: &mut TcpStream,
    buf: &mut [u8],
    started: Instant,
    deadline: Duration,
) -> Result<usize, HttpError> {
    let elapsed = started.elapsed();
    if elapsed >= deadline {
        return Err(HttpError::Deadline(deadline));
    }
    // `set_read_timeout(Some(ZERO))` is an error by contract; clamp up.
    let per_read = (deadline - elapsed).min(IO_TIMEOUT).max(Duration::from_millis(1));
    stream.set_read_timeout(Some(per_read))?;
    match stream.read(buf) {
        Ok(n) => Ok(n),
        Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
            if started.elapsed() >= deadline {
                Err(HttpError::Deadline(deadline))
            } else {
                Err(HttpError::Io(e))
            }
        }
        Err(e) => Err(HttpError::Io(e)),
    }
}

/// Reads one request from the stream, honoring all the module's limits,
/// within an overall `deadline` (use [`REQUEST_DEADLINE`] by default).
///
/// # Errors
///
/// Any [`HttpError`]; the caller decides whether a response is still
/// writable (everything except [`HttpError::Io`]).
pub fn read_request(
    stream: &mut TcpStream,
    max_body: usize,
    deadline: Duration,
) -> Result<Request, HttpError> {
    let started = Instant::now();
    stream.set_write_timeout(Some(IO_TIMEOUT))?;

    // Accumulate until the blank line, never past MAX_HEADER_BYTES.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() >= MAX_HEADER_BYTES {
            return Err(HttpError::HeadersTooLarge);
        }
        let n = read_bounded(stream, &mut chunk, started, deadline)?;
        if n == 0 {
            return Err(HttpError::BadRequest("connection closed mid-headers".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| HttpError::BadRequest("non-UTF-8 header block".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("");
    let version = parts.next().unwrap_or("");
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1") {
        return Err(HttpError::BadRequest(format!(
            "malformed request line {request_line:?}"
        )));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let request = Request {
        method,
        path,
        query,
        headers,
        body: Vec::new(),
    };

    if request.header("transfer-encoding").is_some() {
        return Err(HttpError::LengthRequired);
    }
    let declared: usize = match request.header("content-length") {
        Some(v) => v
            .parse()
            .map_err(|_| HttpError::BadRequest(format!("bad content-length {v:?}")))?,
        None => 0,
    };
    if declared > max_body {
        return Err(HttpError::BodyTooLarge { declared, limit: max_body });
    }

    // Body: whatever arrived behind the headers plus the remainder.
    let mut body = buf[header_end + 4..].to_vec();
    if body.len() > declared {
        return Err(HttpError::BadRequest("body longer than content-length".into()));
    }
    while body.len() < declared {
        let want = (declared - body.len()).min(chunk.len());
        let n = read_bounded(stream, &mut chunk[..want], started, deadline)?;
        if n == 0 {
            return Err(HttpError::BadRequest("connection closed mid-body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }

    Ok(Request { body, ..request })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes a complete response and flushes. Always `Connection: close`.
///
/// # Errors
///
/// Propagates socket errors (the peer may already be gone; callers treat
/// this as non-fatal).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write_response_with_headers(stream, status, reason, content_type, &[], body)
}

/// [`write_response`] with extra response headers (e.g. `Retry-After` on
/// a 429). Header names and values are emitted verbatim; callers supply
/// well-formed tokens only.
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_response_with_headers(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra: &[(&str, String)],
    body: &[u8],
) -> std::io::Result<()> {
    let extra: String = extra.iter().map(|(k, v)| format!("{k}: {v}\r\n")).collect();
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n{extra}Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes a JSON response body.
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_json(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &spark_util::Value,
) -> std::io::Result<()> {
    write_json_with_headers(stream, status, reason, &[], body)
}

/// [`write_json`] with extra response headers.
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_json_with_headers(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    extra: &[(&str, String)],
    body: &spark_util::Value,
) -> std::io::Result<()> {
    let text = body.to_string_compact();
    write_response_with_headers(stream, status, reason, "application/json", extra, text.as_bytes())
}

/// Why a client call failed, split by transport failure mode so the load
/// harness and the fleet router can tell a dead backend (connect refused)
/// from a wedged one (read timeout) from one that died mid-response
/// (short body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// TCP connect failed (connection refused / unreachable) — the
    /// signature of a process that is simply gone.
    Connect(String),
    /// The socket timed out sending the request or awaiting the response
    /// — the signature of a wedged or overloaded peer.
    Timeout(String),
    /// The peer closed (or reset) before a complete header block +
    /// status line arrived — the signature of a peer killed mid-write.
    ShortBody(String),
    /// Any other socket or protocol failure.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(m) => write!(f, "connect: {m}"),
            ClientError::Timeout(m) => write!(f, "timeout: {m}"),
            ClientError::ShortBody(m) => write!(f, "short body: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
        }
    }
}

fn classify_io(stage: &str, e: &std::io::Error) -> ClientError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
            ClientError::Timeout(format!("{stage}: {e}"))
        }
        io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionAborted
        | io::ErrorKind::BrokenPipe
        | io::ErrorKind::UnexpectedEof => ClientError::ShortBody(format!("{stage}: {e}")),
        _ => ClientError::Protocol(format!("{stage}: {e}")),
    }
}

/// A full client-side view of one response: status, headers (names
/// lowercased), body.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// The status code from the status line.
    pub status: u16,
    /// Response headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First response header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// Minimal blocking client for tests, the smoke check, and the bench
/// driver: one request, one parsed response.
///
/// # Errors
///
/// Returns an error string on connection, protocol, or timeout failures.
pub fn client_request(
    addr: &str,
    method: &str,
    path: &str,
    content_type: &str,
    body: &[u8],
) -> Result<(u16, Vec<u8>), String> {
    client_request_with_headers(addr, method, path, content_type, &[], body)
}

/// [`client_request`] with extra request headers (e.g. `X-Spark-Tenant`
/// for the sharded router).
///
/// # Errors
///
/// Returns an error string on connection, protocol, or timeout failures.
pub fn client_request_with_headers(
    addr: &str,
    method: &str,
    path: &str,
    content_type: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> Result<(u16, Vec<u8>), String> {
    client_call(addr, method, path, content_type, headers, body)
        .map(|r| (r.status, r.body))
        .map_err(|e| e.to_string())
}

/// The full-fidelity client: typed transport errors and response headers
/// included. Everything else wraps this.
///
/// # Errors
///
/// A [`ClientError`] classifying the transport failure mode.
pub fn client_call(
    addr: &str,
    method: &str,
    path: &str,
    content_type: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> Result<ClientResponse, ClientError> {
    let mut stream = TcpStream::connect(addr)
        .map_err(|e| ClientError::Connect(format!("{addr}: {e}")))?;
    stream
        .set_read_timeout(Some(IO_TIMEOUT))
        .and_then(|()| stream.set_write_timeout(Some(IO_TIMEOUT)))
        .map_err(|e| ClientError::Protocol(format!("timeouts: {e}")))?;
    let extra: String =
        headers.iter().map(|(k, v)| format!("{k}: {v}\r\n")).collect();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: spark\r\nContent-Type: {content_type}\r\n{extra}Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .map_err(|e| classify_io("send", &e))?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| classify_io("recv", &e))?;
    let header_end = find_header_end(&raw).ok_or_else(|| {
        ClientError::ShortBody(format!(
            "response missing header terminator ({} bytes received)",
            raw.len()
        ))
    })?;
    let head = std::str::from_utf8(&raw[..header_end])
        .map_err(|e| ClientError::Protocol(e.to_string()))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::Protocol(format!("bad status line in {head:?}")))?;
    let resp_headers = lines
        .filter(|l| !l.is_empty())
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Ok(ClientResponse {
        status,
        headers: resp_headers,
        body: raw[header_end + 4..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn roundtrip(request_bytes: &[u8], max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let bytes = request_bytes.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&bytes).unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        let r = read_request(&mut conn, max_body, Duration::from_secs(10));
        writer.join().unwrap();
        r
    }

    #[test]
    fn parses_post_with_body() {
        let req = roundtrip(
            b"POST /v1/encode?mode=raw HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\nContent-Length: 5\r\n\r\nhello",
            1024,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/encode");
        assert_eq!(req.query, "mode=raw");
        assert_eq!(req.content_type(), "application/json");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_get_without_body() {
        let req = roundtrip(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n", 1024).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn oversized_body_is_rejected_up_front() {
        let err = roundtrip(
            b"POST /v1/encode HTTP/1.1\r\nContent-Length: 999999\r\n\r\n",
            1024,
        )
        .unwrap_err();
        assert_eq!(err.status().0, 413);
    }

    #[test]
    fn chunked_transfer_is_rejected() {
        let err = roundtrip(
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            1024,
        )
        .unwrap_err();
        assert_eq!(err.status().0, 411);
    }

    #[test]
    fn malformed_request_line_is_400() {
        for bad in [&b"NOT-HTTP\r\n\r\n"[..], b"GET /\r\n\r\n", b"\r\n\r\n"] {
            let err = roundtrip(bad, 1024).unwrap_err();
            assert_eq!(err.status().0, 400, "{bad:?}");
        }
    }

    #[test]
    fn truncated_body_errors() {
        let err = roundtrip(
            b"POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\nonly-a-little",
            1024,
        )
        .unwrap_err();
        assert_eq!(err.status().0, 400);
    }

    #[test]
    fn header_block_cap_is_enforced() {
        let mut req = b"GET / HTTP/1.1\r\n".to_vec();
        let filler = format!("X-Pad: {}\r\n", "a".repeat(1000));
        for _ in 0..20 {
            req.extend_from_slice(filler.as_bytes());
        }
        req.extend_from_slice(b"\r\n");
        let err = roundtrip(&req, 1024).unwrap_err();
        assert_eq!(err.status().0, 431);
    }

    #[test]
    fn drip_fed_request_hits_the_deadline() {
        // A slowloris peer: valid header prefix, then one byte at a time
        // with pauses. The per-read timeout alone would never fire (each
        // gap is short); the overall deadline must.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let deadline = Duration::from_millis(200);
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"GET / HT").unwrap();
            for _ in 0..20 {
                std::thread::sleep(Duration::from_millis(40));
                if s.write_all(b"x").is_err() {
                    break; // server gave up — exactly what we want
                }
            }
        });
        let (mut conn, _) = listener.accept().unwrap();
        let started = Instant::now();
        let err = read_request(&mut conn, 1024, deadline).unwrap_err();
        let waited = started.elapsed();
        drop(conn);
        writer.join().unwrap();
        assert!(matches!(err, HttpError::Deadline(d) if d == deadline), "{err:?}");
        assert_eq!(err.status().0, 408);
        // Shed close to the deadline, not after some multiple of IO_TIMEOUT.
        assert!(waited < deadline + Duration::from_secs(2), "took {waited:?}");
    }

    #[test]
    fn deadline_in_the_body_phase_is_also_caught() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let deadline = Duration::from_millis(150);
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"POST /x HTTP/1.1\r\nContent-Length: 50\r\n\r\npartial")
                .unwrap();
            std::thread::sleep(Duration::from_millis(500)); // never finishes
        });
        let (mut conn, _) = listener.accept().unwrap();
        let err = read_request(&mut conn, 1024, deadline).unwrap_err();
        drop(conn);
        writer.join().unwrap();
        assert_eq!(err.status().0, 408, "{err:?}");
    }

    #[test]
    fn client_extra_headers_arrive_lowercased() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let req = read_request(&mut conn, 1024, Duration::from_secs(10)).unwrap();
            let tenant = req.header("x-spark-tenant").map(str::to_string);
            write_response(&mut conn, 200, "OK", "text/plain", b"ok").unwrap();
            tenant
        });
        let (status, _) = client_request_with_headers(
            &addr,
            "POST",
            "/x",
            "text/plain",
            &[("X-Spark-Tenant", "acme")],
            b"",
        )
        .unwrap();
        assert_eq!(status, 200);
        assert_eq!(server.join().unwrap().as_deref(), Some("acme"));
    }

    #[test]
    fn extra_response_headers_round_trip_through_the_client() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let _ = read_request(&mut conn, 1024, Duration::from_secs(10)).unwrap();
            write_response_with_headers(
                &mut conn,
                429,
                "Too Many Requests",
                "application/json",
                &[("Retry-After", "3".to_string())],
                b"{}",
            )
            .unwrap();
        });
        let resp = client_call(&addr, "GET", "/x", "", &[], b"").unwrap();
        server.join().unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.header("retry-after"), Some("3"));
        assert_eq!(resp.body, b"{}");
    }

    #[test]
    fn client_errors_classify_by_failure_mode() {
        // Connect-refused: bind an ephemeral port, drop the listener, dial.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        match client_call(&addr, "GET", "/", "", &[], b"") {
            Err(ClientError::Connect(_)) => {}
            other => panic!("dial of a closed port must classify Connect, got {other:?}"),
        }

        // Short body: the peer accepts, writes half a header block, dies.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut sink = [0u8; 256];
            let _ = conn.read(&mut sink);
            conn.write_all(b"HTTP/1.1 200 OK\r\nContent-").unwrap();
            // drop closes the socket mid-headers
        });
        match client_call(&addr, "GET", "/", "", &[], b"") {
            Err(ClientError::ShortBody(_)) => {}
            other => panic!("truncated response must classify ShortBody, got {other:?}"),
        }
        server.join().unwrap();
    }

    #[test]
    fn client_and_server_halves_agree() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let req = read_request(&mut conn, 1024, Duration::from_secs(10)).unwrap();
            assert_eq!(req.body, b"ping");
            write_response(&mut conn, 200, "OK", "text/plain", b"pong").unwrap();
        });
        let (status, body) = client_request(&addr, "POST", "/echo", "text/plain", b"ping").unwrap();
        server.join().unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"pong");
    }
}
