//! Long-tailed parameter distributions.
//!
//! Quantized DNN tensors share one shape: a dense, roughly Gaussian body and
//! a sparse tail of large-magnitude outliers that stretches the quantization
//! range (this is the premise of OLAccel, GOBO, OliVe and SPARK alike). The
//! variants here let experiments dial body width and tail weight
//! independently.

use spark_tensor::Tensor;
use spark_util::dist::{Gamma, Normal, StandardNormal};
use spark_util::Rng;

/// A synthetic parameter distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamDistribution {
    /// Pure Gaussian with the given standard deviation.
    Gaussian {
        /// Standard deviation of the body.
        std: f32,
    },
    /// Laplace (double exponential) — heavier tail than Gaussian.
    Laplace {
        /// Scale parameter `b` (std = `b * sqrt(2)`).
        scale: f32,
    },
    /// Gaussian body plus planted symmetric outliers: with probability
    /// `outlier_prob` a sample is drawn at `outlier_ratio` standard
    /// deviations (± 25 % jitter). This is the workhorse for matching the
    /// per-model short-code fractions.
    GaussianWithOutliers {
        /// Standard deviation of the body.
        std: f32,
        /// Probability of drawing an outlier.
        outlier_prob: f32,
        /// Outlier magnitude in body standard deviations.
        outlier_ratio: f32,
    },
    /// Student-t with `nu` degrees of freedom — a smooth heavy tail.
    StudentT {
        /// Degrees of freedom (smaller = heavier tail; must be > 2).
        nu: f32,
        /// Scale multiplier.
        scale: f32,
    },
}

impl ParamDistribution {
    /// Draws `n` samples with a deterministic seed.
    pub fn sample(&self, n: usize, seed: u64) -> Vec<f32> {
        let mut rng = Rng::seed_from_u64(seed);
        (0..n).map(|_| self.draw(&mut rng)).collect()
    }

    /// Draws `n` samples into a rank-1 tensor.
    pub fn sample_tensor(&self, n: usize, seed: u64) -> Tensor {
        Tensor::from_vec(self.sample(n, seed), &[n]).expect("length matches")
    }

    /// Draws one sample from the provided RNG.
    pub fn draw(&self, rng: &mut Rng) -> f32 {
        match *self {
            ParamDistribution::Gaussian { std } => StandardNormal.sample_f32(rng) * std,
            ParamDistribution::Laplace { scale } => {
                // Inverse-CDF sampling: u uniform in (-0.5, 0.5),
                // x = -b * sgn(u) * ln(1 - 2|u|).
                let u = rng.gen_f32() - 0.5;
                let m = (1.0 - 2.0 * u.abs()).max(f32::MIN_POSITIVE);
                -scale * u.signum() * m.ln()
            }
            ParamDistribution::GaussianWithOutliers {
                std,
                outlier_prob,
                outlier_ratio,
            } => {
                if rng.gen_f32() < outlier_prob {
                    let sign = if rng.gen_bool() { 1.0 } else { -1.0 };
                    let jitter = 0.75 + 0.5 * rng.gen_f32();
                    sign * outlier_ratio * std * jitter
                } else {
                    StandardNormal.sample_f32(rng) * std
                }
            }
            ParamDistribution::StudentT { nu, scale } => {
                // t = z / sqrt(chi2_nu / nu), with chi2_nu ~ Gamma(nu/2, 2).
                let z = StandardNormal.sample_f32(rng);
                let k = nu.max(2.1);
                let chi2 = Gamma::new(f64::from(k) / 2.0, 2.0)
                    .expect("valid gamma")
                    .sample_f32(rng);
                scale * z / (chi2 / k).sqrt()
            }
        }
    }

    /// Typical DNN weight tensor: unit-free Gaussian body (`std = 0.02`)
    /// with a 0.3 % tail at 25 sigma — close to published BERT statistics.
    pub fn typical_weights() -> Self {
        ParamDistribution::GaussianWithOutliers {
            std: 0.02,
            outlier_prob: 0.003,
            outlier_ratio: 25.0,
        }
    }
}

/// A normal distribution helper re-exported for tests and calibration.
pub fn normal(std: f32) -> Normal {
    Normal::new(0.0, f64::from(std)).expect("positive std")
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_tensor::stats;

    #[test]
    fn sampling_is_deterministic() {
        let d = ParamDistribution::Gaussian { std: 1.0 };
        assert_eq!(d.sample(100, 42), d.sample(100, 42));
        assert_ne!(d.sample(100, 42), d.sample(100, 43));
    }

    #[test]
    fn gaussian_moments() {
        let d = ParamDistribution::Gaussian { std: 2.0 };
        let t = d.sample_tensor(50_000, 1);
        let s = stats::summarize(&t);
        assert!(s.mean.abs() < 0.05, "mean {}", s.mean);
        assert!((s.std - 2.0).abs() < 0.05, "std {}", s.std);
    }

    #[test]
    fn laplace_heavier_tail_than_gaussian() {
        let g = ParamDistribution::Gaussian { std: 1.0 }.sample_tensor(50_000, 2);
        let l = ParamDistribution::Laplace { scale: 1.0 / 2f32.sqrt() }.sample_tensor(50_000, 2);
        // Same variance, but Laplace has a larger abs-max / std ratio.
        let ratio = |t: &Tensor| stats::abs_max(t) / stats::summarize(t).std;
        assert!(ratio(&l) > ratio(&g));
    }

    #[test]
    fn outliers_stretch_the_range() {
        let base = ParamDistribution::Gaussian { std: 0.02 }.sample_tensor(20_000, 3);
        let tail = ParamDistribution::typical_weights().sample_tensor(20_000, 3);
        assert!(stats::abs_max(&tail) > 3.0 * stats::abs_max(&base));
    }

    #[test]
    fn outlier_probability_respected() {
        let d = ParamDistribution::GaussianWithOutliers {
            std: 1.0,
            outlier_prob: 0.01,
            outlier_ratio: 50.0,
        };
        let t = d.sample_tensor(100_000, 4);
        let big = t.as_slice().iter().filter(|x| x.abs() > 20.0).count();
        let frac = big as f64 / 100_000.0;
        assert!((0.005..0.02).contains(&frac), "outlier frac {frac}");
    }

    #[test]
    fn student_t_chi2_gamma_moments_match() {
        // The Student-t arm draws chi2_nu as Gamma(nu/2, 2): sample mean
        // must match k·θ = nu and variance k·θ² = 2·nu.
        let nu = 6.0f64;
        let g = Gamma::new(nu / 2.0, 2.0).unwrap();
        let mut rng = Rng::seed_from_u64(99);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - nu).abs() < 0.05 * nu, "mean {mean} vs {nu}");
        assert!((var - 2.0 * nu).abs() < 0.1 * 2.0 * nu, "var {var} vs {}", 2.0 * nu);
    }

    #[test]
    fn student_t_finite_and_heavy() {
        let d = ParamDistribution::StudentT { nu: 4.0, scale: 1.0 };
        let t = d.sample_tensor(50_000, 5);
        assert!(t.as_slice().iter().all(|x| x.is_finite()));
        let s = stats::summarize(&t);
        // Excess kurtosis -> abs max well beyond 5 sigma-equivalents.
        assert!(stats::abs_max(&t) > 5.0 * s.std.min(2.0));
    }
}
