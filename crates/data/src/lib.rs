//! # spark-data — synthetic data substrate for the SPARK reproduction
//!
//! The paper evaluates on pretrained ImageNet/GLUE models. Those weights are
//! not available offline, so this crate provides the substitution documented
//! in `DESIGN.md`:
//!
//! - [`dist`] — long-tailed parameter distributions (Gaussian body + planted
//!   outliers, Laplace, Student-t) matching the shape the quantization
//!   literature reports for DNN tensors;
//! - [`profiles`] — per-model calibration: for each network in the paper's
//!   evaluation (VGG16, ResNet18/50/152, BERT, ViT, GPT-2, BART) a
//!   distribution parameterization whose INT8 magnitude codes land the
//!   short-code fractions of Fig 2;
//! - [`dataset`] — synthetic classification tasks (Gaussian blobs, oriented
//!   bar images, token patterns) for the *real* accuracy experiments run on
//!   the in-crate trained models;
//! - [`dbb`] — Density-Bound Block structured pruning (the Fig 15 joint
//!   optimization).
//!
//! Everything is seeded and deterministic.
//!
//! # Example
//!
//! ```
//! use spark_data::profiles::ModelProfile;
//!
//! let bert = ModelProfile::bert();
//! let tensor = bert.sample_tensor(4096, 7);
//! assert_eq!(tensor.len(), 4096);
//! ```

#![warn(missing_docs)]

pub mod dataset;
pub mod dbb;
pub mod dist;
pub mod profiles;

pub use dataset::{Dataset, Sample};
pub use dbb::{dbb_prune, DbbConfig};
pub use dist::ParamDistribution;
pub use profiles::ModelProfile;
