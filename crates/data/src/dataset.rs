//! Synthetic classification datasets for the end-to-end accuracy
//! experiments.
//!
//! The paper measures ImageNet / SST-2 accuracy on pretrained checkpoints.
//! Offline we instead *train* small models (see `spark-nn`) on tasks that
//! are hard enough for quantization error to show up in accuracy:
//!
//! - [`Dataset::blobs`] — Gaussian clusters in `d` dimensions (MLP-scale);
//! - [`Dataset::bars`] — tiny images whose class is the orientation/position
//!   of a bright bar (CNN-scale, spatial structure matters);
//! - [`Dataset::token_patterns`] — token sequences whose class depends on a
//!   long-range pairing (attention-scale).

use spark_tensor::Tensor;
use spark_util::dist::StandardNormal;
use spark_util::Rng;

/// One labelled example.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Input features (flattened).
    pub input: Vec<f32>,
    /// Class label in `0..classes`.
    pub label: usize,
}

/// A synthetic, deterministic classification dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Labelled examples.
    pub samples: Vec<Sample>,
    /// Input dimensionality.
    pub input_dim: usize,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Gaussian blobs: `classes` cluster centres on a sphere, unit noise.
    ///
    /// The noise/separation ratio is chosen so a linear model reaches high
    /// but not perfect accuracy — quantization damage is then visible.
    pub fn blobs(n: usize, input_dim: usize, classes: usize, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        // Deterministic unit-ish centres.
        let centres: Vec<Vec<f32>> = (0..classes)
            .map(|c| {
                (0..input_dim)
                    .map(|d| {
                        let phase = (c * 31 + d * 17) % 97;
                        (phase as f32 / 97.0 * std::f32::consts::TAU).sin() * 2.0
                    })
                    .collect()
            })
            .collect();
        let samples = (0..n)
            .map(|_| {
                let label = rng.gen_range(0..classes);
                let input = centres[label]
                    .iter()
                    .map(|&c| {
                        let z = StandardNormal.sample_f32(&mut rng);
                        c + z * 1.2
                    })
                    .collect();
                Sample { input, label }
            })
            .collect();
        Self {
            samples,
            input_dim,
            classes,
        }
    }

    /// Bar images: `side x side` grayscale images; the class is which of
    /// `classes` row/column positions holds a bright bar. Exercises spatial
    /// convolution structure.
    pub fn bars(n: usize, side: usize, classes: usize, seed: u64) -> Self {
        assert!(classes <= 2 * side, "class count exceeds bar positions");
        let mut rng = Rng::seed_from_u64(seed);
        let samples = (0..n)
            .map(|_| {
                let label = rng.gen_range(0..classes);
                let mut img = vec![0.0f32; side * side];
                // First `side` classes are rows, the rest columns.
                if label < side {
                    for x in 0..side {
                        img[label * side + x] = 1.0;
                    }
                } else {
                    let col = label - side;
                    for y in 0..side {
                        img[y * side + col] = 1.0;
                    }
                }
                for v in &mut img {
                    let z = StandardNormal.sample_f32(&mut rng);
                    *v += z * 0.25;
                }
                Sample { input: img, label }
            })
            .collect();
        Self {
            samples,
            input_dim: side * side,
            classes,
        }
    }

    /// Bar images with adjustable pixel noise; at `noise` around 0.7 the
    /// task stops being saturated and quantization damage becomes visible
    /// (used by the accuracy experiments).
    pub fn bars_noisy(n: usize, side: usize, classes: usize, noise: f32, seed: u64) -> Self {
        let mut d = Self::bars(n, side, classes, seed);
        let mut rng = Rng::seed_from_u64(seed.wrapping_add(0x5EED));
        for s in &mut d.samples {
            for v in &mut s.input {
                let z = StandardNormal.sample_f32(&mut rng);
                *v += z * noise;
            }
        }
        d
    }

    /// Token-pattern sequences with additive input noise on the one-hot
    /// encoding; see [`Dataset::token_patterns`].
    pub fn token_patterns_noisy(
        n: usize,
        len: usize,
        vocab: usize,
        noise: f32,
        seed: u64,
    ) -> Self {
        let mut d = Self::token_patterns(n, len, vocab, seed);
        let mut rng = Rng::seed_from_u64(seed.wrapping_add(0x5EED));
        for s in &mut d.samples {
            for v in &mut s.input {
                let z = StandardNormal.sample_f32(&mut rng);
                *v += z * noise;
            }
        }
        d
    }

    /// Token-pattern sequences: each example is a length-`len` sequence of
    /// one-hot tokens from a `vocab`-size alphabet; the class is the token
    /// that appears at the position *pointed to* by the first token. Solving
    /// it requires content-based addressing, i.e. attention.
    pub fn token_patterns(n: usize, len: usize, vocab: usize, seed: u64) -> Self {
        assert!(vocab >= len, "vocab must cover position pointers");
        let mut rng = Rng::seed_from_u64(seed);
        let samples = (0..n)
            .map(|_| {
                let pointer = rng.gen_range(1..len);
                let mut tokens: Vec<usize> =
                    (0..len).map(|_| rng.gen_range(0..vocab)).collect();
                tokens[0] = pointer; // position pointer
                let label = tokens[pointer] % vocab;
                // One-hot encode.
                let mut input = vec![0.0f32; len * vocab];
                for (pos, &tok) in tokens.iter().enumerate() {
                    input[pos * vocab + tok] = 1.0;
                }
                Sample { input, label }
            })
            .collect();
        Self {
            samples,
            input_dim: len * vocab,
            classes: vocab,
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the dataset holds no examples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Splits into `(train, test)` at `train_fraction`.
    pub fn split(&self, train_fraction: f32) -> (Dataset, Dataset) {
        let cut = ((self.len() as f32) * train_fraction) as usize;
        let (a, b) = self.samples.split_at(cut.min(self.len()));
        (
            Dataset {
                samples: a.to_vec(),
                input_dim: self.input_dim,
                classes: self.classes,
            },
            Dataset {
                samples: b.to_vec(),
                input_dim: self.input_dim,
                classes: self.classes,
            },
        )
    }

    /// Stacks a batch of inputs into a `(batch, input_dim)` tensor.
    pub fn batch_inputs(&self, indices: &[usize]) -> Tensor {
        let mut data = Vec::with_capacity(indices.len() * self.input_dim);
        for &i in indices {
            data.extend_from_slice(&self.samples[i].input);
        }
        Tensor::from_vec(data, &[indices.len(), self.input_dim]).expect("consistent dims")
    }

    /// Labels for a batch.
    pub fn batch_labels(&self, indices: &[usize]) -> Vec<usize> {
        indices.iter().map(|&i| self.samples[i].label).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_shape_and_determinism() {
        let d = Dataset::blobs(100, 8, 4, 7);
        assert_eq!(d.len(), 100);
        assert_eq!(d.input_dim, 8);
        assert!(d.samples.iter().all(|s| s.label < 4 && s.input.len() == 8));
        let d2 = Dataset::blobs(100, 8, 4, 7);
        assert_eq!(d, d2);
    }

    #[test]
    fn blobs_classes_separable_by_centroid() {
        // Nearest-centroid classification should beat chance easily.
        let d = Dataset::blobs(2000, 16, 4, 8);
        let mut centroids = vec![vec![0.0f32; 16]; 4];
        let mut counts = [0usize; 4];
        for s in &d.samples[..1000] {
            counts[s.label] += 1;
            for (c, &x) in centroids[s.label].iter_mut().zip(&s.input) {
                *c += x;
            }
        }
        for (c, &n) in centroids.iter_mut().zip(&counts) {
            for v in c {
                *v /= n.max(1) as f32;
            }
        }
        let mut correct = 0;
        for s in &d.samples[1000..] {
            let pred = (0..4)
                .min_by(|&a, &b| {
                    let da: f32 = centroids[a]
                        .iter()
                        .zip(&s.input)
                        .map(|(&c, &x)| (c - x) * (c - x))
                        .sum();
                    let db: f32 = centroids[b]
                        .iter()
                        .zip(&s.input)
                        .map(|(&c, &x)| (c - x) * (c - x))
                        .sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if pred == s.label {
                correct += 1;
            }
        }
        let acc = correct as f64 / 1000.0;
        assert!(acc > 0.7, "centroid accuracy {acc}");
    }

    #[test]
    fn bars_have_bright_bar() {
        let d = Dataset::bars(50, 8, 16, 9);
        for s in &d.samples {
            // The labelled bar's mean must exceed the image mean.
            let side = 8;
            let bar: Vec<f32> = if s.label < side {
                (0..side).map(|x| s.input[s.label * side + x]).collect()
            } else {
                (0..side)
                    .map(|y| s.input[y * side + (s.label - side)])
                    .collect()
            };
            let bar_mean: f32 = bar.iter().sum::<f32>() / side as f32;
            let img_mean: f32 = s.input.iter().sum::<f32>() / (side * side) as f32;
            assert!(bar_mean > img_mean + 0.5);
        }
    }

    #[test]
    fn bars_class_bound_checked() {
        let d = Dataset::bars(10, 4, 8, 1);
        assert_eq!(d.classes, 8);
    }

    #[test]
    #[should_panic(expected = "class count exceeds")]
    fn bars_rejects_too_many_classes() {
        let _ = Dataset::bars(10, 4, 9, 1);
    }

    #[test]
    fn token_patterns_label_matches_pointer() {
        let d = Dataset::token_patterns(100, 8, 16, 10);
        for s in &d.samples {
            // Decode the one-hot sequence and re-derive the label.
            let vocab = 16;
            let tokens: Vec<usize> = (0..8)
                .map(|pos| {
                    (0..vocab)
                        .find(|&t| s.input[pos * vocab + t] == 1.0)
                        .expect("one-hot")
                })
                .collect();
            assert_eq!(s.label, tokens[tokens[0]] % vocab);
        }
    }

    #[test]
    fn split_partitions() {
        let d = Dataset::blobs(100, 4, 2, 11);
        let (tr, te) = d.split(0.8);
        assert_eq!(tr.len(), 80);
        assert_eq!(te.len(), 20);
    }

    #[test]
    fn batch_helpers() {
        let d = Dataset::blobs(10, 4, 2, 12);
        let b = d.batch_inputs(&[0, 3, 5]);
        assert_eq!(b.dims(), &[3, 4]);
        assert_eq!(d.batch_labels(&[0, 3, 5]).len(), 3);
    }
}
