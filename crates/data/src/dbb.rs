//! Density-Bound Block (DBB) structured sparsity (S2TA, HPCA '22).
//!
//! DBB bounds the number of nonzeros per fixed-size block: within each block
//! of `block_size` consecutive values, only the `max_nonzero` largest
//! magnitudes survive. The paper's Fig 15 combines 50 % DBB sparsity with
//! SPARK to show the two compressions compose.

use spark_tensor::Tensor;

/// DBB pruning configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbbConfig {
    /// Elements per block.
    pub block_size: usize,
    /// Maximum nonzeros kept per block.
    pub max_nonzero: usize,
}

impl DbbConfig {
    /// The paper's Fig 15 setting: 50 % sparsity with 8-element blocks.
    pub fn half_sparse() -> Self {
        Self {
            block_size: 8,
            max_nonzero: 4,
        }
    }

    /// Target density (`max_nonzero / block_size`).
    pub fn density(&self) -> f64 {
        self.max_nonzero as f64 / self.block_size as f64
    }
}

impl Default for DbbConfig {
    fn default() -> Self {
        Self::half_sparse()
    }
}

/// Applies DBB pruning, returning the pruned tensor and the achieved
/// sparsity (fraction of zeros).
///
/// Within each block the `max_nonzero` largest-magnitude elements are kept
/// and the rest zeroed. The trailing partial block is pruned
/// proportionally.
///
/// # Panics
///
/// Panics when `block_size == 0` or `max_nonzero > block_size` (a
/// configuration bug, not a data condition).
pub fn dbb_prune(tensor: &Tensor, config: &DbbConfig) -> (Tensor, f64) {
    assert!(config.block_size > 0, "block_size must be positive");
    assert!(
        config.max_nonzero <= config.block_size,
        "max_nonzero exceeds block_size"
    );
    let src = tensor.as_slice();
    let mut out = src.to_vec();
    let mut zeros = 0usize;
    for (block_idx, block) in out.chunks_mut(config.block_size).enumerate() {
        // Keep-count proportional for the trailing partial block.
        let keep = if block.len() == config.block_size {
            config.max_nonzero
        } else {
            (block.len() * config.max_nonzero).div_ceil(config.block_size)
        };
        let base = block_idx * config.block_size;
        let mut order: Vec<usize> = (0..block.len()).collect();
        order.sort_by(|&a, &b| {
            src[base + b]
                .abs()
                .partial_cmp(&src[base + a].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for &i in order.iter().skip(keep) {
            if block[i] != 0.0 {
                zeros += 1;
            }
            block[i] = 0.0;
        }
    }
    let total_zeros = out.iter().filter(|&&x| x == 0.0).count();
    let _ = zeros;
    let sparsity = if out.is_empty() {
        0.0
    } else {
        total_zeros as f64 / out.len() as f64
    };
    (
        Tensor::from_vec(out, tensor.dims()).expect("same length"),
        sparsity,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_sparse_keeps_half() {
        let t = Tensor::from_fn(&[64], |i| (i as f32 + 1.0) * if i % 2 == 0 { 1.0 } else { -1.0 });
        let (pruned, sparsity) = dbb_prune(&t, &DbbConfig::half_sparse());
        assert!((sparsity - 0.5).abs() < 1e-9);
        let nz = pruned.as_slice().iter().filter(|&&x| x != 0.0).count();
        assert_eq!(nz, 32);
    }

    #[test]
    fn keeps_largest_magnitudes() {
        let t = Tensor::from_vec(vec![0.1, -5.0, 0.2, 3.0, 0.0, 0.3, -0.4, 2.0], &[8]).unwrap();
        let (pruned, _) = dbb_prune(&t, &DbbConfig::half_sparse());
        let p = pruned.as_slice();
        assert_eq!(p[1], -5.0);
        assert_eq!(p[3], 3.0);
        assert_eq!(p[7], 2.0);
        assert_eq!(p[0], 0.0);
        assert_eq!(p[4], 0.0);
    }

    #[test]
    fn per_block_bound_enforced() {
        // All mass in the first block: DBB still cannot keep more than
        // max_nonzero there (unlike global top-k).
        let mut data = vec![0.0f32; 16];
        for (i, v) in data.iter_mut().enumerate().take(8) {
            *v = 10.0 + i as f32;
        }
        let t = Tensor::from_vec(data, &[16]).unwrap();
        let (pruned, _) = dbb_prune(&t, &DbbConfig::half_sparse());
        let first_block_nz = pruned.as_slice()[..8].iter().filter(|&&x| x != 0.0).count();
        assert_eq!(first_block_nz, 4);
    }

    #[test]
    fn partial_trailing_block() {
        let t = Tensor::from_fn(&[10], |i| i as f32 + 1.0);
        let (pruned, _) = dbb_prune(&t, &DbbConfig::half_sparse());
        // Trailing block has 2 elements; keep ceil(2*4/8) = 1.
        let tail_nz = pruned.as_slice()[8..].iter().filter(|&&x| x != 0.0).count();
        assert_eq!(tail_nz, 1);
    }

    #[test]
    fn already_sparse_counts_existing_zeros() {
        let t = Tensor::zeros(&[16]);
        let (_, sparsity) = dbb_prune(&t, &DbbConfig::half_sparse());
        assert_eq!(sparsity, 1.0);
    }

    #[test]
    fn density_helper() {
        assert_eq!(DbbConfig::half_sparse().density(), 0.5);
        assert_eq!(
            DbbConfig {
                block_size: 4,
                max_nonzero: 1
            }
            .density(),
            0.25
        );
    }

    #[test]
    #[should_panic(expected = "max_nonzero exceeds")]
    fn invalid_config_panics() {
        let t = Tensor::zeros(&[8]);
        let _ = dbb_prune(
            &t,
            &DbbConfig {
                block_size: 4,
                max_nonzero: 5,
            },
        );
    }

    #[test]
    fn empty_tensor_ok() {
        let t = Tensor::zeros(&[0]);
        let (p, s) = dbb_prune(&t, &DbbConfig::half_sparse());
        assert!(p.is_empty());
        assert_eq!(s, 0.0);
    }
}
