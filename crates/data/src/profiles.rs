//! Per-model distribution profiles calibrated to the paper's Fig 2.
//!
//! Fig 2 reports, for each evaluated network, the fraction of INT8-quantized
//! values that fit the `[0, 7]` short-code range: roughly 40–55 % for CNNs
//! and 70–85 % for attention models (whose heavier outlier tails stretch the
//! quantization range, pushing the body into small codes). Each
//! [`ModelProfile`] picks a [`ParamDistribution`] whose magnitude-INT8 codes
//! land in those bands, so every downstream experiment (Figs 2, 4, 11–15)
//! sees per-model data of the right shape.

use spark_tensor::Tensor;

use crate::dist::ParamDistribution;

/// Model family, used by experiments that treat CNNs and attention models
/// differently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// Convolutional networks (VGG, ResNet).
    Cnn,
    /// Attention/Transformer models (BERT, ViT, GPT-2, BART).
    Attention,
}

/// A calibrated synthetic stand-in for one of the paper's evaluated models.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelProfile {
    /// Model name as it appears in the paper.
    pub name: String,
    /// CNN or attention family.
    pub family: ModelFamily,
    /// Weight tensor distribution.
    pub weights: ParamDistribution,
    /// Activation tensor distribution (transformers have heavier activation
    /// outliers than CNNs).
    pub activations: ParamDistribution,
    /// Parameter count in millions (drives the Fig 14 model-size sweep).
    pub param_millions: f64,
    /// FP32 reference accuracy from Table III / common checkpoints (%).
    pub fp32_accuracy: f64,
}

impl ModelProfile {
    fn new(
        name: &str,
        family: ModelFamily,
        weight_ratio: f32,
        act_ratio: f32,
        param_millions: f64,
        fp32_accuracy: f64,
    ) -> Self {
        let dist = |ratio: f32| ParamDistribution::GaussianWithOutliers {
            std: 0.02,
            outlier_prob: 0.003,
            outlier_ratio: ratio,
        };
        Self {
            name: name.to_string(),
            family,
            weights: dist(weight_ratio),
            activations: dist(act_ratio),
            param_millions,
            fp32_accuracy,
        }
    }

    /// VGG-16 on ImageNet (FP32 top-1 71.59 %).
    pub fn vgg16() -> Self {
        Self::new("VGG16", ModelFamily::Cnn, 25.0, 21.0, 138.0, 71.59)
    }

    /// ResNet-18 on ImageNet (FP32 top-1 69.76 %).
    pub fn resnet18() -> Self {
        Self::new("ResNet18", ModelFamily::Cnn, 23.0, 20.0, 11.7, 69.76)
    }

    /// ResNet-50 on ImageNet (FP32 top-1 76.15 %).
    pub fn resnet50() -> Self {
        Self::new("ResNet50", ModelFamily::Cnn, 26.0, 22.0, 25.6, 76.15)
    }

    /// ResNet-152 on ImageNet (used by Table IV).
    pub fn resnet152() -> Self {
        Self::new("ResNet152", ModelFamily::Cnn, 27.0, 22.0, 60.2, 78.31)
    }

    /// BERT-Base on SST-2 (FP32 accuracy 90.45 %).
    pub fn bert() -> Self {
        Self::new("BERT", ModelFamily::Attention, 36.0, 45.0, 110.0, 90.45)
    }

    /// ViT-Base on ImageNet (FP32 top-1 84.19 %).
    pub fn vit() -> Self {
        Self::new("ViT", ModelFamily::Attention, 31.0, 40.0, 86.0, 84.19)
    }

    /// GPT-2 (Fig 2 characterization workload).
    pub fn gpt2() -> Self {
        Self::new("GPT-2", ModelFamily::Attention, 38.0, 48.0, 124.0, 92.0)
    }

    /// BART (Fig 2/4 characterization workload).
    pub fn bart() -> Self {
        Self::new("BART", ModelFamily::Attention, 34.0, 42.0, 139.0, 94.0)
    }

    /// Every profile the paper's figures sweep, in Fig 2 order.
    pub fn all() -> Vec<Self> {
        vec![
            Self::resnet18(),
            Self::resnet50(),
            Self::vgg16(),
            Self::bert(),
            Self::bart(),
            Self::gpt2(),
            Self::vit(),
            Self::resnet152(),
        ]
    }

    /// The six models of the performance figures (Figs 11/12/15).
    pub fn performance_suite() -> Vec<Self> {
        vec![
            Self::vgg16(),
            Self::resnet18(),
            Self::resnet50(),
            Self::vit(),
            Self::bert(),
            Self::gpt2(),
        ]
    }

    /// Samples a weight tensor with this profile's distribution.
    pub fn sample_tensor(&self, n: usize, seed: u64) -> Tensor {
        self.weights.sample_tensor(n, seed)
    }

    /// Samples an activation tensor with this profile's distribution.
    pub fn sample_activations(&self, n: usize, seed: u64) -> Tensor {
        self.activations.sample_tensor(n, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_tensor::stats;

    /// Short-code fraction of a tensor after magnitude-INT8 quantization:
    /// the quantity Fig 2 plots.
    fn short_fraction(t: &Tensor) -> f64 {
        let alpha = stats::abs_max(t);
        let codes: Vec<u8> = t
            .as_slice()
            .iter()
            .map(|x| (x.abs() / alpha * 255.0).round() as u8)
            .collect();
        stats::fraction_in_range(&codes, 0, 7)
    }

    #[test]
    fn cnn_profiles_land_in_fig2_band() {
        for p in [
            ModelProfile::vgg16(),
            ModelProfile::resnet18(),
            ModelProfile::resnet50(),
        ] {
            let t = p.sample_tensor(50_000, 11);
            let f = short_fraction(&t);
            assert!(
                (0.45..0.80).contains(&f),
                "{}: short fraction {f} outside CNN band",
                p.name
            );
        }
    }

    #[test]
    fn attention_profiles_land_in_fig2_band() {
        for p in [
            ModelProfile::bert(),
            ModelProfile::vit(),
            ModelProfile::gpt2(),
            ModelProfile::bart(),
        ] {
            let t = p.sample_tensor(50_000, 12);
            let f = short_fraction(&t);
            assert!(
                (0.60..0.92).contains(&f),
                "{}: short fraction {f} outside attention band",
                p.name
            );
        }
    }

    #[test]
    fn attention_shorter_than_cnn() {
        let cnn = short_fraction(&ModelProfile::resnet50().sample_tensor(50_000, 13));
        let att = short_fraction(&ModelProfile::bert().sample_tensor(50_000, 13));
        assert!(att > cnn);
    }

    #[test]
    fn all_profiles_enumerated() {
        let all = ModelProfile::all();
        assert_eq!(all.len(), 8);
        let names: Vec<_> = all.iter().map(|p| p.name.as_str()).collect();
        assert!(names.contains(&"BERT"));
        assert!(names.contains(&"VGG16"));
    }

    #[test]
    fn performance_suite_is_the_fig11_set() {
        assert_eq!(ModelProfile::performance_suite().len(), 6);
    }

    #[test]
    fn activations_heavier_for_attention() {
        let p = ModelProfile::bert();
        let w = p.sample_tensor(50_000, 14);
        let a = p.sample_activations(50_000, 14);
        let ratio = |t: &Tensor| stats::abs_max(t) as f64 / stats::summarize(t).std as f64;
        assert!(ratio(&a) > ratio(&w));
    }

    #[test]
    fn sampling_deterministic_per_profile() {
        let p = ModelProfile::vit();
        assert_eq!(
            p.sample_tensor(100, 5).as_slice(),
            p.sample_tensor(100, 5).as_slice()
        );
    }
}
