//! `spark` — command-line front end for the SPARK encoding and simulator.
//!
//! ```text
//! spark encode  <input.f32> <output.spark>    quantize + SPARK-encode an f32 LE file
//! spark decode  <input.spark> <output.u8>     decode a container back to code words
//! spark analyze [--json] <input.f32>          code statistics + entropy analysis
//! spark simulate [--json] <model> [accel]     run a workload on the perf model
//! spark profile <model>                       calibrated distribution characterization
//! spark models                                list known model names
//! spark serve [flags]                         batched, sharded HTTP serving front end
//! spark router [flags]                        fault-aware fleet router over N backends
//! spark load  [flags]                         open-loop load harness (JSON report)
//! spark chaos [--seed N] [--streams N]        seeded fault-injection report (JSON)
//! spark store <put|get|ls|compact|verify|snapshot>  persistent encoded-tensor blockstore
//! ```
//!
//! Input `.f32` files are raw little-endian 32-bit floats (e.g. exported
//! with `numpy.ndarray.tofile`). `--json` output is produced by the same
//! serializers the server uses, so `spark analyze --json x.f32` matches
//! `POST /v1/analyze` byte for byte.

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;
use std::time::Duration;

use spark_codec::{analysis, decode_stream, encode_tensor, read_container, write_container};
use spark_data::ModelProfile;
use spark_nn::ModelWorkload;
use spark_quant::{Codec, MagnitudeQuantizer, SparkCodec};
use spark_serve::load::{build_schedule, run_load, schedule_digest, schedule_dump, LoadConfig};
use spark_serve::{api, ServeConfig, Server};
use spark_sim::{Accelerator, AcceleratorKind, SimConfig};
use spark_tensor::Tensor;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("encode") => cmd_encode(&args[1..]),
        Some("decode") => cmd_decode(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("models") => cmd_models(),
        Some("serve") => cmd_serve(&args[1..]),
        Some("router") => cmd_router(&args[1..]),
        Some("load") => cmd_load(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        Some("store") => cmd_store(&args[1..]),
        _ => {
            eprintln!(
                "usage: spark <encode|decode|analyze|simulate|profile|models|serve|router|load|chaos|store> ..."
            );
            eprintln!("  encode  <input.f32> <output.spark>");
            eprintln!("  decode  <input.spark> <output.u8>");
            eprintln!("  analyze [--json] <input.f32>");
            eprintln!("  simulate [--json] <model> [accelerator]");
            eprintln!("  profile <model>");
            eprintln!("  serve [--addr A] [--workers N] [--shards N] [--shard-workers N] [--quota UNITS_PER_S] [--batch N] [--window-us N] [--queue N] [--store DIR] [--smoke]");
            eprintln!("  load  [--smoke] [--schedule-only] [--addr A] [--seed N] [--rps R] [--flood-rps R] [--duration-ms N] [--tenants N] [--skew S] [--injectors N] [--shards N] [--quota U] [--tensor-mix F] [--store DIR] [--out FILE]");
            eprintln!("  router --backends A,B,... [--addr A] [--workers N] [--probe-ms N] [--retries N] [--retry-budget RPS] [--seed N]");
            eprintln!("  router --bench-kill [--seed N] [--out FILE]");
            eprintln!("  chaos [--seed N] [--streams N]");
            eprintln!("  store put <dir> --infer-model | put <dir> <name> <input.f32>");
            eprintln!("        get <dir> <name> <output.spark> | ls <dir> | compact <dir> | verify <dir>");
            eprintln!("        snapshot <src-dir> <dst-dir>");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Removes `--name` from `args`, reporting whether it was present.
fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    match args.iter().position(|a| a == name) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

/// Removes `--name <value>` from `args`, returning the value.
fn take_option(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(format!("{name} requires a value"));
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Ok(Some(value))
}

/// Streams a raw-f32 file into a 1-D tensor; empty and misaligned files
/// are hard errors (see `spark_serve::io`).
fn read_f32_tensor(path: &str) -> Result<Tensor, Box<dyn std::error::Error>> {
    let values = spark_serve::io::read_f32_file(path).map_err(|e| format!("{path}: {e}"))?;
    let n = values.len();
    Ok(Tensor::from_vec(values, &[n])?)
}

fn cmd_encode(args: &[String]) -> CliResult {
    let [input, output] = args else {
        return Err("usage: spark encode <input.f32> <output.spark>".into());
    };
    let tensor = read_f32_tensor(input)?;
    let quantizer = MagnitudeQuantizer::new(8)?;
    let codes = quantizer.quantize(&tensor)?;
    let encoded = encode_tensor(&codes.codes);
    let mut out = BufWriter::new(File::create(output)?);
    let written = write_container(&encoded, &mut out)?;
    out.flush()?;
    println!(
        "{}: {} values -> {} bytes ({:.2} bits/value, {:.1}% short, {:.1}% lossless)",
        output,
        encoded.elements,
        written,
        encoded.stats.avg_bits(),
        encoded.stats.short_fraction() * 100.0,
        encoded.stats.lossless_fraction() * 100.0
    );
    println!("scale: {} (store it to dequantize)", codes.scale);
    Ok(())
}

fn cmd_decode(args: &[String]) -> CliResult {
    let [input, output] = args else {
        return Err("usage: spark decode <input.spark> <output.u8>".into());
    };
    let encoded = read_container(BufReader::new(File::open(input)?))?;
    let decoded = decode_stream(&encoded.stream)?;
    let mut out = BufWriter::new(File::create(output)?);
    out.write_all(&decoded)?;
    out.flush()?;
    println!("{}: {} code words written", output, decoded.len());
    Ok(())
}

fn cmd_analyze(args: &[String]) -> CliResult {
    let mut args = args.to_vec();
    let json = take_flag(&mut args, "--json");
    let [input] = &args[..] else {
        return Err("usage: spark analyze [--json] <input.f32>".into());
    };
    let tensor = read_f32_tensor(input)?;
    if json {
        println!("{}", api::analyze_response(tensor.as_slice())?.to_string_pretty());
        return Ok(());
    }
    let quantizer = MagnitudeQuantizer::new(8)?;
    let codes = quantizer.quantize(&tensor)?;
    let a = analysis::analyze(&codes.codes);
    println!("values:            {}", a.count);
    println!("SPARK bits/value:  {:.3}", a.spark_bits);
    println!("source entropy:    {:.3} bits", a.source_entropy);
    println!("recon entropy:     {:.3} bits", a.reconstructed_entropy);
    println!("alignment cost:    {:.3} bits", a.alignment_overhead_bits());
    println!("mean / RMS error:  {:.3} / {:.3} code units", a.mean_error, a.rms_error);
    let r = SparkCodec::default().compress(&tensor)?;
    println!("end-to-end SQNR:   {:.1} dB", r.sqnr_db(&tensor));
    Ok(())
}

fn cmd_simulate(args: &[String]) -> CliResult {
    let mut args = args.to_vec();
    let json = take_flag(&mut args, "--json");
    let model = args
        .first()
        .ok_or("usage: spark simulate [--json] <model> [accelerator]")?;
    let accelerator = args.get(1).map(String::as_str).unwrap_or("spark");
    let job = api::resolve_sim_job(model, accelerator)?;
    let config = SimConfig::default();
    let report = Accelerator::new(job.kind).run(&job.workload, &job.precision, &config);
    if json {
        println!("{}", api::simulate_response(&report, &job.workload, &config).to_string_pretty());
        return Ok(());
    }
    println!("{} on {}:", job.workload.name, job.kind.name());
    println!("  cycles:     {:.3e}", report.total_cycles);
    println!("  latency:    {:.3} ms @ {} MHz", report.latency_ms(&config), config.frequency_mhz);
    println!(
        "  energy:     {:.3} mJ (dram {:.1}% / buffer {:.1}% / core {:.1}%)",
        report.energy.total() * 1e-9,
        report.energy.dram_pj / report.energy.total() * 100.0,
        report.energy.buffer_pj / report.energy.total() * 100.0,
        report.energy.core_pj / report.energy.total() * 100.0
    );
    println!("  efficiency: {:.0} GMAC/J", report.gmacs_per_joule(&job.workload));
    Ok(())
}

fn cmd_profile(args: &[String]) -> CliResult {
    let model = args.first().ok_or("usage: spark profile <model>")?;
    let profile = ModelProfile::all()
        .into_iter()
        .find(|p| p.name == *model)
        .ok_or_else(|| format!("unknown model {model}; try `spark models`"))?;
    let weights = profile.sample_tensor(40_000, 1);
    let (result, stats) = SparkCodec::default().compress_with_stats(&weights)?;
    println!("{} (calibrated weight distribution):", profile.name);
    println!("  short codes:  {:.1}%", stats.short_fraction() * 100.0);
    println!("  lossless:     {:.1}%", stats.lossless_fraction() * 100.0);
    println!("  avg bits:     {:.2}", stats.avg_bits());
    println!("  SQNR:         {:.1} dB", result.sqnr_db(&weights));
    Ok(())
}

fn cmd_models() -> CliResult {
    println!("models:");
    for p in ModelProfile::all() {
        let w = ModelWorkload::by_name(&p.name).expect("every profile has a workload");
        println!(
            "  {:<10} {:>8.2} GMACs  {:>7.1}M weights",
            p.name,
            w.total_macs() as f64 / 1e9,
            w.total_weights() as f64 / 1e6
        );
    }
    println!("accelerators:");
    for k in AcceleratorKind::ALL {
        println!("  {}", k.name());
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> CliResult {
    let mut args = args.to_vec();
    let smoke = take_flag(&mut args, "--smoke");
    let mut config = ServeConfig::default();
    if let Some(addr) = take_option(&mut args, "--addr")? {
        config.addr = addr;
    }
    if let Some(workers) = take_option(&mut args, "--workers")? {
        config.workers = workers.parse().map_err(|_| format!("bad --workers {workers:?}"))?;
    }
    if let Some(batch) = take_option(&mut args, "--batch")? {
        config.max_batch = batch.parse().map_err(|_| format!("bad --batch {batch:?}"))?;
    }
    if let Some(us) = take_option(&mut args, "--window-us")? {
        let us: u64 = us.parse().map_err(|_| format!("bad --window-us {us:?}"))?;
        config.batch_window = Duration::from_micros(us);
    }
    if let Some(queue) = take_option(&mut args, "--queue")? {
        config.queue_depth = queue.parse().map_err(|_| format!("bad --queue {queue:?}"))?;
    }
    if let Some(shards) = take_option(&mut args, "--shards")? {
        config.shards = shards.parse().map_err(|_| format!("bad --shards {shards:?}"))?;
    }
    if let Some(w) = take_option(&mut args, "--shard-workers")? {
        config.shard_workers = w.parse().map_err(|_| format!("bad --shard-workers {w:?}"))?;
    }
    if let Some(q) = take_option(&mut args, "--shard-queue")? {
        config.shard_queue = q.parse().map_err(|_| format!("bad --shard-queue {q:?}"))?;
    }
    if let Some(q) = take_option(&mut args, "--quota")? {
        config.quota_rps = q.parse().map_err(|_| format!("bad --quota {q:?}"))?;
    }
    if let Some(b) = take_option(&mut args, "--quota-burst")? {
        config.quota_burst = b.parse().map_err(|_| format!("bad --quota-burst {b:?}"))?;
    }
    if let Some(dir) = take_option(&mut args, "--store")? {
        config.store_dir = Some(dir.into());
    }
    if let Some(extra) = args.first() {
        return Err(format!("unexpected argument {extra:?}").into());
    }
    if smoke {
        spark_serve::smoke().map_err(|e| format!("serve smoke failed: {e}"))?;
        println!("serve smoke: all endpoints responded correctly");
        return Ok(());
    }
    let shards = config.shards.max(1);
    let store_attached = config.store_dir.is_some();
    let server = Server::start(config)?;
    println!("spark-serve listening on http://{} ({shards} shard(s))", server.addr());
    println!("endpoints: POST /v1/encode /v1/decode /v1/analyze /v1/simulate");
    println!("           GET /healthz /metrics, POST /shutdown  (X-Spark-Tenant routes)");
    if store_attached {
        println!("           PUT/GET/DELETE /v1/tensors/<name>  (persistent blockstore)");
    }
    server.join();
    println!("shutdown complete");
    Ok(())
}

/// `spark router`: the fault-aware fleet front. In serve mode it fronts
/// a comma-separated backend list with circuit breakers, a global retry
/// budget, and active health probing. `--bench-kill` instead runs the
/// full process-kill drill (3 snapshot-provisioned backends, SIGKILL one
/// under load, require re-admission) and writes the `BENCH_router.json`
/// report CI gates on.
fn cmd_router(args: &[String]) -> CliResult {
    let mut args = args.to_vec();
    let bench_kill = take_flag(&mut args, "--bench-kill");
    if bench_kill {
        let seed: u64 = match take_option(&mut args, "--seed")? {
            Some(s) => s.parse().map_err(|_| format!("bad --seed {s:?}"))?,
            None => 7,
        };
        let out = take_option(&mut args, "--out")?;
        if let Some(extra) = args.first() {
            return Err(format!("unexpected argument {extra:?}").into());
        }
        let report = spark_fault::router_kill_bench(seed)?;
        let availability =
            report.get("availability").and_then(|v| v.as_f64()).unwrap_or(0.0);
        let wrong = report.get("wrong_bodies").and_then(|v| v.as_f64()).unwrap_or(-1.0);
        println!(
            "router kill drill: availability {availability:.4}, wrong bodies {wrong:.0}"
        );
        match out.as_deref() {
            Some(path) => {
                std::fs::write(path, report.to_string_pretty() + "\n")?;
                println!("wrote {path}");
            }
            None => println!("{}", report.to_string_pretty()),
        }
        return Ok(());
    }
    let mut config = spark_serve::RouterConfig::default();
    let backends = take_option(&mut args, "--backends")?
        .ok_or("router needs --backends A,B,... (or --bench-kill)")?;
    config.backends = backends
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if let Some(addr) = take_option(&mut args, "--addr")? {
        config.addr = addr;
    }
    if let Some(w) = take_option(&mut args, "--workers")? {
        config.workers = w.parse().map_err(|_| format!("bad --workers {w:?}"))?;
    }
    if let Some(ms) = take_option(&mut args, "--probe-ms")? {
        let ms: u64 = ms.parse().map_err(|_| format!("bad --probe-ms {ms:?}"))?;
        config.probe_interval = Duration::from_millis(ms);
    }
    if let Some(n) = take_option(&mut args, "--retries")? {
        let n: usize = n.parse().map_err(|_| format!("bad --retries {n:?}"))?;
        config.max_attempts = n + 1;
    }
    if let Some(r) = take_option(&mut args, "--retry-budget")? {
        config.retry_budget_rps = r.parse().map_err(|_| format!("bad --retry-budget {r:?}"))?;
    }
    if let Some(s) = take_option(&mut args, "--seed")? {
        config.seed = s.parse().map_err(|_| format!("bad --seed {s:?}"))?;
    }
    if let Some(extra) = args.first() {
        return Err(format!("unexpected argument {extra:?}").into());
    }
    let n = config.backends.len();
    let router = spark_serve::Router::start(config)?;
    println!("spark-router listening on http://{} ({n} backend(s))", router.addr());
    println!("forwarding all /v1/* traffic; GET /healthz /metrics, POST /shutdown are local");
    router.join();
    println!("shutdown complete");
    Ok(())
}

/// `spark load`: the deterministic open-loop load harness. By default it
/// boots an ephemeral sharded server on loopback, fires the seeded
/// schedule (blended mix plus a simulate-flooding noisy neighbor), and
/// prints/writes the JSON report CI gates on. `--addr` targets a running
/// server instead; `--schedule-only` emits the schedule dump without
/// firing anything (CI diffs two dumps for byte-identical determinism).
fn cmd_load(args: &[String]) -> CliResult {
    let mut args = args.to_vec();
    let smoke = take_flag(&mut args, "--smoke");
    let schedule_only = take_flag(&mut args, "--schedule-only");

    // The smoke profile is the CI gate shape: sharded, quota on, a flood
    // the cost-weighted buckets must shed while cold tenants stay fast.
    let mut cfg = if smoke {
        LoadConfig {
            offered_rps: 300.0,
            flood_rps: 150.0,
            duration: Duration::from_millis(1500),
            tenants: 64,
            tenant_skew: 0.5,
            payloads: 8,
            injectors: 8,
            ..LoadConfig::default()
        }
    } else {
        LoadConfig::default()
    };
    if let Some(seed) = take_option(&mut args, "--seed")? {
        cfg.seed = seed.parse().map_err(|_| format!("bad --seed {seed:?}"))?;
    }
    if let Some(rps) = take_option(&mut args, "--rps")? {
        cfg.offered_rps = rps.parse().map_err(|_| format!("bad --rps {rps:?}"))?;
    }
    if let Some(rps) = take_option(&mut args, "--flood-rps")? {
        cfg.flood_rps = rps.parse().map_err(|_| format!("bad --flood-rps {rps:?}"))?;
    }
    if let Some(ms) = take_option(&mut args, "--duration-ms")? {
        let ms: u64 = ms.parse().map_err(|_| format!("bad --duration-ms {ms:?}"))?;
        cfg.duration = Duration::from_millis(ms);
    }
    if let Some(n) = take_option(&mut args, "--tenants")? {
        cfg.tenants = n.parse().map_err(|_| format!("bad --tenants {n:?}"))?;
    }
    if let Some(sk) = take_option(&mut args, "--skew")? {
        cfg.tenant_skew = sk.parse().map_err(|_| format!("bad --skew {sk:?}"))?;
    }
    if let Some(n) = take_option(&mut args, "--injectors")? {
        cfg.injectors = n.parse().map_err(|_| format!("bad --injectors {n:?}"))?;
    }
    if let Some(f) = take_option(&mut args, "--tensor-mix")? {
        cfg.tensor_mix = f.parse().map_err(|_| format!("bad --tensor-mix {f:?}"))?;
    }
    let store_dir = take_option(&mut args, "--store")?;
    let shards: usize = match take_option(&mut args, "--shards")? {
        Some(n) => n.parse().map_err(|_| format!("bad --shards {n:?}"))?,
        None => 4,
    };
    let quota: f64 = match take_option(&mut args, "--quota")? {
        Some(q) => q.parse().map_err(|_| format!("bad --quota {q:?}"))?,
        None => 240.0,
    };
    let out = take_option(&mut args, "--out")?;
    let addr = take_option(&mut args, "--addr")?;
    if let Some(extra) = args.first() {
        return Err(format!("unexpected argument {extra:?}").into());
    }

    if schedule_only {
        let events = build_schedule(&cfg)?;
        let dump = schedule_dump(&events);
        let digest = schedule_digest(&dump);
        match &out {
            Some(path) => {
                std::fs::write(path, &dump)?;
                println!("schedule: {} events, digest {digest}, wrote {path}", events.len());
            }
            None => print!("{dump}"),
        }
        return Ok(());
    }

    let report = match &addr {
        Some(addr) => run_load(addr, &cfg)?,
        None => {
            // With tensor traffic in the mix, the ephemeral server needs a
            // blockstore behind /v1/tensors; default to a scratch dir.
            let ephemeral_store = match (&store_dir, cfg.tensor_mix > 0.0) {
                (Some(dir), _) => Some(std::path::PathBuf::from(dir)),
                (None, true) => Some(std::env::temp_dir().join(format!(
                    "spark-load-store-{}-{}",
                    std::process::id(),
                    cfg.seed
                ))),
                (None, false) => None,
            };
            let server = Server::start(ServeConfig {
                addr: "127.0.0.1:0".into(),
                workers: 2,
                shards,
                shard_workers: 2,
                queue_depth: 64,
                shard_queue: 16,
                quota_rps: quota,
                quota_burst: quota / 2.0,
                batch_window: Duration::from_millis(1),
                max_batch: 16,
                store_dir: ephemeral_store.clone(),
                ..ServeConfig::default()
            })?;
            let report = run_load(&server.addr().to_string(), &cfg)?;
            server.shutdown();
            server.join();
            // Only scrub the store we conjured; an explicit --store dir is
            // the caller's to keep.
            if store_dir.is_none() {
                if let Some(dir) = &ephemeral_store {
                    std::fs::remove_dir_all(dir).ok();
                }
            }
            report
        }
    };

    println!(
        "load: offered {} ({:.0} rps intended), achieved {:.0} rps, ok {:.0} rps",
        report.offered, cfg.offered_rps + cfg.flood_rps, report.achieved_rps, report.ok_rps
    );
    println!(
        "load: ok p50/p99/p999 {}/{}/{} us, cold p99 {} us, 429 {}, 503 {}, transport {}",
        report.ok_p50_us,
        report.ok_p99_us,
        report.ok_p999_us,
        report.cold_p99_us,
        report.shed_429,
        report.shed_503,
        report.transport_errors
    );
    println!("load: schedule digest {}", report.digest);
    let doc = report.to_json();
    match out.as_deref().or(smoke.then_some("BENCH_load.json")) {
        Some(path) => {
            std::fs::write(path, doc.to_string_pretty() + "\n")?;
            println!("wrote {path}");
        }
        None => println!("{}", doc.to_string_pretty()),
    }
    Ok(())
}

/// `spark chaos`: runs the seeded fault-injection suite (codec corruption
/// sweep, PE fault-rate sweep, live serve-layer chaos scenario) and
/// prints the deterministic JSON report. Same `(--seed, --streams)` →
/// byte-identical output; CI diffs two runs.
fn cmd_chaos(args: &[String]) -> CliResult {
    let mut args = args.to_vec();
    let seed: u64 = match take_option(&mut args, "--seed")? {
        Some(s) => s.parse().map_err(|_| format!("bad --seed {s:?}"))?,
        None => 7,
    };
    let streams: usize = match take_option(&mut args, "--streams")? {
        Some(s) => s.parse().map_err(|_| format!("bad --streams {s:?}"))?,
        None => 10_000,
    };
    if let Some(extra) = args.first() {
        return Err(format!("unexpected argument {extra:?}").into());
    }
    let report = spark_fault::run_chaos(seed, streams)?;
    println!("{}", report.to_string_pretty());
    Ok(())
}

/// `spark store`: direct command-line surface over the persistent
/// blockstore — ingest tensors or the serving model, read stored
/// container images back out, list, compact, and verify. `verify` prints
/// a deterministic report (recovery counters + per-entry checksum pass),
/// so CI can run it twice and diff the output byte-for-byte.
fn cmd_store(args: &[String]) -> CliResult {
    let usage = "usage: spark store <put|get|ls|compact|verify|snapshot> <dir> ...";
    let sub = args.first().ok_or(usage)?.clone();
    let mut rest = args[1..].to_vec();
    match sub.as_str() {
        "put" => {
            let infer_model = take_flag(&mut rest, "--infer-model");
            let dir = rest
                .first()
                .ok_or("usage: spark store put <dir> (--infer-model | <name> <input.f32>)")?;
            let store = spark_store::BlockStore::open(std::path::Path::new(dir))?;
            if infer_model {
                let model = api::InferModel::new()?;
                let mats = model.export_matrices();
                for (key, m) in api::STORE_MODEL_KEYS.iter().zip(&mats) {
                    store.put_matrix(key, m)?;
                    println!(
                        "{key}: {}x{} matrix, {} resident bytes",
                        m.k(),
                        m.n(),
                        m.resident_bytes()
                    );
                }
                let r = model.report();
                println!(
                    "ingested serving model: {} resident / {} dense bytes ({:.3} ratio)",
                    r.resident_bytes,
                    r.dense_bytes,
                    r.ratio()
                );
                return Ok(());
            }
            let [_, name, input] = &rest[..] else {
                return Err("usage: spark store put <dir> (--infer-model | <name> <input.f32>)"
                    .into());
            };
            let tensor = read_f32_tensor(input)?;
            let quantizer = MagnitudeQuantizer::new(8)?;
            let codes = quantizer.quantize(&tensor)?;
            let encoded = encode_tensor(&codes.codes);
            store.put_tensor(name, &encoded)?;
            println!(
                "{name}: {} values stored ({:.2} bits/value), scale {}",
                encoded.elements,
                encoded.stats.avg_bits(),
                codes.scale
            );
            Ok(())
        }
        "get" => {
            let [dir, name, output] = &rest[..] else {
                return Err("usage: spark store get <dir> <name> <output.spark>".into());
            };
            let store = spark_store::BlockStore::open(std::path::Path::new(dir))?;
            let (kind, bytes) = store.get_raw(name)?;
            std::fs::write(output, &bytes)?;
            println!("{name}: {} bytes ({}) -> {output}", bytes.len(), kind.name());
            Ok(())
        }
        "ls" => {
            let [dir] = &rest[..] else {
                return Err("usage: spark store ls <dir>".into());
            };
            let store = spark_store::BlockStore::open(std::path::Path::new(dir))?;
            for e in store.list() {
                println!("{:<7} {:>10}  {}", e.kind.name(), e.len, e.name);
            }
            let s = store.stats();
            println!(
                "{} entries, generation {}, wal {} bytes, next seq {}",
                s.entries, s.generation, s.wal_bytes, s.next_seq
            );
            Ok(())
        }
        "compact" => {
            let [dir] = &rest[..] else {
                return Err("usage: spark store compact <dir>".into());
            };
            let store = spark_store::BlockStore::open(std::path::Path::new(dir))?;
            let stats = store.compact()?;
            println!("{}", stats.to_json().to_string_pretty());
            Ok(())
        }
        "verify" => {
            let [dir] = &rest[..] else {
                return Err("usage: spark store verify <dir>".into());
            };
            let store = spark_store::BlockStore::open(std::path::Path::new(dir))?;
            let verified = store.verify()?;
            let mut doc = match store.recovery_report().to_json() {
                spark_util::json::Value::Object(members) => members,
                _ => unreachable!("recovery report serializes as an object"),
            };
            doc.push(("entries_verified".into(), spark_util::json::Value::Num(verified as f64)));
            println!("{}", spark_util::json::Value::Object(doc).to_string_pretty());
            Ok(())
        }
        "snapshot" => {
            let [src, dst] = &rest[..] else {
                return Err("usage: spark store snapshot <src-dir> <dst-dir>".into());
            };
            let report = spark_store::snapshot(
                std::path::Path::new(src),
                std::path::Path::new(dst),
            )?;
            println!("{}", report.to_json().to_string_pretty());
            Ok(())
        }
        _ => Err(usage.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_reader_round_trips() {
        let path = std::env::temp_dir().join("spark_cli_test.f32");
        let values = [1.5f32, -2.25, 0.0, 1e-3];
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        std::fs::write(&path, &bytes).unwrap();
        let t = read_f32_tensor(path.to_str().unwrap()).unwrap();
        assert_eq!(t.as_slice(), &values);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn f32_reader_rejects_misaligned_files() {
        let path = std::env::temp_dir().join("spark_cli_bad.f32");
        std::fs::write(&path, [1u8, 2, 3]).unwrap();
        assert!(read_f32_tensor(path.to_str().unwrap()).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn f32_reader_rejects_empty_files() {
        let path = std::env::temp_dir().join("spark_cli_empty.f32");
        std::fs::write(&path, []).unwrap();
        let err = read_f32_tensor(path.to_str().unwrap()).unwrap_err().to_string();
        assert!(err.contains("empty"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flag_parsing_extracts_switches_and_options() {
        let mut args: Vec<String> =
            ["--json", "model", "--workers", "8"].iter().map(|s| s.to_string()).collect();
        assert!(take_flag(&mut args, "--json"));
        assert!(!take_flag(&mut args, "--json"));
        assert_eq!(take_option(&mut args, "--workers").unwrap(), Some("8".into()));
        assert_eq!(take_option(&mut args, "--queue").unwrap(), None);
        assert_eq!(args, vec!["model".to_string()]);
        let mut dangling: Vec<String> = vec!["--workers".into()];
        assert!(take_option(&mut dangling, "--workers").is_err());
    }

    #[test]
    fn accelerator_names_parse_case_insensitively() {
        assert_eq!(api::resolve_accelerator("spark").unwrap(), AcceleratorKind::Spark);
        assert_eq!(api::resolve_accelerator("EYERISS").unwrap(), AcceleratorKind::Eyeriss);
        assert!(api::resolve_accelerator("nonsense").is_err());
    }

    #[test]
    fn encode_decode_files_end_to_end() {
        let dir = std::env::temp_dir();
        let f32_path = dir.join("spark_cli_e2e.f32");
        let spark_path = dir.join("spark_cli_e2e.spark");
        let u8_path = dir.join("spark_cli_e2e.u8");
        let values: Vec<f32> = (0..512).map(|i| ((i * 37) % 100) as f32 / 100.0 - 0.5).collect();
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        std::fs::write(&f32_path, &bytes).unwrap();
        cmd_encode(&[
            f32_path.to_str().unwrap().to_string(),
            spark_path.to_str().unwrap().to_string(),
        ])
        .unwrap();
        cmd_decode(&[
            spark_path.to_str().unwrap().to_string(),
            u8_path.to_str().unwrap().to_string(),
        ])
        .unwrap();
        let codes = std::fs::read(&u8_path).unwrap();
        assert_eq!(codes.len(), 512);
        for p in [f32_path, spark_path, u8_path] {
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn analyze_json_flag_produces_the_server_schema() {
        let path = std::env::temp_dir().join("spark_cli_json.f32");
        let values: Vec<f32> = (0..256).map(|i| (i as f32 - 128.0) / 64.0).collect();
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        std::fs::write(&path, &bytes).unwrap();
        // The command prints; assert the shared serializer itself here.
        let tensor = read_f32_tensor(path.to_str().unwrap()).unwrap();
        let v = api::analyze_response(tensor.as_slice()).unwrap();
        assert_eq!(v.get("count").unwrap().as_f64(), Some(256.0));
        assert!(v.get("sqnr_db").unwrap().as_f64().is_some());
        cmd_analyze(&["--json".to_string(), path.to_str().unwrap().to_string()]).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn store_put_get_ls_verify_round_trip() {
        let base = std::env::temp_dir().join(format!("spark-cli-store-{}", std::process::id()));
        let dir = base.to_str().unwrap().to_string();
        let f32_path = base.with_extension("f32");
        let out_path = base.with_extension("spark");
        let values: Vec<f32> = (0..300).map(|i| ((i * 13) % 97) as f32 / 97.0 - 0.5).collect();
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        std::fs::write(&f32_path, &bytes).unwrap();

        cmd_store(&[
            "put".into(),
            dir.clone(),
            "weights/w".into(),
            f32_path.to_str().unwrap().into(),
        ])
        .unwrap();
        cmd_store(&["put".into(), dir.clone(), "--infer-model".into()]).unwrap();
        cmd_store(&[
            "get".into(),
            dir.clone(),
            "weights/w".into(),
            out_path.to_str().unwrap().into(),
        ])
        .unwrap();
        // The stored payload is a valid container holding all 300 values.
        let image = std::fs::read(&out_path).unwrap();
        assert_eq!(read_container(image.as_slice()).unwrap().elements, 300);
        cmd_store(&["ls".into(), dir.clone()]).unwrap();
        cmd_store(&["compact".into(), dir.clone()]).unwrap();
        cmd_store(&["verify".into(), dir.clone()]).unwrap();
        // A missing name is a typed error, not a panic.
        assert!(cmd_store(&[
            "get".into(),
            dir.clone(),
            "absent".into(),
            out_path.to_str().unwrap().into(),
        ])
        .is_err());
        std::fs::remove_dir_all(&base).ok();
        std::fs::remove_file(&f32_path).ok();
        std::fs::remove_file(&out_path).ok();
    }

    #[test]
    fn simulate_accepts_case_insensitive_models_in_both_modes() {
        cmd_simulate(&["resnet18".to_string()]).unwrap();
        cmd_simulate(&["--json".to_string(), "ResNet18".to_string(), "eyeriss".to_string()])
            .unwrap();
        assert!(cmd_simulate(&["nonsense".to_string()]).is_err());
    }
}
