//! `spark` — command-line front end for the SPARK encoding and simulator.
//!
//! ```text
//! spark encode  <input.f32> <output.spark>    quantize + SPARK-encode an f32 LE file
//! spark decode  <input.spark> <output.u8>     decode a container back to code words
//! spark analyze <input.f32>                   code statistics + entropy analysis
//! spark simulate <model> [accelerator]        run a workload on the perf model
//! spark profile <model>                       calibrated distribution characterization
//! spark models                                list known model names
//! ```
//!
//! Input `.f32` files are raw little-endian 32-bit floats (e.g. exported
//! with `numpy.ndarray.tofile`).

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::process::ExitCode;

use spark_codec::{analysis, encode_tensor, read_container, write_container, decode_stream};
use spark_data::ModelProfile;
use spark_nn::ModelWorkload;
use spark_quant::{Codec, MagnitudeQuantizer, SparkCodec};
use spark_sim::{Accelerator, AcceleratorKind, PrecisionProfile, SimConfig};
use spark_tensor::Tensor;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("encode") => cmd_encode(&args[1..]),
        Some("decode") => cmd_decode(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("models") => cmd_models(),
        _ => {
            eprintln!("usage: spark <encode|decode|analyze|simulate|profile|models> ...");
            eprintln!("  encode  <input.f32> <output.spark>");
            eprintln!("  decode  <input.spark> <output.u8>");
            eprintln!("  analyze <input.f32>");
            eprintln!("  simulate <model> [accelerator]");
            eprintln!("  profile <model>");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn read_f32_file(path: &str) -> Result<Tensor, Box<dyn std::error::Error>> {
    let mut bytes = Vec::new();
    BufReader::new(File::open(path)?).read_to_end(&mut bytes)?;
    if bytes.len() % 4 != 0 {
        return Err(format!("{path}: length {} is not a multiple of 4", bytes.len()).into());
    }
    let data: Vec<f32> = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    let n = data.len();
    Ok(Tensor::from_vec(data, &[n])?)
}

fn cmd_encode(args: &[String]) -> CliResult {
    let [input, output] = args else {
        return Err("usage: spark encode <input.f32> <output.spark>".into());
    };
    let tensor = read_f32_file(input)?;
    let quantizer = MagnitudeQuantizer::new(8)?;
    let codes = quantizer.quantize(&tensor)?;
    let encoded = encode_tensor(&codes.codes);
    let mut out = BufWriter::new(File::create(output)?);
    let written = write_container(&encoded, &mut out)?;
    out.flush()?;
    println!(
        "{}: {} values -> {} bytes ({:.2} bits/value, {:.1}% short, {:.1}% lossless)",
        output,
        encoded.elements,
        written,
        encoded.stats.avg_bits(),
        encoded.stats.short_fraction() * 100.0,
        encoded.stats.lossless_fraction() * 100.0
    );
    println!("scale: {} (store it to dequantize)", codes.scale);
    Ok(())
}

fn cmd_decode(args: &[String]) -> CliResult {
    let [input, output] = args else {
        return Err("usage: spark decode <input.spark> <output.u8>".into());
    };
    let encoded = read_container(BufReader::new(File::open(input)?))?;
    let decoded = decode_stream(&encoded.stream)?;
    let mut out = BufWriter::new(File::create(output)?);
    out.write_all(&decoded)?;
    out.flush()?;
    println!("{}: {} code words written", output, decoded.len());
    Ok(())
}

fn cmd_analyze(args: &[String]) -> CliResult {
    let [input] = args else {
        return Err("usage: spark analyze <input.f32>".into());
    };
    let tensor = read_f32_file(input)?;
    let quantizer = MagnitudeQuantizer::new(8)?;
    let codes = quantizer.quantize(&tensor)?;
    let a = analysis::analyze(&codes.codes);
    println!("values:            {}", a.count);
    println!("SPARK bits/value:  {:.3}", a.spark_bits);
    println!("source entropy:    {:.3} bits", a.source_entropy);
    println!("recon entropy:     {:.3} bits", a.reconstructed_entropy);
    println!("alignment cost:    {:.3} bits", a.alignment_overhead_bits());
    println!("mean / RMS error:  {:.3} / {:.3} code units", a.mean_error, a.rms_error);
    let r = SparkCodec::default().compress(&tensor)?;
    println!("end-to-end SQNR:   {:.1} dB", r.sqnr_db(&tensor));
    Ok(())
}

fn parse_accelerator(name: &str) -> Option<AcceleratorKind> {
    AcceleratorKind::ALL
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
}

fn cmd_simulate(args: &[String]) -> CliResult {
    let model = args
        .first()
        .ok_or("usage: spark simulate <model> [accelerator]")?;
    let workload = ModelWorkload::by_name(model)
        .ok_or_else(|| format!("unknown model {model}; try `spark models`"))?;
    let kind = match args.get(1) {
        Some(name) => {
            parse_accelerator(name).ok_or_else(|| format!("unknown accelerator {name}"))?
        }
        None => AcceleratorKind::Spark,
    };
    let profile = ModelProfile::all()
        .into_iter()
        .find(|p| p.name == *model)
        .ok_or_else(|| format!("no calibrated profile for {model}"))?;
    let weights = profile.sample_tensor(40_000, 1);
    let acts = profile.sample_activations(40_000, 2);
    let precision = PrecisionProfile::from_tensors(&weights, &acts)?;
    let config = SimConfig::default();
    let acc = Accelerator::new(kind);
    let report = acc.run(&workload, &precision, &config);
    println!("{} on {}:", workload.name, kind.name());
    println!("  cycles:     {:.3e}", report.total_cycles);
    println!("  latency:    {:.3} ms @ {} MHz", report.latency_ms(&config), config.frequency_mhz);
    println!(
        "  energy:     {:.3} mJ (dram {:.1}% / buffer {:.1}% / core {:.1}%)",
        report.energy.total() * 1e-9,
        report.energy.dram_pj / report.energy.total() * 100.0,
        report.energy.buffer_pj / report.energy.total() * 100.0,
        report.energy.core_pj / report.energy.total() * 100.0
    );
    println!("  efficiency: {:.0} GMAC/J", report.gmacs_per_joule(&workload));
    Ok(())
}

fn cmd_profile(args: &[String]) -> CliResult {
    let model = args.first().ok_or("usage: spark profile <model>")?;
    let profile = ModelProfile::all()
        .into_iter()
        .find(|p| p.name == *model)
        .ok_or_else(|| format!("unknown model {model}; try `spark models`"))?;
    let weights = profile.sample_tensor(40_000, 1);
    let (result, stats) = SparkCodec::default().compress_with_stats(&weights)?;
    println!("{} (calibrated weight distribution):", profile.name);
    println!("  short codes:  {:.1}%", stats.short_fraction() * 100.0);
    println!("  lossless:     {:.1}%", stats.lossless_fraction() * 100.0);
    println!("  avg bits:     {:.2}", stats.avg_bits());
    println!("  SQNR:         {:.1} dB", result.sqnr_db(&weights));
    Ok(())
}

fn cmd_models() -> CliResult {
    println!("models:");
    for p in ModelProfile::all() {
        let w = ModelWorkload::by_name(&p.name).expect("every profile has a workload");
        println!(
            "  {:<10} {:>8.2} GMACs  {:>7.1}M weights",
            p.name,
            w.total_macs() as f64 / 1e9,
            w.total_weights() as f64 / 1e6
        );
    }
    println!("accelerators:");
    for k in AcceleratorKind::ALL {
        println!("  {}", k.name());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_reader_round_trips() {
        let path = std::env::temp_dir().join("spark_cli_test.f32");
        let values = [1.5f32, -2.25, 0.0, 1e-3];
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        std::fs::write(&path, &bytes).unwrap();
        let t = read_f32_file(path.to_str().unwrap()).unwrap();
        assert_eq!(t.as_slice(), &values);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn f32_reader_rejects_misaligned_files() {
        let path = std::env::temp_dir().join("spark_cli_bad.f32");
        std::fs::write(&path, [1u8, 2, 3]).unwrap();
        assert!(read_f32_file(path.to_str().unwrap()).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn accelerator_names_parse_case_insensitively() {
        assert_eq!(parse_accelerator("spark"), Some(AcceleratorKind::Spark));
        assert_eq!(parse_accelerator("EYERISS"), Some(AcceleratorKind::Eyeriss));
        assert_eq!(parse_accelerator("olive"), Some(AcceleratorKind::Olive));
        assert_eq!(parse_accelerator("nonsense"), None);
    }

    #[test]
    fn encode_decode_files_end_to_end() {
        let dir = std::env::temp_dir();
        let f32_path = dir.join("spark_cli_e2e.f32");
        let spark_path = dir.join("spark_cli_e2e.spark");
        let u8_path = dir.join("spark_cli_e2e.u8");
        let values: Vec<f32> = (0..512).map(|i| ((i * 37) % 100) as f32 / 100.0 - 0.5).collect();
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        std::fs::write(&f32_path, &bytes).unwrap();
        cmd_encode(&[
            f32_path.to_str().unwrap().to_string(),
            spark_path.to_str().unwrap().to_string(),
        ])
        .unwrap();
        cmd_decode(&[
            spark_path.to_str().unwrap().to_string(),
            u8_path.to_str().unwrap().to_string(),
        ])
        .unwrap();
        let codes = std::fs::read(&u8_path).unwrap();
        assert_eq!(codes.len(), 512);
        for p in [f32_path, spark_path, u8_path] {
            std::fs::remove_file(&p).ok();
        }
    }
}
