//! Cross-validation of the functional accelerator against the software NN
//! stack: the dense layers of a trained model, executed on the functional
//! mixed-precision PE array through the full quantize→encode→decode→MAC
//! pipeline, must predict (almost) like the software model whose weights
//! went through the same codec.

use spark::data::Dataset;
use spark::nn::{proxy, train};
use spark::quant::{Codec, SparkCodec};
use spark::sim::functional::{run_layer, FunctionalArray};
use spark::tensor::{ops, Tensor};

/// Runs a 2-layer MLP forward pass entirely on the functional array.
fn mlp_forward_on_accelerator(
    array: &FunctionalArray,
    x: &Tensor,
    w1: &Tensor,
    b1: &[f32],
    w2: &Tensor,
    b2: &[f32],
) -> Tensor {
    let h = run_layer(array, x, w1).expect("layer 1 shapes valid").output;
    let h = ops::add_bias(&h, b1).expect("bias dims");
    let h = ops::relu(&h);
    let y = run_layer(array, &h, w2).expect("layer 2 shapes valid").output;
    ops::add_bias(&y, b2).expect("bias dims")
}

#[test]
fn functional_array_predictions_match_software_codec_model() {
    // Train a small MLP on blobs.
    let data = Dataset::blobs(600, 12, 3, 41);
    let (tr, te) = data.split(0.8);
    let mut model = proxy::tiny_mlp(12, 16, 3, 17);
    train::train(&mut model, &tr, &train::TrainConfig::quick());
    let fp32_acc = train::evaluate(&mut model, &te);
    assert!(fp32_acc > 0.7, "undertrained: {fp32_acc}");

    // Pull out the trained weights (tiny_mlp: Dense -> Relu -> Dense).
    let weights: Vec<Tensor> = model.weights_mut().into_iter().map(|w| w.clone()).collect();
    assert_eq!(weights.len(), 2);
    let (w1, w2) = (&weights[0], &weights[1]);
    // Biases are not exposed; evaluate both paths with zero bias to keep
    // the comparison apples-to-apples.
    let b1 = vec![0.0f32; w1.dims()[1]];
    let b2 = vec![0.0f32; w2.dims()[1]];

    // Software reference with codec-compressed weights (no bias).
    let codec = SparkCodec::default().without_bias_correction();
    let w1c = codec.compress(w1).unwrap().reconstructed;
    let w2c = codec.compress(w2).unwrap().reconstructed;

    let array = FunctionalArray::new(16, 16);
    let mut agree = 0usize;
    let mut total = 0usize;
    for s in te.samples.iter().take(60) {
        let x = Tensor::from_vec(s.input.clone(), &[1, 12]).unwrap();
        // Software path: FP32 matmul with codec-reconstructed weights.
        let h = ops::relu(&ops::add_bias(&ops::matmul(&x, &w1c).unwrap(), &b1).unwrap());
        let y_sw = ops::add_bias(&ops::matmul(&h, &w2c).unwrap(), &b2).unwrap();
        // Hardware path: functional pipeline (quantizes activations too).
        let y_hw = mlp_forward_on_accelerator(&array, &x, w1, &b1, w2, &b2);
        let argmax = |t: &Tensor| {
            t.as_slice()
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap()
        };
        if argmax(&y_sw) == argmax(&y_hw) {
            agree += 1;
        }
        total += 1;
    }
    // Activation quantization adds noise the software path does not have,
    // so demand strong but not perfect agreement.
    let rate = agree as f64 / total as f64;
    assert!(rate > 0.85, "prediction agreement {rate}");
}

#[test]
fn functional_array_accuracy_close_to_software() {
    let data = Dataset::blobs(600, 12, 3, 42);
    let (tr, te) = data.split(0.8);
    let mut model = proxy::tiny_mlp(12, 16, 3, 18);
    train::train(&mut model, &tr, &train::TrainConfig::quick());
    let fp32_acc = train::evaluate(&mut model, &te);

    let weights: Vec<Tensor> = model.weights_mut().into_iter().map(|w| w.clone()).collect();
    let b1 = vec![0.0f32; weights[0].dims()[1]];
    let b2 = vec![0.0f32; weights[1].dims()[1]];
    let array = FunctionalArray::new(16, 16);
    let mut correct = 0usize;
    for s in &te.samples {
        let x = Tensor::from_vec(s.input.clone(), &[1, 12]).unwrap();
        let y = mlp_forward_on_accelerator(&array, &x, &weights[0], &b1, &weights[1], &b2);
        let pred = y
            .as_slice()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        if pred == s.label {
            correct += 1;
        }
    }
    let hw_acc = correct as f64 / te.len() as f64;
    // The accelerator (weights + activations quantized, biases dropped)
    // stays within a few points of the FP32 software model.
    assert!(
        fp32_acc - hw_acc < 0.15,
        "fp32 {fp32_acc} vs accelerator {hw_acc}"
    );
}
