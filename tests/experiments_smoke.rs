//! Smoke tests over the experiment harness: every table/figure function
//! runs end to end (quick mode) and produces well-formed, paper-shaped
//! output. This is the check that "the code that regenerates the paper"
//! stays runnable.

use spark_bench::context::ExperimentContext;
use spark_bench::{fig11, fig12, fig14, fig15, fig4, table2, table6, table7, timing};

#[test]
fn cheap_experiments_produce_well_formed_output() {
    let t2 = table2::run();
    assert_eq!(t2.rows.len(), 5);
    assert!(!table2::render(&t2).is_empty());

    let t6 = table6::run();
    assert!(t6.breakdown.total_mm2() > 0.3);

    let t7 = table7::run();
    assert_eq!(t7.designs.len(), 8);
}

#[test]
fn characterization_and_performance_figures_hold_shape() {
    let ctx = ExperimentContext::new();

    let f4 = fig4::run(&ctx);
    assert!(f4.rows.iter().all(|r| r.lossless_pct > 85.0));

    let f11 = fig11::run(&ctx);
    let spark_col: Vec<f64> = f11
        .rows
        .iter()
        .flat_map(|r| {
            r.normalized
                .iter()
                .filter(|(n, _)| n == "SPARK")
                .map(|(_, v)| *v)
        })
        .collect();
    assert!(spark_col.iter().all(|&v| (v - 1.0).abs() < 1e-9));

    let f12 = fig12::run(&ctx);
    for row in &f12.rows {
        let spark = row.bars.iter().find(|b| b.accelerator == "SPARK").unwrap();
        let eyeriss = row.bars.iter().find(|b| b.accelerator == "Eyeriss").unwrap();
        assert!(spark.total() < 0.5 * eyeriss.total(), "{}", row.model);
    }

    let f14 = fig14::run(&ctx);
    assert!(f14.points.windows(2).all(|w| w[1].param_millions > w[0].param_millions));

    let f15 = fig15::run(&ctx);
    assert!(f15
        .rows
        .iter()
        .all(|r| r.dense_cycles > r.dbb_cycles));

    // Lockstep timing runs the cycle-accurate array per model; the flat-buffer
    // engine makes it cheap enough to live in the smoke pass.
    let t = timing::run(&ctx);
    assert!(!t.rows.is_empty());
    for r in &t.rows {
        assert!(r.slowdown >= 1.0, "{}: lockstep faster than decoupled", r.model);
        assert!(
            r.lockstep_cycles >= r.expected_cycles,
            "{}: lockstep pacing below the analytic mean",
            r.model
        );
    }
}
