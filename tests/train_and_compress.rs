//! Cross-crate integration: train proxies (spark-nn + spark-data), compress
//! with every codec (spark-quant), and check the accuracy ordering the
//! paper's Tables III-V rest on.

use spark::data::Dataset;
use spark::nn::{proxy, train};
use spark::quant::{AntCodec, Codec, OliveCodec, SparkCodec, UniformQuantizer};

/// `SPARK_SLOW_TESTS=1` (set by CI) runs the full convergence trainings;
/// the default tier-1 pass uses short smoke runs of the same pipelines.
fn slow_tests() -> bool {
    std::env::var_os("SPARK_SLOW_TESTS").is_some()
}

fn trained_cnn(seed: u64) -> (spark::nn::Sequential, Dataset) {
    let data = Dataset::bars_noisy(800, 8, 16, 0.7, seed);
    let (tr, te) = data.split(0.8);
    let mut m = proxy::tiny_cnn(8, 6, 48, 16, seed.wrapping_add(31));
    let cfg = train::TrainConfig {
        epochs: if slow_tests() { 10 } else { 3 },
        lr: 0.25,
        batch: 16,
        seed,
    };
    train::train(&mut m, &tr, &cfg);
    (m, te)
}

#[test]
fn spark_preserves_trained_accuracy_within_noise() {
    let (mut m, te) = trained_cnn(21);
    let fp32 = train::evaluate(&mut m, &te);
    let floor = if slow_tests() { 0.7 } else { 0.5 };
    assert!(fp32 > floor, "undertrained: {fp32}");
    train::compress_weights(&mut m, &SparkCodec::default()).unwrap();
    let spark = train::evaluate(&mut m, &te);
    assert!(fp32 - spark < 0.06, "fp32 {fp32} vs spark {spark}");
}

#[test]
fn extreme_quantization_destroys_accuracy_but_spark_does_not() {
    let (mut a, te) = trained_cnn(22);
    let fp32 = train::evaluate(&mut a, &te);
    train::compress_weights(&mut a, &UniformQuantizer::symmetric(2)).unwrap();
    let int2 = train::evaluate(&mut a, &te);

    let (mut b, te2) = trained_cnn(22);
    train::compress_weights(&mut b, &SparkCodec::default()).unwrap();
    let spark = train::evaluate(&mut b, &te2);

    assert!(spark > int2, "spark {spark} vs int2 {int2}");
    assert!(fp32 - spark < fp32 - int2 + 1e-9);
}

#[test]
fn codec_sweep_runs_on_attention_proxy() {
    // Four attention trainings make this the slowest test in the workspace;
    // the full 40-epoch convergence check runs only under SPARK_SLOW_TESTS=1
    // (CI). The default tier-1 pass trains a short smoke run that still
    // exercises every codec end-to-end with above-chance accuracy (1/8).
    let slow = slow_tests();
    let data = Dataset::token_patterns_noisy(800, 5, 8, 0.25, 23);
    let (tr, te) = data.split(0.8);
    let mut m = proxy::tiny_attention(5, 8, 16, 8, 77);
    let cfg = train::TrainConfig {
        epochs: if slow { 40 } else { 6 },
        lr: 0.1,
        batch: 8,
        seed: 23,
    };
    train::train(&mut m, &tr, &cfg);
    let fp32 = train::evaluate(&mut m, &te);
    let fp32_floor = if slow { 0.4 } else { 0.18 };
    assert!(fp32 > fp32_floor, "undertrained: {fp32} (slow={slow})");
    let codecs: Vec<Box<dyn Codec>> = vec![
        Box::new(SparkCodec::default()),
        Box::new(AntCodec::new(4).unwrap()),
        Box::new(OliveCodec::new()),
    ];
    let acc_floor = if slow { 0.2 } else { 0.15 };
    for codec in codecs {
        // Each codec applies to a freshly trained identical model.
        let mut m2 = proxy::tiny_attention(5, 8, 16, 8, 77);
        train::train(&mut m2, &tr, &cfg);
        let bits = train::compress_weights(&mut m2, codec.as_ref()).unwrap();
        let acc = train::evaluate(&mut m2, &te);
        assert!(bits <= 8.0, "{}", codec.name());
        assert!(acc > acc_floor, "{} collapsed to {acc} (slow={slow})", codec.name());
    }
}
