//! Cross-crate integration: calibrated distribution -> quantization ->
//! SPARK encoding -> packed stream -> precision profile -> accelerator
//! simulation, with invariants checked at every hand-off.

use spark::codec::{decode_stream, encode_tensor, MAX_ENCODING_ERROR};
use spark::data::ModelProfile;
use spark::nn::ModelWorkload;
use spark::quant::{Codec, MagnitudeQuantizer, SparkCodec};
use spark::sim::{Accelerator, AcceleratorKind, PrecisionProfile, SimConfig};
use spark::tensor::stats;

#[test]
fn profile_to_accelerator_pipeline() {
    let profile = ModelProfile::bert();
    let tensor = profile.sample_tensor(20_000, 9);

    // Quantize.
    let quantizer = MagnitudeQuantizer::new(8).unwrap();
    let codes = quantizer.quantize(&tensor).unwrap();
    assert_eq!(codes.codes.len(), tensor.len());

    // Encode into the aligned stream; verify round trip and error bound.
    let encoded = encode_tensor(&codes.codes);
    let decoded = decode_stream(&encoded.stream).unwrap();
    assert_eq!(decoded.len(), codes.codes.len());
    for (o, d) in codes.codes.iter().zip(&decoded) {
        assert!((i16::from(*o) - i16::from(*d)).unsigned_abs() <= u16::from(MAX_ENCODING_ERROR));
    }

    // The stream's storage matches the statistics' claim.
    let bits_from_stream = encoded.stream.len() as f64 * 4.0 / encoded.elements as f64;
    assert!((bits_from_stream - encoded.stats.avg_bits()).abs() < 1e-9);

    // Precision profile feeds the simulator.
    let acts = profile.sample_activations(20_000, 10);
    let precision = PrecisionProfile::from_tensors(&tensor, &acts).unwrap();
    assert!((precision.short_frac_w - encoded.stats.short_fraction()).abs() < 0.05);

    let workload = ModelWorkload::bert();
    let cfg = SimConfig::default();
    let spark = Accelerator::new(AcceleratorKind::Spark).run(&workload, &precision, &cfg);
    let eyeriss = Accelerator::new(AcceleratorKind::Eyeriss).run(&workload, &precision, &cfg);
    assert!(spark.total_cycles < eyeriss.total_cycles);
    assert!(spark.energy.total() < eyeriss.energy.total());
    assert_eq!(spark.layers.len(), workload.gemms.len());
}

#[test]
fn codec_bits_consistent_between_quant_and_codec_layers() {
    let profile = ModelProfile::resnet50();
    let tensor = profile.sample_tensor(20_000, 11);
    let (result, code_stats) = SparkCodec::default().compress_with_stats(&tensor).unwrap();
    assert!((result.avg_bits - code_stats.avg_bits()).abs() < 1e-12);
    assert!((result.low_precision_fraction - code_stats.short_fraction()).abs() < 1e-12);
    // SQNR through the whole pipeline remains usable.
    assert!(result.sqnr_db(&tensor) > 15.0);
}

#[test]
fn reconstruction_distribution_matches_original() {
    // Encoding must not shift the tensor's distribution: mean and std of
    // the reconstruction stay close to the original's.
    let profile = ModelProfile::vit();
    let tensor = profile.sample_tensor(30_000, 12);
    let result = SparkCodec::default().compress(&tensor).unwrap();
    let a = stats::summarize(&tensor);
    let b = stats::summarize(&result.reconstructed);
    assert!((a.mean - b.mean).abs() < 0.01 * a.std.max(1e-6));
    assert!((a.std - b.std).abs() / a.std < 0.05);
}

#[test]
fn every_accelerator_runs_every_performance_workload() {
    let cfg = SimConfig::default();
    for workload in ModelWorkload::performance_suite() {
        let profile = PrecisionProfile::from_short_fractions(0.6, 0.6);
        for acc in Accelerator::all() {
            let r = acc.run(&workload, &profile, &cfg);
            assert!(r.total_cycles > 0.0, "{} on {}", acc.kind.name(), workload.name);
            assert!(r.energy.total() > 0.0);
            assert!(r.total_cycles.is_finite());
        }
    }
}
