//! Serialization round trips for the public data types: experiment results
//! are dumped as JSON, so every type that crosses that boundary must
//! round-trip losslessly.

use spark::codec::{encode_tensor, CodeStats, EncodedTensor, NibbleStream, SparkFormat};
use spark::data::{DbbConfig, ModelProfile, ParamDistribution};
use spark::nn::{Gemm, ModelWorkload};
use spark::quant::CodecResult;
use spark::sim::{Accelerator, AcceleratorKind, PrecisionProfile, Program, SimConfig};
use spark::tensor::{QuantTensor, Shape, Tensor};

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializable");
    serde_json::from_str(&json).expect("deserializable")
}

#[test]
fn tensor_types_round_trip() {
    let t = Tensor::from_vec(vec![1.5, -2.25, 0.0], &[3]).unwrap();
    assert_eq!(round_trip(&t), t);
    let q = QuantTensor::from_vec(vec![0, 7, 255], &[3]).unwrap();
    assert_eq!(round_trip(&q), q);
    let s = Shape::new(&[2, 3, 4]);
    assert_eq!(round_trip(&s), s);
}

#[test]
fn codec_types_round_trip() {
    let enc: EncodedTensor = encode_tensor(&[0, 7, 18, 170, 255]);
    let back: EncodedTensor = round_trip(&enc);
    assert_eq!(back, enc);
    let stream: NibbleStream = enc.stream.clone();
    assert_eq!(round_trip(&stream), stream);
    let stats: CodeStats = enc.stats;
    assert_eq!(round_trip(&stats), stats);
    let fmt = SparkFormat::new(12, 6).unwrap();
    assert_eq!(round_trip(&fmt), fmt);
}

#[test]
fn data_types_round_trip() {
    let p = ModelProfile::bert();
    assert_eq!(round_trip(&p), p);
    let d = ParamDistribution::typical_weights();
    assert_eq!(round_trip(&d), d);
    let c = DbbConfig::half_sparse();
    assert_eq!(round_trip(&c), c);
}

#[test]
fn workload_and_sim_types_round_trip() {
    let w = ModelWorkload::resnet18();
    assert_eq!(round_trip(&w), w);
    let g = Gemm::new("x", 2, 3, 4).times(5);
    assert_eq!(round_trip(&g), g);
    let acc = Accelerator::new(AcceleratorKind::Spark);
    assert_eq!(round_trip(&acc), acc);
    let prof = PrecisionProfile::from_short_fractions(0.7, 0.6);
    assert_eq!(round_trip(&prof), prof);
    let cfg = SimConfig::default();
    assert_eq!(round_trip(&cfg), cfg);
}

#[test]
fn programs_and_reports_round_trip() {
    let acc = Accelerator::new(AcceleratorKind::Spark);
    let w = ModelWorkload::resnet18();
    let prof = PrecisionProfile::from_short_fractions(0.6, 0.6);
    let prog = Program::compile(&w, &acc, &prof);
    assert_eq!(round_trip(&prog), prog);
    let report = acc.run(&w, &prof, &SimConfig::default());
    let back = round_trip(&report);
    assert_eq!(back, report);
}

#[test]
fn codec_result_round_trips() {
    use spark::quant::{Codec, SparkCodec};
    let t = Tensor::from_vec(vec![0.1, -0.5, 2.0, 0.02], &[4]).unwrap();
    let r: CodecResult = SparkCodec::default().compress(&t).unwrap();
    let back: CodecResult = round_trip(&r);
    assert_eq!(back, r);
}
