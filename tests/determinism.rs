//! Seeded runs are bit-identical: the whole pipeline — dataset synthesis,
//! weight init, shuffling, training — draws randomness only from the
//! in-tree `spark_util::Rng`, so two runs from the same seed must produce
//! exactly the same bits, and different seeds must diverge.

use spark::data::{Dataset, ParamDistribution};
use spark::nn::{proxy, train, Sequential};

fn weight_bits(model: &mut Sequential) -> Vec<u32> {
    model
        .weights_mut()
        .iter()
        .flat_map(|t| t.as_slice().iter().map(|x| x.to_bits()))
        .collect()
}

fn train_once(seed: u64) -> (Vec<u32>, f32) {
    let data = Dataset::bars_noisy(200, 8, 16, 0.7, seed);
    let (tr, _) = data.split(0.8);
    let mut m = proxy::tiny_cnn(8, 6, 48, 16, seed.wrapping_add(31));
    let cfg = train::TrainConfig {
        epochs: 2,
        lr: 0.25,
        batch: 16,
        seed,
    };
    let loss = train::train(&mut m, &tr, &cfg);
    (weight_bits(&mut m), loss)
}

#[test]
fn training_is_bit_identical_for_the_same_seed() {
    let (w1, l1) = train_once(21);
    let (w2, l2) = train_once(21);
    assert_eq!(w1, w2, "weights diverged between identically-seeded runs");
    assert_eq!(l1.to_bits(), l2.to_bits(), "losses diverged: {l1} vs {l2}");
}

#[test]
fn training_diverges_across_seeds() {
    let (w1, _) = train_once(21);
    let (w2, _) = train_once(22);
    assert_ne!(w1, w2, "different seeds produced identical weights");
}

#[test]
fn dataset_synthesis_is_bit_identical_for_the_same_seed() {
    for (a, b) in [
        (Dataset::blobs(64, 12, 4, 7), Dataset::blobs(64, 12, 4, 7)),
        (Dataset::bars(64, 8, 16, 7), Dataset::bars(64, 8, 16, 7)),
        (
            Dataset::token_patterns(64, 5, 8, 7),
            Dataset::token_patterns(64, 5, 8, 7),
        ),
    ] {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x.label, y.label);
            let xb: Vec<u32> = x.input.as_slice().iter().map(|v| v.to_bits()).collect();
            let yb: Vec<u32> = y.input.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(xb, yb, "inputs diverged between identically-seeded draws");
        }
    }
}

#[test]
fn distribution_sampling_is_bit_identical_for_the_same_seed() {
    let d = ParamDistribution::typical_weights();
    let a: Vec<u32> = d.sample(4096, 11).iter().map(|v| v.to_bits()).collect();
    let b: Vec<u32> = d.sample(4096, 11).iter().map(|v| v.to_bits()).collect();
    assert_eq!(a, b);
    let c: Vec<u32> = d.sample(4096, 12).iter().map(|v| v.to_bits()).collect();
    assert_ne!(a, c, "different seeds produced identical samples");
}
